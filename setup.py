"""Setuptools shim for environments without PEP 517 editable-install support.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` works on machines whose setuptools
cannot build editable wheels (e.g. offline hosts without the ``wheel``
package).
"""

from setuptools import setup

setup()
