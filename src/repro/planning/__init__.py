"""Traffic-engineering planning: failure what-ifs, load projection, sweeps.

The paper motivates traffic-matrix estimation entirely through traffic
engineering — load balancing, capacity planning and failure analysis — and
this package is the subsystem that *consumes* estimated matrices for those
tasks:

* :mod:`~repro.planning.failures` — enumeration of failure cases
  (single link, bidirectional link pair, whole node) and the surviving
  topology they leave behind;
* :mod:`~repro.planning.whatif` — the :class:`~repro.planning.whatif.WhatIfEngine`,
  which routes the base mesh once and re-signals only the demands each
  failure actually touches (incremental CSPF reroute with an incrementally
  rebuilt routing matrix);
* :mod:`~repro.planning.projection` — link loads, utilisations, headroom
  and congestion sets for any traffic matrix pushed through a what-if
  topology, plus the demand-growth scaler;
* :mod:`~repro.planning.sweep` — :func:`~repro.planning.sweep.failure_sweep`,
  which scores every estimation method by the planning error it induces
  across all failures, with ``summary_table``-style aggregation and figure
  helpers.

Entry point: ``scenario.planning()`` returns a ready
:class:`~repro.planning.whatif.WhatIfEngine` for a scenario's network.
"""

from repro.planning.failures import (
    BASELINE,
    FailureCase,
    enumerate_failures,
    surviving_network,
)
from repro.planning.projection import LoadProjection, project_load, scale_demands
from repro.planning.sweep import (
    PlanningRecord,
    failure_sweep,
    planning_summary_table,
    utilisation_error_profile,
)
from repro.planning.whatif import WhatIfEngine, full_rebuild_routing

__all__ = [
    "FailureCase",
    "BASELINE",
    "enumerate_failures",
    "surviving_network",
    "LoadProjection",
    "project_load",
    "scale_demands",
    "WhatIfEngine",
    "full_rebuild_routing",
    "PlanningRecord",
    "failure_sweep",
    "planning_summary_table",
    "utilisation_error_profile",
]
