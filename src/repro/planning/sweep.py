"""Failure sweeps: scoring estimation methods by the planning error they induce.

The paper's argument for its MRE metric is that estimation errors matter
*through* traffic engineering: a wrong estimate matters exactly as much as
it distorts the utilisations an operator plans with.  :func:`failure_sweep`
closes that loop.  For every registered estimation method (described by the
same :class:`~repro.evaluation.experiments.MethodSpec` lists the Table 2
runner uses) it

1. estimates the traffic matrix from the scenario's observables (sharing
   problems and fanning specs out in dependency waves, the PR 3 machinery);
2. pushes both the truth and the estimate through every failure case's
   surviving topology via the incremental
   :class:`~repro.planning.whatif.WhatIfEngine`;
3. records, per ``(method, case)``, the utilisation numbers a planner would
   compare: predicted vs true maximum utilisation, per-link utilisation
   error, and the congestion-set confusion counts.

Failure cases are independent units of work, so ``n_jobs`` fans them over a
process pool; the engine and the estimates travel as a shared payload
(:func:`repro.parallel.share_payload`) — inherited copy-on-write by fork
workers, shipped once per worker elsewhere, never pickled per case — and
serial and parallel runs produce identical records in identical order.  Cases that partition the network yield structured
``feasible=False`` records — never an exception — and the aggregation
(:func:`planning_summary_table`) reports them separately instead of mixing
their truncated utilisations into the error statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import telemetry
from repro.datasets.scenarios import Scenario
from repro.errors import PlanningError
from repro.evaluation.experiments import (
    MethodSpec,
    SpecEstimate,
    default_method_specs,
    estimate_method_specs,
)
from repro.parallel import (
    effective_jobs,
    release_payload,
    resolve_payload,
    run_supervised_tasks,
    share_payload,
)
from repro.planning.failures import FailureCase, enumerate_failures
from repro.planning.projection import LoadProjection
from repro.planning.whatif import WhatIfEngine
from repro.resilience.report import FailureReason

__all__ = [
    "PlanningRecord",
    "failure_sweep",
    "planning_summary_table",
    "utilisation_error_profile",
]


@dataclass(frozen=True)
class PlanningRecord:
    """Planning score of one estimation method on one failure case.

    Attributes
    ----------
    scenario, method, case, kind:
        Identification: scenario name, method-spec label, failure-case name
        and kind.
    feasible:
        Whether every demand survived the failure; infeasible records keep
        their (surviving-traffic) utilisation numbers but are reported
        separately by the aggregations.
    num_infeasible_pairs:
        Demands the failure disconnected.
    lost_traffic:
        True traffic volume of the disconnected demands in Mbit/s.
    predicted_max_utilisation, true_max_utilisation:
        The planner's headline number, from the estimate and from the truth.
    max_utilisation_error:
        ``|predicted - true|`` maximum utilisation.
    mean_utilisation_error:
        Mean absolute per-link utilisation error.
    congestion_hits, congestion_misses, congestion_false_alarms:
        Confusion counts of the congestion set (links above the threshold):
        truly congested links the estimate flags / misses, and links
        flagged without being congested.
    error:
        Why the method was skipped on this scenario (empty when it ran);
        skipped records carry ``NaN`` utilisation numbers.
    failure:
        Structured skip reason (``None`` when the method ran).
    degradation:
        Degradation-report dict from the method's diagnostics
        (supervised/sharded estimators), ``None`` for a clean run.
    """

    scenario: str
    method: str
    case: str
    kind: str
    feasible: bool
    num_infeasible_pairs: int
    lost_traffic: float
    predicted_max_utilisation: float
    true_max_utilisation: float
    max_utilisation_error: float
    mean_utilisation_error: float
    congestion_hits: int
    congestion_misses: int
    congestion_false_alarms: int
    error: str = ""
    failure: Optional[FailureReason] = None
    degradation: Optional[dict] = None

    @property
    def skipped(self) -> bool:
        """Whether the method could not run on this scenario's data."""
        return bool(self.error)


def _case_record(
    scenario_name: str,
    case: FailureCase,
    result: SpecEstimate,
    truth_projection: LoadProjection,
    estimate_projection: Optional[LoadProjection],
) -> PlanningRecord:
    """Assemble one record from the truth and estimate projections."""
    if estimate_projection is None:
        return PlanningRecord(
            scenario=scenario_name,
            method=result.label,
            case=case.name,
            kind=case.kind,
            feasible=truth_projection.is_feasible,
            num_infeasible_pairs=len(truth_projection.infeasible_pairs),
            lost_traffic=truth_projection.lost_traffic,
            predicted_max_utilisation=float("nan"),
            true_max_utilisation=truth_projection.max_utilisation,
            max_utilisation_error=float("nan"),
            mean_utilisation_error=float("nan"),
            congestion_hits=0,
            congestion_misses=0,
            congestion_false_alarms=0,
            error=result.error,
            failure=result.failure,
        )
    true_congested = set(truth_projection.congested_links)
    predicted_congested = set(estimate_projection.congested_links)
    utilisation_errors = np.abs(
        estimate_projection.utilisations - truth_projection.utilisations
    )
    return PlanningRecord(
        scenario=scenario_name,
        method=result.label,
        case=case.name,
        kind=case.kind,
        feasible=truth_projection.is_feasible,
        num_infeasible_pairs=len(truth_projection.infeasible_pairs),
        lost_traffic=truth_projection.lost_traffic,
        predicted_max_utilisation=estimate_projection.max_utilisation,
        true_max_utilisation=truth_projection.max_utilisation,
        max_utilisation_error=abs(
            estimate_projection.max_utilisation - truth_projection.max_utilisation
        ),
        mean_utilisation_error=float(utilisation_errors.mean()),
        congestion_hits=len(true_congested & predicted_congested),
        congestion_misses=len(true_congested - predicted_congested),
        congestion_false_alarms=len(predicted_congested - true_congested),
        degradation=result.degradation,
    )


def _evaluate_case(
    case: FailureCase,
    engine: WhatIfEngine,
    scenario_name: str,
    estimates: Sequence[SpecEstimate],
    growth: float,
) -> list[PlanningRecord]:
    """All records of one failure case (one unit of parallel work).

    Distinct truth matrices (snapshot vs series-window specs) are projected
    once each; every method estimate is projected against its own truth.
    """
    truth_projections: dict[int, LoadProjection] = {}
    records: list[PlanningRecord] = []
    for result in estimates:
        truth_key = id(result.truth)
        if truth_key not in truth_projections:
            truth_projections[truth_key] = engine.project(result.truth, case, growth=growth)
        truth_projection = truth_projections[truth_key]
        estimate_projection = (
            None
            if result.estimate is None
            else engine.project(result.estimate, case, growth=growth)
        )
        records.append(
            _case_record(scenario_name, case, result, truth_projection, estimate_projection)
        )
    return records


def _evaluate_case_pooled(case: FailureCase, state_ref) -> list[PlanningRecord]:
    """Pool entry point: the sweep state arrives as a shared-payload ref.

    The engine (with its routing matrix), the estimates and the growth
    factor are registered once via :func:`repro.parallel.share_payload`;
    fork workers inherit them without any pickling, spawn workers receive
    them once per worker through the executor initializer — never once per
    case.
    """
    engine, scenario_name, estimates, growth = resolve_payload(state_ref)
    return _evaluate_case(case, engine, scenario_name, estimates, growth)


def failure_sweep(
    scenario: Scenario,
    specs: Optional[Sequence[MethodSpec]] = None,
    cases: Optional[Sequence[FailureCase]] = None,
    n_jobs: Optional[int] = 1,
    growth: float = 1.0,
    utilisation_threshold: float = 0.9,
    include_baseline: bool = True,
    skip_errors: bool = True,
    estimates: Optional[Sequence[SpecEstimate]] = None,
    task_timeout: Optional[float] = None,
    max_resubmissions: int = 1,
) -> list[PlanningRecord]:
    """Score estimation methods by the planning error they induce per failure.

    Parameters
    ----------
    scenario:
        The scenario whose observables feed the estimators and whose
        network the failures hit.
    specs:
        Method specs to evaluate (default: the paper's Table 2 set without
        Vardi, whose long series window adds little to a planning
        comparison).  Estimates are computed **once**, before any failure
        case runs, via :func:`~repro.evaluation.experiments.estimate_method_specs`.
    cases:
        Failure cases (default: every single-link failure plus the
        baseline when ``include_baseline``).
    n_jobs:
        Worker processes for the failure cases (``1`` = the serial loop,
        ``None`` = all cores); the spec estimation phase reuses the same
        value for its dependency waves.  Parallel records are identical to
        serial ones, in the same case-major order.
    growth:
        Uniform demand-growth factor applied to truth and estimates alike
        (the "traffic x1.5" planning knob).
    utilisation_threshold:
        Congestion threshold for the congestion-set confusion counts.
    include_baseline:
        Prepend the intact-topology case when ``cases`` is not given.
    skip_errors:
        Record methods that cannot run on this scenario's observables as
        skipped rows instead of raising.
    estimates:
        Pre-computed :class:`~repro.evaluation.experiments.SpecEstimate`
        results to project instead of running the estimation phase —
        useful when the same estimates feed several sweeps (different
        growth factors, case sets) or when the matrices come from outside
        the spec machinery.  ``specs`` and ``skip_errors`` are ignored.
    task_timeout, max_resubmissions:
        Pool supervision knobs (see
        :func:`repro.parallel.run_supervised_tasks`): per-case timeout in
        seconds and resubmission budget before the parent re-runs a case
        serially.  Shared with the spec estimation phase.
    """
    if growth < 0:
        raise PlanningError("demand growth factor must be non-negative")
    if estimates is None:
        if specs is None:
            specs = default_method_specs(include_vardi=False)
        estimates = estimate_method_specs(
            scenario,
            specs,
            n_jobs=n_jobs,
            skip_errors=skip_errors,
            task_timeout=task_timeout,
            max_resubmissions=max_resubmissions,
        )
    if cases is None:
        cases = enumerate_failures(
            scenario.network, kinds=("link",), include_baseline=include_baseline
        )
    engine = WhatIfEngine(scenario.network, utilisation_threshold=utilisation_threshold)

    jobs = effective_jobs(n_jobs, len(cases), error=PlanningError)
    with telemetry.span("planning.failure_sweep", cases=len(cases), jobs=jobs):
        if jobs == 1:
            case_records = [
                _evaluate_case(case, engine, scenario.name, estimates, growth)
                for case in cases
            ]
        else:
            state_ref = share_payload((engine, scenario.name, estimates, growth))
            try:
                case_records, _pool_report = run_supervised_tasks(
                    _evaluate_case_pooled,
                    [(case, state_ref) for case in cases],
                    jobs=jobs,
                    timeout=task_timeout,
                    max_resubmissions=max_resubmissions,
                )
            finally:
                release_payload(state_ref)
    return [record for case in case_records for record in case]


def planning_summary_table(
    records: Sequence[PlanningRecord],
) -> dict[str, dict[str, float]]:
    """Aggregate sweep records per method (``summary_table``-style layout).

    For every method the table reports, over the *feasible* cases: the mean
    and worst absolute max-utilisation error, the mean per-link utilisation
    error, the true and predicted worst-case utilisation across all
    failures (the capacity-planning headline), and congestion recall /
    precision (``NaN`` when no link ever crosses the threshold — the score
    is undefined without positives).  Infeasible and skipped cases are
    counted, not averaged; the
    categories are disjoint (a skipped record counts as skipped even when
    its case also partitions the network), so ``cases`` equals the scored
    rows plus ``infeasible_cases`` plus ``skipped_cases``.
    """
    table: dict[str, dict[str, float]] = {}
    methods = list(dict.fromkeys(record.method for record in records))
    for method in methods:
        rows = [record for record in records if record.method == method]
        feasible = [row for row in rows if row.feasible and not row.skipped]
        summary: dict[str, float] = {
            "cases": float(len(rows)),
            "infeasible_cases": float(
                sum(1 for row in rows if not row.feasible and not row.skipped)
            ),
            "skipped_cases": float(sum(1 for row in rows if row.skipped)),
        }
        if feasible:
            summary["mean_max_utilisation_error"] = float(
                np.mean([row.max_utilisation_error for row in feasible])
            )
            summary["worst_max_utilisation_error"] = float(
                np.max([row.max_utilisation_error for row in feasible])
            )
            summary["mean_link_utilisation_error"] = float(
                np.mean([row.mean_utilisation_error for row in feasible])
            )
            summary["true_worst_case_utilisation"] = float(
                np.max([row.true_max_utilisation for row in feasible])
            )
            summary["predicted_worst_case_utilisation"] = float(
                np.max([row.predicted_max_utilisation for row in feasible])
            )
            # NaN, not a vacuous 100 %, when no link is ever (predicted)
            # congested — the score is undefined without positives.
            hits = sum(row.congestion_hits for row in feasible)
            misses = sum(row.congestion_misses for row in feasible)
            false_alarms = sum(row.congestion_false_alarms for row in feasible)
            summary["congestion_recall"] = (
                hits / (hits + misses) if hits + misses else float("nan")
            )
            summary["congestion_precision"] = (
                hits / (hits + false_alarms) if hits + false_alarms else float("nan")
            )
        table[method] = summary
    return table


def utilisation_error_profile(
    records: Sequence[PlanningRecord],
) -> dict[str, dict[str, np.ndarray]]:
    """Figure data: per-method utilisation-error profile across failure cases.

    For every method the feasible, non-skipped cases are sorted by true
    maximum utilisation (descending — the binding failures first, which is
    how a planner reads the sweep) and the true and predicted curves are
    returned together with the per-case absolute error.  Plot the two
    curves against the case rank to see where an estimate would mislead
    capacity planning.
    """
    profile: dict[str, dict[str, np.ndarray]] = {}
    methods = list(dict.fromkeys(record.method for record in records))
    for method in methods:
        rows = [
            record
            for record in records
            if record.method == method and record.feasible and not record.skipped
        ]
        if not rows:
            continue
        rows.sort(key=lambda row: -row.true_max_utilisation)
        profile[method] = {
            "case": np.array([row.case for row in rows]),
            "true_max_utilisation": np.array([row.true_max_utilisation for row in rows]),
            "predicted_max_utilisation": np.array(
                [row.predicted_max_utilisation for row in rows]
            ),
            "max_utilisation_error": np.array([row.max_utilisation_error for row in rows]),
        }
    return profile
