"""Load projection: pushing traffic matrices through what-if topologies.

A traffic matrix only becomes decision-relevant once it is turned into link
loads: load balancing, capacity planning and failure analysis — the tasks
the paper motivates estimation with — all reason about *utilisation* (load
over capacity).  This module projects any :class:`~repro.traffic.matrix.TrafficMatrix`
(true, estimated, or a worst-case bound) through a routing matrix and
reports the planning quantities:

* per-link loads and utilisations,
* the maximum utilisation and its headroom (how much uniform demand growth
  the topology can still absorb),
* the congestion set (links above an operator threshold), and
* for infeasible cases, the demands a partition disconnects and the traffic
  volume they carried.

:func:`scale_demands` provides the "traffic grows 1.5x" knob: planning
studies routinely project a uniformly scaled matrix through the same
failure cases to find which link saturates first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PlanningError
from repro.planning.failures import BASELINE, FailureCase
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import NodePair
from repro.topology.network import Network
from repro.traffic.matrix import TrafficMatrix

__all__ = ["LoadProjection", "project_load", "scale_demands"]


def scale_demands(matrix: TrafficMatrix, factor: float) -> TrafficMatrix:
    """Uniformly scale every demand by ``factor`` (the demand-growth knob)."""
    if factor < 0:
        raise PlanningError("demand growth factor must be non-negative")
    return TrafficMatrix(matrix.pairs, matrix.vector * factor)


@dataclass(frozen=True)
class LoadProjection:
    """Per-link planning quantities of one matrix on one what-if topology.

    Attributes
    ----------
    case:
        The failure case the routing belongs to.
    link_names:
        Link ordering of ``loads`` / ``utilisations`` (the *base* network's
        canonical order; failed links carry zero load).
    loads:
        Projected link loads ``t = R s`` in Mbit/s.
    utilisations:
        ``loads / capacity`` per link.
    threshold:
        Utilisation level above which a link counts as congested.
    infeasible_pairs:
        Demands the failure disconnects (empty when the case is feasible).
    lost_traffic:
        Total volume of the disconnected demands (their traffic is *not*
        part of ``loads`` — it has nowhere to go).
    """

    case: FailureCase
    link_names: tuple[str, ...]
    loads: np.ndarray
    utilisations: np.ndarray
    threshold: float = 0.9
    infeasible_pairs: tuple[NodePair, ...] = ()
    lost_traffic: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "loads", np.asarray(self.loads, dtype=float))
        object.__setattr__(self, "utilisations", np.asarray(self.utilisations, dtype=float))
        if self.loads.shape != (len(self.link_names),):
            raise PlanningError(
                f"loads have shape {self.loads.shape}, expected ({len(self.link_names)},)"
            )
        if self.utilisations.shape != self.loads.shape:
            raise PlanningError("loads and utilisations must have the same shape")
        if not 0 < self.threshold:
            raise PlanningError("congestion threshold must be positive")

    @property
    def is_feasible(self) -> bool:
        """Whether every demand survived the failure."""
        return not self.infeasible_pairs

    @property
    def max_utilisation(self) -> float:
        """Utilisation of the most loaded link."""
        return float(self.utilisations.max()) if len(self.utilisations) else 0.0

    @property
    def headroom(self) -> float:
        """Uniform growth factor that saturates the most loaded link.

        A headroom of 1.25 means traffic can grow 25 % before the worst
        link hits full utilisation; below 1.0 the topology is already
        congested.  Infinite when nothing is loaded.
        """
        peak = self.max_utilisation
        return float("inf") if peak <= 0 else 1.0 / peak

    @property
    def congested_links(self) -> tuple[str, ...]:
        """Links whose utilisation exceeds the threshold, canonical order."""
        over = self.utilisations > self.threshold
        return tuple(name for name, flag in zip(self.link_names, over) if flag)

    def utilisation_of(self, link_name: str) -> float:
        """Utilisation of one link by name."""
        try:
            return float(self.utilisations[self.link_names.index(link_name)])
        except ValueError as exc:
            raise PlanningError(f"unknown link {link_name!r} in projection") from exc

    def top_links(self, count: int = 10) -> tuple[tuple[str, float], ...]:
        """The ``count`` most utilised links as ``(name, utilisation)`` pairs."""
        order = np.argsort(-self.utilisations, kind="stable")[:count]
        return tuple((self.link_names[i], float(self.utilisations[i])) for i in order)


def project_load(
    routing: RoutingMatrix,
    matrix: TrafficMatrix,
    network: Optional[Network] = None,
    case: FailureCase = BASELINE,
    growth: float = 1.0,
    threshold: float = 0.9,
    infeasible_pairs: Sequence[NodePair] = (),
    capacities: Optional[np.ndarray] = None,
) -> LoadProjection:
    """Project ``matrix`` (scaled by ``growth``) through ``routing``.

    Parameters
    ----------
    routing:
        The (possibly post-failure) routing matrix.  Infeasible pairs must
        already have all-zero columns, which is what
        :meth:`~repro.routing.incremental.IncrementalRerouter.reroute_matrix`
        produces.
    matrix:
        Traffic matrix over the same pair ordering.
    network:
        Source of link capacities; defaults to ``routing.network``.
    case, growth, threshold:
        Metadata and knobs recorded on the projection.
    infeasible_pairs:
        Pairs the failure disconnected (their volume is reported as lost).
    capacities:
        Pre-computed capacity vector aligned with ``routing.link_names``
        (avoids the per-link lookup in hot sweeps).
    """
    if matrix.pairs != routing.pairs:
        raise PlanningError("traffic matrix and routing matrix use different pair orderings")
    if growth < 0:
        raise PlanningError("demand growth factor must be non-negative")
    network = network if network is not None else routing.network
    if capacities is None:
        if network is None:
            raise PlanningError("load projection needs a network or explicit capacities")
        capacities = np.array(
            [network.link(name).capacity_mbps for name in routing.link_names], dtype=float
        )
    demands = matrix.vector * float(growth)  # fresh array; safe to zero below
    infeasible = tuple(infeasible_pairs)
    lost = 0.0
    if infeasible:
        positions = [routing.pair_index(pair) for pair in infeasible]
        lost = float(demands[positions].sum())
        demands[positions] = 0.0
    loads = routing.link_loads(demands)
    return LoadProjection(
        case=case,
        link_names=routing.link_names,
        loads=loads,
        utilisations=loads / capacities,
        threshold=threshold,
        infeasible_pairs=infeasible,
        lost_traffic=lost,
    )
