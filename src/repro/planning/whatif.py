"""The what-if engine: failure cases in, post-failure routing and loads out.

:class:`WhatIfEngine` is the stateful heart of the planning subsystem.  It
owns one base topology, routes the LSP mesh over it **once** (via the
incremental rerouter, CSPF when LSP bandwidths are given, IGP shortest path
otherwise), and then answers failure questions cheaply:

* :meth:`routing_for` — the post-failure routing matrix of a case,
  rebuilt incrementally (only demands whose path traversed the failed
  element are re-signalled) and cached per case name;
* :meth:`project` — push any traffic matrix through a case's surviving
  topology and get the :class:`~repro.planning.projection.LoadProjection`
  planning quantities (utilisations, headroom, congestion set);
* :meth:`worst_case` — the binding failure: the case with the highest
  projected maximum utilisation, the number capacity planning actually
  compares against 1.0.

:func:`full_rebuild_routing` is the deliberately naive reference — signal
the whole mesh from scratch on the surviving topology — used by the parity
tests and the acceptance benchmark to prove the incremental path returns
identical matrices (and to measure how much work it avoids).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np
import scipy.sparse

from repro.errors import PlanningError, RoutingError, TopologyError
from repro.planning.failures import BASELINE, FailureCase, enumerate_failures, surviving_network
from repro.planning.projection import LoadProjection, project_load
from repro.routing.incremental import IncrementalRerouter, RerouteResult
from repro.routing.routing_matrix import RoutingMatrix
from repro.routing.shortest_path import ShortestPathRouter
from repro.topology.elements import NodePair
from repro.topology.network import Network
from repro.traffic.matrix import TrafficMatrix

__all__ = ["WhatIfEngine", "full_rebuild_routing"]


class WhatIfEngine:
    """Failure what-if analysis over one base topology.

    Parameters
    ----------
    network:
        The base topology.
    bandwidths:
        Optional per-pair LSP bandwidth values forwarded to the
        :class:`~repro.routing.incremental.IncrementalRerouter`; omitted
        means pure IGP routing (the estimation benchmarks' model, and the
        mode in which incremental reroute is provably identical to a full
        rebuild).
    utilisation_threshold:
        Default congestion threshold of the projections.
    cache_size:
        Maximum number of per-case routing matrices kept; a full
        single-link sweep of the America-like network holds 284 sparse
        matrices, so the default is generous but bounded.
    """

    def __init__(
        self,
        network: Network,
        bandwidths: Optional[Mapping[NodePair, float]] = None,
        utilisation_threshold: float = 0.9,
        cache_size: int = 1024,
    ) -> None:
        if cache_size < 1:
            raise PlanningError("cache_size must be at least 1")
        self.network = network
        self.utilisation_threshold = float(utilisation_threshold)
        self.rerouter = IncrementalRerouter(network, bandwidths=bandwidths)
        self._capacities = np.array(
            [link.capacity_mbps for link in network.links], dtype=float
        )
        self._cache_size = cache_size
        self._case_cache: dict[
            tuple[tuple[str, ...], tuple[str, ...]], tuple[RoutingMatrix, RerouteResult]
        ] = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def base_routing(self) -> RoutingMatrix:
        """Routing matrix of the intact topology."""
        return self.rerouter.base_matrix

    def cases(
        self, kinds: Sequence[str] = ("link",), include_baseline: bool = False
    ) -> tuple[FailureCase, ...]:
        """Enumerate failure cases of this engine's network."""
        return enumerate_failures(self.network, kinds=kinds, include_baseline=include_baseline)

    def routing_for(self, case: FailureCase) -> tuple[RoutingMatrix, RerouteResult]:
        """Post-failure routing matrix and reroute diagnostics for ``case``.

        Cached by the failed element sets (two cases failing the same
        elements share one entry regardless of their names or listing
        order); the matrix keeps the base link and pair orderings (failed
        links become zero rows, disconnected pairs zero columns).
        """
        key = (tuple(sorted(case.failed_links)), tuple(sorted(case.failed_nodes)))
        cached = self._case_cache.get(key)
        if cached is not None:
            return cached
        try:
            result = self.rerouter.reroute_matrix(case.failed_links, case.failed_nodes)
        except TopologyError as exc:
            # Same contract as surviving_network: a case naming unknown
            # elements is a planning error, whichever path evaluates it.
            raise PlanningError(f"failure case {case.name!r}: {exc}") from exc
        if len(self._case_cache) >= self._cache_size:
            self._case_cache.pop(next(iter(self._case_cache)))
        self._case_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def project(
        self,
        matrix: TrafficMatrix,
        case: FailureCase = BASELINE,
        growth: float = 1.0,
        threshold: Optional[float] = None,
    ) -> LoadProjection:
        """Project ``matrix`` through the surviving topology of ``case``."""
        routing, result = self.routing_for(case)
        return project_load(
            routing,
            matrix,
            network=self.network,
            case=case,
            growth=growth,
            threshold=threshold if threshold is not None else self.utilisation_threshold,
            infeasible_pairs=result.infeasible,
            capacities=self._capacities,
        )

    def project_all(
        self,
        matrix: TrafficMatrix,
        cases: Optional[Iterable[FailureCase]] = None,
        growth: float = 1.0,
    ) -> list[LoadProjection]:
        """Project ``matrix`` through every case (default: all single links)."""
        cases = self.cases() if cases is None else cases
        return [self.project(matrix, case, growth=growth) for case in cases]

    def worst_case(
        self,
        matrix: TrafficMatrix,
        cases: Optional[Iterable[FailureCase]] = None,
        growth: float = 1.0,
        feasible_only: bool = False,
    ) -> LoadProjection:
        """The failure with the highest projected maximum utilisation.

        ``feasible_only`` restricts the search to cases that disconnect no
        demand (a partition's utilisation understates its severity — part
        of the traffic simply vanished).
        """
        projections = self.project_all(matrix, cases=cases, growth=growth)
        if feasible_only:
            projections = [p for p in projections if p.is_feasible]
        if not projections:
            raise PlanningError("no (feasible) failure cases to evaluate")
        return max(projections, key=lambda p: p.max_utilisation)


def full_rebuild_routing(
    network: Network, case: FailureCase, pairs: Optional[Sequence[NodePair]] = None
) -> tuple[RoutingMatrix, tuple[NodePair, ...]]:
    """From-scratch mesh re-signal on the surviving topology (reference path).

    Builds the surviving network, routes **every** pair over it with the
    same deterministic Dijkstra the base routing uses, and assembles the
    matrix in the *base* pair and link order (zero columns for pairs the
    failure disconnects, zero rows for failed links).  Quadratically more
    work than the incremental path — kept as the ground truth the parity
    tests and the acceptance benchmark compare against.
    """
    pairs = tuple(pairs) if pairs is not None else network.node_pairs()
    survivor = surviving_network(network, case)
    router = ShortestPathRouter(survivor)
    rows: list[int] = []
    cols: list[int] = []
    infeasible: list[NodePair] = []
    for col, pair in enumerate(pairs):
        if not (survivor.has_node(pair.origin) and survivor.has_node(pair.destination)):
            infeasible.append(pair)
            continue
        try:
            path = router.shortest_path(pair)
        # Recorded structurally: the pair joins the projection's
        # infeasible_pairs, which every planning record reports.
        except RoutingError:  # reprolint: allow[fault-handling]
            infeasible.append(pair)
            continue
        for link in path.links:
            rows.append(network.link_index(link.name))
            cols.append(col)
    coo = scipy.sparse.coo_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(network.num_links, len(pairs))
    )
    matrix = RoutingMatrix(coo, network.link_names, pairs, network=network)
    return matrix, tuple(infeasible)
