"""Failure-case enumeration for what-if planning.

The paper motivates traffic-matrix estimation with failure analysis: an
operator wants to know, *before* an element fails, whether the re-routed
traffic would congest the surviving links.  This module turns a
:class:`~repro.topology.network.Network` into the standard enumeration of
planning cases:

* ``"link"`` — every single directed link fails alone;
* ``"link-pair"`` — both directions between an adjacent node pair fail
  together (fibre cuts take out both directions, the common planning case);
* ``"node"`` — a whole node fails with every incident link (demands
  originating or terminating there are lost, not re-routed).

:func:`surviving_network` derives the post-failure topology as a standalone
:class:`~repro.topology.network.Network` — built the same way
:meth:`Network.subnetwork` extracts regions, by dropping failed elements —
which the full-rebuild reference path and the parity tests use.  The fast
path never calls it: :class:`~repro.routing.incremental.IncrementalRerouter`
routes around failures on the base topology directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanningError
from repro.topology.network import Network

__all__ = ["FailureCase", "BASELINE", "enumerate_failures", "surviving_network"]

_KINDS = ("baseline", "link", "link-pair", "node")


@dataclass(frozen=True)
class FailureCase:
    """One what-if case: a named set of failed links and/or nodes.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"link:LON->FRA"`` or ``"node:AMS"``.
    kind:
        One of ``"baseline"``, ``"link"``, ``"link-pair"``, ``"node"``.
    failed_links:
        Names of the failed directed links (links incident to failed nodes
        need not be listed; the rerouter implies them).
    failed_nodes:
        Names of the failed nodes.
    """

    name: str
    kind: str
    failed_links: tuple[str, ...] = ()
    failed_nodes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanningError("failure case needs a non-empty name")
        if self.kind not in _KINDS:
            raise PlanningError(
                f"unknown failure kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind == "baseline" and (self.failed_links or self.failed_nodes):
            raise PlanningError("baseline case cannot fail any element")
        if self.kind != "baseline" and not (self.failed_links or self.failed_nodes):
            raise PlanningError(f"failure case {self.name!r} fails nothing")

    @property
    def is_baseline(self) -> bool:
        """Whether this is the intact-topology case."""
        return self.kind == "baseline"


#: The intact topology, included first when ``include_baseline`` is set.
BASELINE = FailureCase(name="baseline", kind="baseline")


def enumerate_failures(
    network: Network,
    kinds: Sequence[str] = ("link",),
    include_baseline: bool = False,
) -> tuple[FailureCase, ...]:
    """Enumerate failure cases of the requested kinds, in deterministic order.

    Parameters
    ----------
    network:
        The base topology.
    kinds:
        Any subset of ``("link", "link-pair", "node")``; cases are emitted
        kind by kind in the given order, elements in canonical network
        order.
    include_baseline:
        Prepend the intact-topology :data:`BASELINE` case (useful when a
        sweep should also report the no-failure utilisations).
    """
    for kind in kinds:
        if kind not in _KINDS or kind == "baseline":
            raise PlanningError(
                f"unknown failure kind {kind!r}; expected a subset of "
                "('link', 'link-pair', 'node')"
            )
    cases: list[FailureCase] = [BASELINE] if include_baseline else []
    for kind in kinds:
        if kind == "link":
            for link in network.links:
                cases.append(
                    FailureCase(name=f"link:{link.name}", kind="link", failed_links=(link.name,))
                )
        elif kind == "link-pair":
            seen: set[frozenset[str]] = set()
            for link in network.links:
                endpoints = frozenset((link.source, link.target))
                if endpoints in seen:
                    continue
                seen.add(endpoints)
                both = tuple(
                    other.name
                    for other in network.links
                    if frozenset((other.source, other.target)) == endpoints
                )
                first, second = sorted((link.source, link.target))
                cases.append(
                    FailureCase(
                        name=f"link-pair:{first}<->{second}",
                        kind="link-pair",
                        failed_links=both,
                    )
                )
        else:  # "node"
            for node in network.nodes:
                cases.append(
                    FailureCase(name=f"node:{node.name}", kind="node", failed_nodes=(node.name,))
                )
    return tuple(cases)


def surviving_network(network: Network, case: FailureCase) -> Network:
    """The post-failure topology as a standalone network.

    Failed nodes are dropped with all their incident links; failed links
    are dropped individually.  The result keeps the base element order for
    everything that survives (the same guarantee
    :meth:`~repro.topology.network.Network.subnetwork` gives), so routing
    matrices built on it stay comparable column-for-column with the base
    pairs that survive.
    """
    failed_nodes = set(case.failed_nodes)
    failed_links = set(case.failed_links)
    unknown = failed_nodes - set(network.node_names)
    if unknown:
        raise PlanningError(f"failure case fails unknown nodes: {sorted(unknown)}")
    unknown = failed_links - set(network.link_names)
    if unknown:
        raise PlanningError(f"failure case fails unknown links: {sorted(unknown)}")
    survivor = Network(f"{network.name}|{case.name}")
    for node in network.nodes:
        if node.name not in failed_nodes:
            survivor.add_node(node)
    for link in network.links:
        if (
            link.name in failed_links
            or link.source in failed_nodes
            or link.target in failed_nodes
        ):
            continue
        survivor.add_link(link)
    return survivor
