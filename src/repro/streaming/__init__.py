"""Crash-safe streaming estimation over live SNMP poll rounds.

The batch pipeline answers "what were the demands yesterday?"; this
package answers "what are they *now*, and keep answering while things
break".  :class:`~repro.streaming.stream.PollStream` turns the per-poller
poll matrices of a collector run into an ordered sequence of poll rounds;
:class:`~repro.streaming.daemon.StreamingEstimator` consumes them one at a
time, deriving rates causally and updating its estimate incrementally
(warm-started solves / incremental IPF) while surviving poll loss,
collector outages, solver failures, routing churn and process crashes.
:mod:`~repro.streaming.checkpoint` provides the versioned serialization
that makes a kill -9 followed by a restore reproduce the uninterrupted
run's records bit for bit.
"""

from repro.streaming.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_daemon,
    routing_fingerprint,
    save_checkpoint,
)
from repro.streaming.daemon import StreamingEstimator, StreamRecord
from repro.streaming.stream import CounterTracker, PollRound, PollStream

__all__ = [
    "CHECKPOINT_VERSION",
    "CounterTracker",
    "PollRound",
    "PollStream",
    "StreamRecord",
    "StreamingEstimator",
    "load_checkpoint",
    "restore_daemon",
    "routing_fingerprint",
    "save_checkpoint",
]
