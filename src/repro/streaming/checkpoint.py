"""Versioned checkpoint/restore for the streaming daemon.

A checkpoint is a single ``.npz`` file holding the *entire* mutable state
of a :class:`~repro.streaming.daemon.StreamingEstimator` — counter-tracker
arrays, warm estimate, pending invalidations, the measurement ring buffer
and every counter — plus a JSON metadata blob carrying the format version,
the daemon's configuration, and a fingerprint of the routing matrix the
state was computed under.

Floats travel as raw binary inside the ``.npz`` arrays, so a restore is
*exact*: a daemon killed mid-stream and restored from its last checkpoint
continues producing records bit-identical to the uninterrupted run
(the daemon itself consults neither wall-clock time nor randomness).

Restores are defensive: a version the running code does not understand, a
routing matrix whose fingerprint differs from the checkpoint's, or a
configuration that cannot be reconstructed all raise
:class:`~repro.errors.StreamingError` instead of silently resuming on the
wrong state.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse

from repro.errors import StreamingError
from repro.routing.routing_matrix import RoutingMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.streaming.daemon import StreamingEstimator

__all__ = [
    "CHECKPOINT_VERSION",
    "routing_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_daemon",
]

CHECKPOINT_VERSION = 1

_STATE_FIELDS = (
    "rounds_seen",
    "sequence",
    "epoch",
    "stale_streak",
    "since_watchdog",
    "stale_polls",
    "degraded_updates",
    "watchdog_checks",
    "watchdog_resolves",
    "invalidated_total",
)


def routing_fingerprint(routing: RoutingMatrix) -> str:
    """Backend-independent content hash of a routing matrix.

    The matrix is canonicalised to CSR (a dense backend is converted,
    never the reverse, so sparse backends are not densified) and hashed
    together with the link and pair orderings.  Identical routing state
    yields the same fingerprint whether it lives on the dense or sparse
    backend, so a checkpoint restores across backend choices.
    """
    native = routing.native
    if scipy.sparse.issparse(native):
        csr = native.tocsr().copy()
    else:
        csr = scipy.sparse.csr_matrix(np.asarray(native))
    csr.sum_duplicates()
    csr.sort_indices()
    digest = hashlib.sha256()
    digest.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
    digest.update(csr.indptr.astype(np.int64).tobytes())
    digest.update(csr.indices.astype(np.int64).tobytes())
    digest.update(csr.data.astype(np.float64).tobytes())
    digest.update("\x00".join(routing.link_names).encode())
    digest.update("\x00".join(str(pair) for pair in routing.pairs).encode())
    return digest.hexdigest()


def save_checkpoint(daemon: "StreamingEstimator", path: str) -> None:
    """Write the daemon's full state to ``path`` (exact path, no suffixing)."""
    meta = {
        "version": CHECKPOINT_VERSION,
        "config": daemon.config(),
        "state": {
            **{name: int(getattr(daemon, name)) for name in _STATE_FIELDS},
            "watchdog_forced": bool(daemon.watchdog_forced),
            "has_estimate": daemon.estimate is not None,
            "failed_links": sorted(daemon.failed_links),
            "failed_nodes": sorted(daemon.failed_nodes),
            "ring_count": int(daemon._ring_count),
            "ring_pos": int(daemon._ring_pos),
        },
        "routing_fingerprint": routing_fingerprint(daemon.routing),
    }
    arrays = dict(daemon.tracker.state_arrays())
    arrays["pending_invalid"] = daemon.pending_invalid
    arrays["estimate"] = (
        np.zeros(daemon.routing.num_pairs)
        if daemon.estimate is None
        else daemon.estimate
    )
    arrays["ring_times"] = daemon._ring_times
    arrays["ring_rates"] = daemon._ring_rates
    arrays["ring_valid"] = daemon._ring_valid
    # Writing through an open handle keeps the exact path (np.savez would
    # otherwise append ``.npz``), which lets callers checkpoint atomically
    # via rename from a temp file.
    with open(path, "wb") as handle:
        np.savez(handle, meta=np.array(json.dumps(meta, sort_keys=True)), **arrays)


def load_checkpoint(path: str) -> tuple[dict, dict]:
    """Read ``path`` back into ``(meta, arrays)``, validating the version."""
    try:
        with np.load(path, allow_pickle=False) as data:
            if "meta" not in data:
                raise StreamingError(f"{path!r} is not a streaming checkpoint")
            meta = json.loads(str(data["meta"]))
            arrays = {key: data[key] for key in data.files if key != "meta"}
    except (OSError, ValueError) as exc:
        raise StreamingError(f"cannot read checkpoint {path!r}: {exc}") from exc
    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise StreamingError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return meta, arrays


def restore_daemon(path: str, routing: RoutingMatrix) -> "StreamingEstimator":
    """Reconstruct a daemon from a checkpoint and the *base* routing matrix.

    ``routing`` must be the same base mesh the checkpointing daemon was
    constructed with; recorded topology failures are re-applied through
    the incremental rerouter and the resulting matrix is verified against
    the checkpoint's fingerprint before any state is adopted.
    """
    from repro.streaming.daemon import StreamingEstimator

    meta, arrays = load_checkpoint(path)
    config = meta["config"]
    state = meta["state"]
    daemon = StreamingEstimator(routing=routing, **config)

    daemon.failed_links = set(state["failed_links"])
    daemon.failed_nodes = set(state["failed_nodes"])
    if daemon.failed_links or daemon.failed_nodes:
        daemon.routing, _ = daemon._get_rerouter().reroute_matrix(
            sorted(daemon.failed_links), sorted(daemon.failed_nodes)
        )
    fingerprint = routing_fingerprint(daemon.routing)
    if fingerprint != meta["routing_fingerprint"]:
        raise StreamingError(
            f"checkpoint {path!r} was taken under a different routing matrix "
            "(fingerprint mismatch); restore with the daemon's base routing"
        )

    for name in _STATE_FIELDS:
        setattr(daemon, name, int(state[name]))
    daemon.watchdog_forced = bool(state["watchdog_forced"])
    daemon.tracker.load_state_arrays(arrays)
    pending = np.asarray(arrays["pending_invalid"], dtype=bool)
    if pending.shape != (routing.num_pairs,):
        raise StreamingError(
            f"checkpoint covers {pending.shape[0]} pairs, "
            f"routing has {routing.num_pairs}"
        )
    daemon.pending_invalid = pending.copy()
    daemon.estimate = (
        np.asarray(arrays["estimate"], dtype=float).copy()
        if state["has_estimate"]
        else None
    )
    daemon._ring_times = np.asarray(arrays["ring_times"], dtype=float).copy()
    daemon._ring_rates = np.asarray(arrays["ring_rates"], dtype=float).copy()
    daemon._ring_valid = np.asarray(arrays["ring_valid"], dtype=bool).copy()
    daemon._ring_count = int(state["ring_count"])
    daemon._ring_pos = int(state["ring_pos"])
    return daemon
