"""Poll-round streaming primitives.

The batch pipeline hands :func:`~repro.measurement.snmp.rates_from_poll_matrix`
a complete ``(rounds, objects)`` poll matrix and lets it interpolate over
the holes with full hindsight.  A streaming consumer has neither the whole
matrix nor hindsight: polls arrive one round at a time, possibly from
several pollers, and every hole must be handled *causally* — with only the
past.  This module provides the two primitives the
:class:`~repro.streaming.daemon.StreamingEstimator` builds on:

* :class:`PollStream` — a round-by-round view over one or more
  :class:`~repro.measurement.snmp.PollMatrix` objects sharing a schedule
  (e.g. the per-poller matrices of a
  :class:`~repro.measurement.collector.DistributedCollector`), with
  per-object counter widths so Counter32 pollers can coexist with
  Counter64 ones;
* :class:`CounterTracker` — the causal counterpart of
  ``rates_from_poll_matrix``: O(objects) state that turns consecutive
  polls into interval rates with the same wrap/reset/degenerate semantics,
  but *holds the last derived rate* over holes instead of interpolating
  (the future samples interpolation needs do not exist yet).  On a clean
  schedule the two derivations agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import StreamingError
from repro.measurement.snmp import PollMatrix

__all__ = ["PollRound", "PollStream", "CounterTracker"]

_RATE_PER_BYTE_SECOND = 8.0 / 1e6


@dataclass(frozen=True)
class PollRound:
    """One scheduled poll round across every streamed object.

    Arrays are aligned with the owning :class:`PollStream`'s
    ``object_names``; ``counters`` entries where ``lost`` is true are
    undefined.
    """

    index: int
    scheduled_time: float
    response_times: np.ndarray
    counters: np.ndarray
    lost: np.ndarray


class PollStream:
    """Round-by-round view over poll matrices sharing one schedule.

    Parameters
    ----------
    matrices:
        One or more :class:`~repro.measurement.snmp.PollMatrix` objects
        with identical ``scheduled_times`` (what the pollers of one
        collector produce).  Object name sets must be disjoint; columns are
        concatenated in matrix order.
    """

    def __init__(self, matrices: Sequence[PollMatrix]) -> None:
        if not matrices:
            raise StreamingError("a poll stream needs at least one poll matrix")
        reference = matrices[0].scheduled_times
        names: list[str] = []
        bits: list[int] = []
        for matrix in matrices:
            if matrix.scheduled_times.shape != reference.shape or not np.array_equal(
                matrix.scheduled_times, reference
            ):
                raise StreamingError("poll matrices follow different schedules")
            names.extend(matrix.object_names)
            bits.extend([matrix.counter_bits] * matrix.num_objects)
        if len(set(names)) != len(names):
            raise StreamingError("duplicate object names across poll matrices")
        self._matrices = tuple(matrices)
        self.object_names: tuple[str, ...] = tuple(names)
        #: Per-object counter width (pollers may mix Counter32 and Counter64).
        self.object_bits: np.ndarray = np.asarray(bits, dtype=np.uint64)
        self.scheduled_times: np.ndarray = reference
        self.object_bits.setflags(write=False)

    @classmethod
    def from_collector(cls, collector, series, start_time: Optional[float] = None) -> "PollStream":
        """Stream the faulted poll matrices of a distributed collector run.

        Runs every poller's schedule over ``series`` (fault plans applied
        exactly as in :meth:`~repro.measurement.collector.DistributedCollector.collect`)
        and wraps the resulting matrices.
        """
        return cls(collector.poll_matrices(series, start_time=start_time))

    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Number of poll rounds (intervals + 1)."""
        return len(self.scheduled_times)

    @property
    def num_objects(self) -> int:
        """Number of streamed objects across all matrices."""
        return len(self.object_names)

    def round(self, index: int) -> PollRound:
        """Poll round ``index`` with columns of every matrix concatenated."""
        if not 0 <= index < self.num_rounds:
            raise StreamingError(
                f"round index {index} out of range for {self.num_rounds} rounds"
            )
        return PollRound(
            index=index,
            scheduled_time=float(self.scheduled_times[index]),
            response_times=np.concatenate(
                [matrix.response_times[index] for matrix in self._matrices]
            ),
            counters=np.concatenate(
                [matrix.counters[index] for matrix in self._matrices]
            ),
            lost=np.concatenate([matrix.lost[index] for matrix in self._matrices]),
        )

    def rounds(self, start: int = 0):
        """Iterate rounds from ``start`` (used to resume after a restore)."""
        for index in range(start, self.num_rounds):
            yield self.round(index)


class CounterTracker:
    """Causal per-object rate derivation over a stream of poll rounds.

    Keeps the last *answered* poll of every object (counter value and
    response time) plus the last successfully derived rate.  Each call to
    :meth:`observe` classifies the new poll exactly like the batch path —
    uint64 deltas reduced modulo the per-object counter space, a backwards
    counter within half the space is a recovered wrap, beyond half the
    space a reset — and returns the current rate vector with a freshness
    mask.  Objects without a fresh sample keep their held rate (zero until
    first derivation) and age their staleness counter.

    Because the last answered poll is retained across lost rounds, the
    first poll after a loss burst yields the *gap-average* rate (the
    counter delta over the whole gap), which is what a production
    collector reports after an outage.

    All state is five flat arrays, so the tracker checkpoints exactly and
    cheaply (see :mod:`repro.streaming.checkpoint`).
    """

    def __init__(self, num_objects: int) -> None:
        if num_objects < 1:
            raise StreamingError("tracker needs at least one object")
        self.num_objects = int(num_objects)
        self.have_last = np.zeros(num_objects, dtype=bool)
        self.last_counter = np.zeros(num_objects, dtype=np.uint64)
        self.last_response = np.zeros(num_objects, dtype=float)
        self.rate = np.zeros(num_objects, dtype=float)
        self.stale_rounds = np.zeros(num_objects, dtype=np.int64)
        #: Cumulative classification counts (mirrors RateDiagnostics).
        self.wrap_samples = 0
        self.reset_samples = 0
        self.degenerate_samples = 0
        self.lost_samples = 0

    def observe(
        self,
        response_times: np.ndarray,
        counters: np.ndarray,
        lost: np.ndarray,
        counter_bits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold one poll round into the tracker.

        Returns ``(rates, fresh)``: the per-object rate vector (held values
        where no fresh sample exists) and the boolean mask of objects whose
        rate was derived from this round's poll.
        """
        shape = (self.num_objects,)
        for name, array in (
            ("response_times", response_times),
            ("counters", counters),
            ("lost", lost),
            ("counter_bits", counter_bits),
        ):
            if array.shape != shape:
                raise StreamingError(
                    f"{name} has shape {array.shape}, expected {shape}"
                )
        answered = ~lost
        usable = answered & self.have_last

        # uint64 subtraction wraps modulo 2**64; narrower counters reduce
        # the same difference modulo their own space, recovering the true
        # delta across a legitimate wrap (same arithmetic as the batch path).
        deltas = counters - self.last_counter
        narrow = counter_bits < np.uint64(64)
        if narrow.any():
            space = np.uint64(1) << counter_bits[narrow]
            deltas = deltas.copy()
            deltas[narrow] = deltas[narrow] % space
        half_space = np.uint64(1) << (counter_bits - np.uint64(1))

        elapsed = response_times - self.last_response
        degenerate = usable & (elapsed <= 0)
        backwards = usable & (counters < self.last_counter)
        reset = usable & ~degenerate & backwards & (deltas > half_space)
        fresh = usable & ~degenerate & ~reset

        if fresh.any():
            self.rate[fresh] = (
                deltas[fresh].astype(float) * _RATE_PER_BYTE_SECOND / elapsed[fresh]
            )
        # Re-sync on every answered poll — including after a reset, so the
        # next interval is derived from the rebooted counter's new baseline.
        self.last_counter[answered] = counters[answered]
        self.last_response[answered] = response_times[answered]
        self.have_last |= answered

        self.stale_rounds[fresh] = 0
        self.stale_rounds[~fresh] += 1
        self.lost_samples += int((~answered).sum())
        self.degenerate_samples += int(degenerate.sum())
        self.reset_samples += int(reset.sum())
        self.wrap_samples += int((usable & ~degenerate & backwards & ~reset).sum())
        return self.rate.copy(), fresh

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict[str, np.ndarray]:
        """The tracker's full state as named arrays (for checkpointing)."""
        return {
            "tracker_have_last": self.have_last,
            "tracker_last_counter": self.last_counter,
            "tracker_last_response": self.last_response,
            "tracker_rate": self.rate,
            "tracker_stale_rounds": self.stale_rounds,
            "tracker_counts": np.array(
                [
                    self.wrap_samples,
                    self.reset_samples,
                    self.degenerate_samples,
                    self.lost_samples,
                ],
                dtype=np.int64,
            ),
        }

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Restore state previously produced by :meth:`state_arrays`."""
        have = np.asarray(arrays["tracker_have_last"], dtype=bool)
        if have.shape != (self.num_objects,):
            raise StreamingError(
                f"checkpointed tracker covers {have.shape[0]} objects, "
                f"expected {self.num_objects}"
            )
        self.have_last = have.copy()
        self.last_counter = np.asarray(arrays["tracker_last_counter"], dtype=np.uint64).copy()
        self.last_response = np.asarray(arrays["tracker_last_response"], dtype=float).copy()
        self.rate = np.asarray(arrays["tracker_rate"], dtype=float).copy()
        self.stale_rounds = np.asarray(arrays["tracker_stale_rounds"], dtype=np.int64).copy()
        counts = np.asarray(arrays["tracker_counts"], dtype=np.int64)
        self.wrap_samples = int(counts[0])
        self.reset_samples = int(counts[1])
        self.degenerate_samples = int(counts[2])
        self.lost_samples = int(counts[3])
