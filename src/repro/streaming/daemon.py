"""Crash-safe streaming traffic-matrix estimation.

:class:`StreamingEstimator` is the long-running counterpart of the batch
``estimate_series`` loop: it consumes SNMP poll rounds one at a time,
derives interval rates causally through a
:class:`~repro.streaming.stream.CounterTracker`, and updates its estimate
incrementally through the first-class
:meth:`~repro.estimation.base.Estimator.update` API (warm-started solves /
incremental IPF).  A bounded ring buffer keeps the recent measurement
window; everything older is forgotten, so memory is constant regardless of
stream length.

The daemon is built to *survive* the faults the resilience layer injects:

* **partial data** — polls lost for some links still produce an update;
  missing links use the tracker's held rates;
* **collector outages** — when the fraction of freshly-measured links
  drops below ``min_valid_fraction`` the daemon holds its last estimate
  and emits a record explicitly flagged ``stale`` instead of solving on
  fabricated data;
* **divergence** — every ``watchdog_every`` updates (and after every
  degradation or topology change) a *divergence watchdog* re-solves the
  current snapshot cold through a
  :class:`~repro.resilience.SupervisedEstimator` chain and compares; if
  the incremental estimate drifted beyond ``watchdog_threshold`` the full
  re-solve is adopted and the record says so;
* **routing churn** — :meth:`apply_reroute` re-routes incrementally via
  :class:`~repro.routing.IncrementalRerouter`, bumps the routing *epoch*
  tagged on every record, and invalidates exactly the warm-start entries
  of the pairs the failure actually moved;
* **crashes** — the whole daemon state checkpoints to one ``.npz`` file
  (see :mod:`repro.streaming.checkpoint`); ``kill -9`` followed by
  :meth:`restore` and resuming the stream reproduces the uninterrupted
  run's records bit for bit, because no daemon path consults wall-clock
  time or unseeded randomness.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.errors import EstimationError, SolverError, StreamingError
from repro.estimation.base import EstimationProblem
from repro.estimation.priors import make_prior
from repro.estimation.registry import get_estimator
from repro.resilience.supervisor import SupervisedEstimator
from repro.routing.incremental import IncrementalRerouter, RerouteResult
from repro.routing.routing_matrix import RoutingMatrix
from repro.streaming.stream import PollRound, PollStream, CounterTracker

__all__ = ["StreamRecord", "StreamingEstimator"]

_DRIFT_FLOOR = 1e-12


def _hex(value: float) -> str:
    return float(value).hex()


@dataclass(frozen=True)
class StreamRecord:
    """One emitted per-interval estimate with its provenance flags.

    Attributes
    ----------
    sequence:
        Zero-based interval index (poll round index minus one — the first
        round only primes the counters).
    timestamp:
        Scheduled time of the poll round that closed the interval.
    epoch:
        Routing epoch the estimate was computed under; bumped by
        :meth:`StreamingEstimator.apply_reroute`.
    method:
        Method that produced the estimate (``"held"`` for stale records).
    estimate:
        Estimated demand vector in the routing matrix's pair order.
    stale:
        True when the daemon held its previous estimate instead of solving
        (too few freshly-measured links).
    stale_intervals:
        Consecutive stale records ending at this one (0 when not stale).
    valid_fraction:
        Fraction of links whose rate was derived from this round's polls.
    degraded:
        True when the incremental update failed and the supervised
        fallback chain produced the estimate instead.
    watchdog_checked / watchdog_drift / watchdog_resolved:
        Whether the divergence watchdog ran, the relative drift it
        measured, and whether it replaced the incremental estimate with
        the full re-solve.
    iterations / converged:
        Solver diagnostics of the producing method, when reported.
    """

    sequence: int
    timestamp: float
    epoch: int
    method: str
    estimate: np.ndarray
    stale: bool
    stale_intervals: int
    valid_fraction: float
    degraded: bool
    watchdog_checked: bool
    watchdog_drift: Optional[float]
    watchdog_resolved: bool
    iterations: Optional[int]
    converged: Optional[bool]

    def to_payload(self) -> dict:
        """JSON-safe dict with floats hex-encoded for bit-exact comparison."""
        return {
            "sequence": self.sequence,
            "timestamp": _hex(self.timestamp),
            "epoch": self.epoch,
            "method": self.method,
            "estimate": [_hex(value) for value in self.estimate.tolist()],
            "stale": self.stale,
            "stale_intervals": self.stale_intervals,
            "valid_fraction": _hex(self.valid_fraction),
            "degraded": self.degraded,
            "watchdog_checked": self.watchdog_checked,
            "watchdog_drift": None if self.watchdog_drift is None else _hex(self.watchdog_drift),
            "watchdog_resolved": self.watchdog_resolved,
            "iterations": self.iterations,
            "converged": self.converged,
        }

    def payload_line(self) -> str:
        """Canonical one-line JSON encoding (the chaos drill's record format)."""
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))


class StreamingEstimator:
    """Incremental estimation daemon over a live poll stream.

    Parameters
    ----------
    routing:
        The routing matrix of the measured mesh (its ``network`` must be
        set for :meth:`apply_reroute` to work).
    link_names:
        Streamed object names carrying the per-link byte counters, in
        ``routing.link_names`` order (what
        :attr:`~repro.measurement.collector.DistributedCollector.link_object_names`
        provides).
    lsp_names:
        Optional streamed object names carrying per-pair LSP counters in
        ``routing.pairs`` order.  When present, per-poll origin/destination
        totals are derived from them, enabling gravity-prior and Kruithof
        methods; without them only methods that work from link loads alone
        can run.
    method / method_params:
        Registry name (and constructor kwargs) of the incremental method.
    fallbacks:
        Fallback chain for the supervised full re-solve (watchdog and
        degradation paths).
    watchdog_every:
        Run the divergence watchdog every this many non-stale updates
        (0 disables periodic checks; forced checks still run after
        degradation or reroutes).
    watchdog_threshold:
        Relative L2 drift between incremental and full estimates above
        which the full re-solve is adopted.
    min_valid_fraction:
        Minimum fraction of freshly-measured links required to solve;
        below it the previous estimate is held and flagged stale.
    ring_rounds:
        Ring-buffer capacity, in poll rounds, of the retained measurement
        window (timestamps, link rates, freshness masks).
    budget_iterations / retries:
        Supervision knobs for the full re-solve chain.  Only iteration
        budgets are offered: a wall-clock budget would make degradation
        depend on machine speed and break bit-identical crash recovery.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        link_names: Sequence[str],
        lsp_names: Optional[Sequence[str]] = None,
        method: str = "tomogravity",
        method_params: Optional[Mapping[str, object]] = None,
        fallbacks: Sequence[str] = ("gravity",),
        watchdog_every: int = 12,
        watchdog_threshold: float = 0.25,
        min_valid_fraction: float = 0.5,
        ring_rounds: int = 64,
        budget_iterations: Optional[int] = None,
        retries: int = 1,
    ) -> None:
        if len(link_names) != routing.num_links:
            raise StreamingError(
                f"{len(link_names)} link names for {routing.num_links} routing links"
            )
        if lsp_names is not None and len(lsp_names) != routing.num_pairs:
            raise StreamingError(
                f"{len(lsp_names)} LSP names for {routing.num_pairs} routing pairs"
            )
        if watchdog_every < 0:
            raise StreamingError("watchdog_every must be non-negative")
        if not 0.0 <= float(min_valid_fraction) <= 1.0:
            raise StreamingError("min_valid_fraction must be within [0, 1]")
        if ring_rounds < 1:
            raise StreamingError("ring_rounds must be positive")
        self.routing = routing
        self.base_routing = routing
        self.link_names = tuple(link_names)
        self.lsp_names = None if lsp_names is None else tuple(lsp_names)
        self.method = str(method)
        self.method_params = dict(method_params or {})
        self.fallbacks = tuple(fallbacks)
        self.watchdog_every = int(watchdog_every)
        self.watchdog_threshold = float(watchdog_threshold)
        self.min_valid_fraction = float(min_valid_fraction)
        self.ring_rounds = int(ring_rounds)
        self.budget_iterations = budget_iterations
        self.retries = int(retries)

        self.object_names: tuple[str, ...] = (self.lsp_names or ()) + self.link_names
        self._num_lsps = len(self.lsp_names or ())
        self.tracker = CounterTracker(len(self.object_names))
        self._estimator = get_estimator(self.method, **self.method_params)
        self._supervisor = SupervisedEstimator(
            primary=self.method,
            fallbacks=self.fallbacks,
            primary_params=self.method_params,
            max_iterations=self.budget_iterations,
            retries=self.retries,
        )
        self._rerouter: Optional[IncrementalRerouter] = None
        self._perm_cache: Optional[tuple[tuple[str, ...], np.ndarray]] = None

        # Totals scatter structure (pair -> origin/destination rows).
        pairs = routing.pairs
        self._origins = tuple(dict.fromkeys(pair.origin for pair in pairs))
        self._destinations = tuple(dict.fromkeys(pair.destination for pair in pairs))
        origin_index = {name: idx for idx, name in enumerate(self._origins)}
        destination_index = {name: idx for idx, name in enumerate(self._destinations)}
        self._origin_cols = np.array([origin_index[pair.origin] for pair in pairs])
        self._destination_cols = np.array(
            [destination_index[pair.destination] for pair in pairs]
        )

        # Mutable daemon state (everything below is checkpointed).
        self.rounds_seen = 0
        self.sequence = 0
        self.epoch = 0
        self.failed_links: set[str] = set()
        self.failed_nodes: set[str] = set()
        self.estimate: Optional[np.ndarray] = None
        self.pending_invalid = np.zeros(routing.num_pairs, dtype=bool)
        self.stale_streak = 0
        self.since_watchdog = 0
        self.watchdog_forced = False
        self.stale_polls = 0
        self.degraded_updates = 0
        self.watchdog_checks = 0
        self.watchdog_resolves = 0
        self.invalidated_total = 0

        num_links = routing.num_links
        self._ring_times = np.zeros(self.ring_rounds, dtype=float)
        self._ring_rates = np.zeros((self.ring_rounds, num_links), dtype=float)
        self._ring_valid = np.zeros((self.ring_rounds, num_links), dtype=bool)
        self._ring_count = 0
        self._ring_pos = 0

    @classmethod
    def from_collector(cls, collector, **kwargs) -> "StreamingEstimator":
        """Daemon wired to a :class:`~repro.measurement.collector.DistributedCollector`.

        Uses the collector's routing matrix and its LSP/link SNMP object
        names, so ``daemon.run(PollStream.from_collector(collector, series))``
        works out of the box.
        """
        return cls(
            routing=collector.routing,
            link_names=collector.link_object_names,
            lsp_names=collector.lsp_object_names,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # configuration echo (used by the checkpoint layer)
    # ------------------------------------------------------------------
    def config(self) -> dict:
        """JSON-safe constructor arguments (sans routing) of this daemon."""
        return {
            "link_names": list(self.link_names),
            "lsp_names": None if self.lsp_names is None else list(self.lsp_names),
            "method": self.method,
            "method_params": dict(self.method_params),
            "fallbacks": list(self.fallbacks),
            "watchdog_every": self.watchdog_every,
            "watchdog_threshold": self.watchdog_threshold,
            "min_valid_fraction": self.min_valid_fraction,
            "ring_rounds": self.ring_rounds,
            "budget_iterations": self.budget_iterations,
            "retries": self.retries,
        }

    # ------------------------------------------------------------------
    # ring buffer
    # ------------------------------------------------------------------
    def _ring_append(self, timestamp: float, rates: np.ndarray, valid: np.ndarray) -> None:
        pos = self._ring_pos
        self._ring_times[pos] = timestamp
        self._ring_rates[pos] = rates
        self._ring_valid[pos] = valid
        self._ring_pos = (pos + 1) % self.ring_rounds
        self._ring_count = min(self._ring_count + 1, self.ring_rounds)

    def window(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Retained measurement window, oldest first.

        Returns ``(timestamps, link_rates, valid)`` with shapes ``(W,)``,
        ``(W, L)`` and ``(W, L)`` where ``W <= ring_rounds``.
        """
        if self._ring_count < self.ring_rounds:
            order = np.arange(self._ring_count)
        else:
            order = (np.arange(self.ring_rounds) + self._ring_pos) % self.ring_rounds
        return (
            self._ring_times[order].copy(),
            self._ring_rates[order].copy(),
            self._ring_valid[order].copy(),
        )

    # ------------------------------------------------------------------
    # routing churn
    # ------------------------------------------------------------------
    def _get_rerouter(self) -> IncrementalRerouter:
        if self._rerouter is None:
            if self.base_routing.network is None:
                raise StreamingError(
                    "routing matrix carries no network; cannot apply reroutes"
                )
            self._rerouter = IncrementalRerouter(self.base_routing.network)
        return self._rerouter

    def apply_reroute(
        self,
        failed_links: Iterable[str] = (),
        failed_nodes: Iterable[str] = (),
    ) -> RerouteResult:
        """Fold a topology change into the stream mid-flight.

        Failures accumulate: each call re-routes the *base* mesh around the
        union of every failure reported so far (established paths stay put,
        exactly like the incremental rerouter's RSVP-TE semantics).  The
        routing epoch is bumped, the warm-start entries of precisely the
        pairs whose paths moved are invalidated (they re-seed from the
        prior at the next update), and the next update is forced through
        the divergence watchdog.
        """
        self.failed_links |= set(failed_links)
        self.failed_nodes |= set(failed_nodes)
        new_routing, result = self._get_rerouter().reroute_matrix(
            sorted(self.failed_links), sorted(self.failed_nodes)
        )
        if new_routing.pairs != self.routing.pairs or new_routing.num_links != len(
            self.link_names
        ):
            raise StreamingError("rerouted matrix does not match the streamed mesh")
        affected = np.zeros(self.routing.num_pairs, dtype=bool)
        pair_position = {pair: idx for idx, pair in enumerate(self.routing.pairs)}
        for pair in result.rerouted:
            affected[pair_position[pair]] = True
        self.routing = new_routing
        self.epoch += 1
        self.pending_invalid |= affected
        self.watchdog_forced = True
        telemetry.counter_inc("stream.reroutes")
        telemetry.add_event(
            "stream.reroute",
            epoch=self.epoch,
            rerouted=len(result.rerouted),
            infeasible=len(result.infeasible),
        )
        return result

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def _problem(
        self, link_rates: np.ndarray, lsp_rates: Optional[np.ndarray]
    ) -> EstimationProblem:
        origin_totals = destination_totals = None
        if lsp_rates is not None:
            origin_vec = np.zeros(len(self._origins))
            destination_vec = np.zeros(len(self._destinations))
            np.add.at(origin_vec, self._origin_cols, lsp_rates)
            np.add.at(destination_vec, self._destination_cols, lsp_rates)
            origin_totals = dict(zip(self._origins, origin_vec.tolist()))
            destination_totals = dict(zip(self._destinations, destination_vec.tolist()))
        return EstimationProblem(
            routing=self.routing,
            link_loads=link_rates,
            origin_totals=origin_totals,
            destination_totals=destination_totals,
        )

    def _prepare_warm(self, problem: EstimationProblem) -> Optional[np.ndarray]:
        """Previous estimate as warm start, with churned pairs re-seeded."""
        if self.estimate is None:
            self.pending_invalid[:] = False
            return None
        warm = self.estimate.copy()
        if self.pending_invalid.any():
            kind = "gravity" if problem.origin_totals is not None else "uniform"
            replacement = make_prior(problem, kind)
            count = int(self.pending_invalid.sum())
            warm[self.pending_invalid] = replacement[self.pending_invalid]
            self.pending_invalid[:] = False
            self.invalidated_total += count
            telemetry.counter_inc("stream.invalidated_pairs", count)
        return warm

    def _full_resolve(self, problem: EstimationProblem):
        """Cold supervised re-solve of the current snapshot."""
        with telemetry.span("stream.resolve", method=self.method):
            return self._supervisor.estimate(problem)

    @staticmethod
    def _diagnostic_ints(result) -> tuple[Optional[int], Optional[bool]]:
        iterations = result.diagnostics.get("iterations")
        converged = result.diagnostics.get("converged")
        return (
            None if iterations is None else int(iterations),
            None if converged is None else bool(converged),
        )

    def _step(
        self,
        timestamp: float,
        response_times: np.ndarray,
        counters: np.ndarray,
        lost: np.ndarray,
        counter_bits: np.ndarray,
    ) -> Optional[StreamRecord]:
        rates, fresh = self.tracker.observe(response_times, counters, lost, counter_bits)
        self.rounds_seen += 1
        if self.rounds_seen == 1:
            # The first round only primes the counters; no interval exists yet.
            return None

        num_lsps = self._num_lsps
        link_rates = rates[num_lsps:]
        fresh_links = fresh[num_lsps:]
        lsp_rates = rates[:num_lsps] if num_lsps else None
        valid_fraction = float(fresh_links.mean())
        self._ring_append(timestamp, link_rates, fresh_links)

        telemetry.counter_inc("stream.polls")
        telemetry.gauge_set("stream.valid_fraction", valid_fraction)
        telemetry.gauge_set("stream.ring_rounds", float(self._ring_count))
        telemetry.gauge_set("stream.epoch", float(self.epoch))

        stale = valid_fraction < self.min_valid_fraction
        sequence = self.sequence
        self.sequence += 1

        if stale:
            self.stale_streak += 1
            self.stale_polls += 1
            telemetry.counter_inc("stream.stale_polls")
            telemetry.add_event(
                "stream.stale", sequence=sequence, valid_fraction=valid_fraction
            )
            held = (
                np.zeros(self.routing.num_pairs)
                if self.estimate is None
                else self.estimate.copy()
            )
            return StreamRecord(
                sequence=sequence,
                timestamp=timestamp,
                epoch=self.epoch,
                method="held",
                estimate=held,
                stale=True,
                stale_intervals=self.stale_streak,
                valid_fraction=valid_fraction,
                degraded=False,
                watchdog_checked=False,
                watchdog_drift=None,
                watchdog_resolved=False,
                iterations=None,
                converged=None,
            )

        self.stale_streak = 0
        problem = self._problem(link_rates, lsp_rates)
        warm = self._prepare_warm(problem)

        degraded = False
        with telemetry.span("stream.update", sequence=sequence, epoch=self.epoch):
            try:
                result = self._estimator.update(problem, previous=warm)
            except (EstimationError, SolverError) as exc:
                degraded = True
                self.degraded_updates += 1
                telemetry.counter_inc("stream.degraded_updates")
                warnings.warn(
                    f"incremental update failed at sequence {sequence} "
                    f"({type(exc).__name__}: {exc}); falling back to a "
                    "supervised full re-solve",
                    RuntimeWarning,
                    stacklevel=2,
                )
                result = self._full_resolve(problem)
        estimate = np.maximum(np.asarray(result.vector, dtype=float), 0.0)
        method = result.method
        iterations, converged = self._diagnostic_ints(result)

        watchdog_checked = False
        watchdog_resolved = False
        drift: Optional[float] = None
        self.since_watchdog += 1
        due = self.watchdog_every > 0 and self.since_watchdog >= self.watchdog_every
        if degraded:
            # The supervised chain already produced a full re-solve.
            self.since_watchdog = 0
            self.watchdog_forced = False
        elif due or self.watchdog_forced:
            watchdog_checked = True
            self.watchdog_checks += 1
            self.since_watchdog = 0
            self.watchdog_forced = False
            with telemetry.span("stream.watchdog", sequence=sequence):
                reference = self._full_resolve(problem)
                full = np.maximum(np.asarray(reference.vector, dtype=float), 0.0)
                scale = max(float(np.linalg.norm(full)), _DRIFT_FLOOR)
                drift = float(np.linalg.norm(estimate - full) / scale)
                telemetry.counter_inc("stream.watchdog_checks")
                telemetry.gauge_set("stream.watchdog_drift", drift)
                if drift > self.watchdog_threshold:
                    watchdog_resolved = True
                    self.watchdog_resolves += 1
                    telemetry.counter_inc("stream.watchdog_resolves")
                    telemetry.add_event(
                        "stream.watchdog_resolve", sequence=sequence, drift=drift
                    )
                    estimate = full
                    method = reference.method
                    iterations, converged = self._diagnostic_ints(reference)

        self.estimate = estimate.copy()
        return StreamRecord(
            sequence=sequence,
            timestamp=timestamp,
            epoch=self.epoch,
            method=method,
            estimate=estimate,
            stale=False,
            stale_intervals=0,
            valid_fraction=valid_fraction,
            degraded=degraded,
            watchdog_checked=watchdog_checked,
            watchdog_drift=drift,
            watchdog_resolved=watchdog_resolved,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # crash safety
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Write the daemon's full state to ``path`` (see :mod:`repro.streaming.checkpoint`)."""
        from repro.streaming.checkpoint import save_checkpoint

        with telemetry.span("stream.checkpoint", rounds=self.rounds_seen):
            save_checkpoint(self, path)
        telemetry.counter_inc("stream.checkpoints")

    @classmethod
    def restore(cls, path: str, routing: RoutingMatrix) -> "StreamingEstimator":
        """Reconstruct a daemon from a checkpoint and its base routing matrix."""
        from repro.streaming.checkpoint import restore_daemon

        return restore_daemon(path, routing)

    # ------------------------------------------------------------------
    # stream consumption
    # ------------------------------------------------------------------
    def _stream_permutation(self, stream: PollStream) -> np.ndarray:
        if self._perm_cache is not None and self._perm_cache[0] == stream.object_names:
            return self._perm_cache[1]
        index = {name: pos for pos, name in enumerate(stream.object_names)}
        missing = [name for name in self.object_names if name not in index]
        if missing:
            raise StreamingError(
                f"stream is missing {len(missing)} configured objects "
                f"(first: {missing[0]!r})"
            )
        perm = np.array([index[name] for name in self.object_names], dtype=np.int64)
        self._perm_cache = (stream.object_names, perm)
        return perm

    def process_round(self, poll_round: PollRound, stream: PollStream) -> Optional[StreamRecord]:
        """Fold one :class:`~repro.streaming.stream.PollRound` into the daemon.

        Returns the emitted record, or ``None`` for the priming round.
        Rounds must be consumed in order; feeding a round the daemon has
        already consumed (or skipping ahead) raises.
        """
        if poll_round.index != self.rounds_seen:
            raise StreamingError(
                f"expected round {self.rounds_seen}, got round {poll_round.index} "
                "(streams must be consumed in order; resume from a checkpoint "
                "re-enters at the recorded round)"
            )
        perm = self._stream_permutation(stream)
        with telemetry.span("stream.poll", round=poll_round.index, epoch=self.epoch):
            return self._step(
                poll_round.scheduled_time,
                poll_round.response_times[perm],
                poll_round.counters[perm],
                poll_round.lost[perm],
                stream.object_bits[perm],
            )

    def run(self, stream: PollStream) -> Iterator[StreamRecord]:
        """Consume ``stream`` from the daemon's current position.

        A fresh daemon starts at round 0; a restored daemon picks up at
        the first round the checkpoint had not consumed, which is what
        makes kill/resume reproduce the uninterrupted run exactly.
        """
        for poll_round in stream.rounds(self.rounds_seen):
            record = self.process_round(poll_round, stream)
            if record is not None:
                yield record
