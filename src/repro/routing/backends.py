"""Pluggable linear-algebra backends for the routing matrix.

The routing matrix of a backbone is extremely sparse: a demand traverses a
handful of links, so the fraction of non-zero entries scales like
``mean_path_length / num_links`` and drops quickly with network size (the
paper's American network is already below 2 % dense).  Storing ``R`` as a
dense ndarray is convenient for the small European network but wasteful for
anything production-scale, and every downstream consumer that writes
``R @ s`` forces the dense representation.

This module hides the storage decision behind a small operator interface:

* :class:`DenseBackend` — a NumPy ndarray, best for small or dense matrices;
* :class:`SparseBackend` — a SciPy CSR matrix, best for large sparse ones;
* :func:`make_backend` — normalises any input (ndarray, sparse matrix or an
  existing backend) and auto-selects the representation by size and density.

Consumers interact through ``matvec`` / ``rmatvec`` / ``matmat`` /
``rmatmat`` (operator-style products), ``row`` / ``column`` (dense slices)
and ``gram`` (the cached ``R' R``); ``toarray`` materialises — and caches —
the dense view for the few algorithms that genuinely need it (active-set
NNLS, LP constraint blocks).  Both backends produce numerically matching
results, so the choice is purely a performance knob.
"""

from __future__ import annotations

import abc
from typing import Protocol, Union, runtime_checkable

import numpy as np
import scipy.sparse

from repro.errors import RoutingError

__all__ = [
    "RoutingOperator",
    "RoutingBackend",
    "DenseBackend",
    "SparseBackend",
    "make_backend",
    "SPARSE_SIZE_THRESHOLD",
    "SPARSE_DENSITY_THRESHOLD",
]

#: Below this many entries the dense representation is always used: the
#: constant factors of sparse formats only pay off for larger systems.
SPARSE_SIZE_THRESHOLD = 50_000

#: Above this fill fraction the dense representation is used regardless of
#: size (CSR products beat BLAS only on genuinely sparse data).
SPARSE_DENSITY_THRESHOLD = 0.25


@runtime_checkable
class RoutingOperator(Protocol):
    """The operator surface estimation code may assume of a routing matrix.

    This is the *typed contract* between the routing layer and its
    consumers: solvers written against ``RoutingOperator`` work with every
    :class:`RoutingBackend` implementation — and, crucially, they cannot
    densify, because the protocol deliberately omits ``toarray``.  Code
    that needs the dense view must take a concrete backend and justify the
    materialisation to reprolint's sparse-safety rule.
    (:class:`~repro.routing.routing_matrix.RoutingMatrix` forwards the
    product methods to its backend and exposes the full operator via its
    ``backend`` property.)

    mypy checks structural conformance (``repro.routing`` and
    ``repro.estimation`` are type-checked in CI); the protocol is also
    ``runtime_checkable`` so tests can assert conformance with
    ``isinstance``.
    """

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_links, num_pairs)``."""
        ...

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``R @ x`` for a vector ``x`` of length ``num_pairs``."""
        ...

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``R.T @ y`` for a vector ``y`` of length ``num_links``."""
        ...

    def gram(self) -> np.ndarray:
        """The dense Gram matrix ``R.T @ R``."""
        ...

    def column_select(self, indices: np.ndarray) -> "RoutingOperator":
        """A new operator restricted to the given pair columns."""
        ...


class RoutingBackend(abc.ABC):
    """Operator-style storage of a ``(num_links, num_pairs)`` matrix."""

    #: Short identifier (``"dense"`` / ``"sparse"``) used in reprs and tests.
    kind: str = "abstract"

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """``(num_links, num_pairs)``."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of structurally non-zero entries."""

    @property
    def density(self) -> float:
        """Fraction of non-zero entries (0 for an empty matrix)."""
        rows, cols = self.shape
        size = rows * cols
        return self.nnz / size if size else 0.0

    @abc.abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``R @ x`` for a vector ``x`` of length ``num_pairs``."""

    @abc.abstractmethod
    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``R.T @ y`` for a vector ``y`` of length ``num_links``."""

    @abc.abstractmethod
    def matmat(self, X: np.ndarray) -> np.ndarray:
        """``R @ X`` for a dense ``(num_pairs, k)`` matrix, returned dense."""

    @abc.abstractmethod
    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        """``R.T @ Y`` for a dense ``(num_links, k)`` matrix, returned dense."""

    @abc.abstractmethod
    def row(self, index: int) -> np.ndarray:
        """Dense copy of one row."""

    @abc.abstractmethod
    def column(self, index: int) -> np.ndarray:
        """Dense copy of one column."""

    @abc.abstractmethod
    def column_select(self, indices: np.ndarray) -> "RoutingBackend":
        """A new backend of the same kind holding only the given columns.

        This is the sparse-safe replacement for ``toarray()[:, indices]``:
        estimators that restrict the problem to a demand subset (entropy's
        free set, partial-measurement reductions) stay in CSR on sparse
        backends instead of materialising the dense view.
        """

    @abc.abstractmethod
    def column_sums(self) -> np.ndarray:
        """Per-column sums (the path length of every pair)."""

    @abc.abstractmethod
    def gram(self) -> np.ndarray:
        """The dense Gram matrix ``R.T @ R`` (cached)."""

    @abc.abstractmethod
    def toarray(self) -> np.ndarray:
        """Dense ndarray view (cached; do not mutate)."""

    @abc.abstractmethod
    def validate_entries(self, tolerance: float = 1e-12) -> None:
        """Raise :class:`RoutingError` unless every entry lies in [0, 1]."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows, cols = self.shape
        return f"{type(self).__name__}({rows}x{cols}, density={self.density:.3f})"


class DenseBackend(RoutingBackend):
    """Routing matrix stored as a contiguous NumPy array."""

    kind = "dense"

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise RoutingError("routing matrix must be two-dimensional")
        self._matrix = matrix
        self._gram: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, int]:
        rows, cols = self._matrix.shape
        return (int(rows), int(cols))

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._matrix))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ x

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self._matrix.T @ y

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self._matrix @ X

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self._matrix.T @ Y

    def row(self, index: int) -> np.ndarray:
        return self._matrix[index]

    def column(self, index: int) -> np.ndarray:
        return self._matrix[:, index]

    def column_select(self, indices: np.ndarray) -> "DenseBackend":
        return DenseBackend(self._matrix[:, np.asarray(indices)])

    def column_sums(self) -> np.ndarray:
        return self._matrix.sum(axis=0)

    def gram(self) -> np.ndarray:
        if self._gram is None:
            self._gram = self._matrix.T @ self._matrix
        return self._gram

    def toarray(self) -> np.ndarray:
        return self._matrix

    def validate_entries(self, tolerance: float = 1e-12) -> None:
        if np.any(self._matrix < -tolerance) or np.any(self._matrix > 1 + tolerance):
            raise RoutingError("routing matrix entries must lie in [0, 1]")


class SparseBackend(RoutingBackend):
    """Routing matrix stored in compressed sparse row (CSR) format."""

    kind = "sparse"

    def __init__(self, matrix: Union[np.ndarray, scipy.sparse.spmatrix]) -> None:
        sparse = scipy.sparse.csr_matrix(matrix, dtype=float)
        if sparse.ndim != 2:
            raise RoutingError("routing matrix must be two-dimensional")
        sparse.eliminate_zeros()
        self._matrix = sparse
        self._dense: np.ndarray | None = None
        self._gram: np.ndarray | None = None

    @property
    def raw(self) -> scipy.sparse.csr_matrix:
        """The underlying CSR matrix (for sparse-aware consumers)."""
        return self._matrix

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    @property
    def nnz(self) -> int:
        return int(self._matrix.nnz)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ np.asarray(x, dtype=float)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self._matrix.T @ np.asarray(y, dtype=float)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self._matrix @ X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return np.asarray(self._matrix.T @ Y)

    def row(self, index: int) -> np.ndarray:
        return self._matrix.getrow(index).toarray().ravel()

    def column(self, index: int) -> np.ndarray:
        return self._matrix.getcol(index).toarray().ravel()

    def column_select(self, indices: np.ndarray) -> "SparseBackend":
        return SparseBackend(self._matrix[:, np.asarray(indices)])

    def column_sums(self) -> np.ndarray:
        return np.asarray(self._matrix.sum(axis=0)).ravel()

    def gram(self) -> np.ndarray:
        if self._gram is None:
            self._gram = np.asarray((self._matrix.T @ self._matrix).todense())
        return self._gram

    def toarray(self) -> np.ndarray:
        if self._dense is None:
            self._dense = self._matrix.toarray()
        return self._dense

    def validate_entries(self, tolerance: float = 1e-12) -> None:
        data = self._matrix.data
        if data.size and (data.min() < -tolerance or data.max() > 1 + tolerance):
            raise RoutingError("routing matrix entries must lie in [0, 1]")


def make_backend(
    matrix: Union[np.ndarray, scipy.sparse.spmatrix, RoutingBackend],
    backend: str = "auto",
) -> RoutingBackend:
    """Wrap ``matrix`` in a routing backend.

    Parameters
    ----------
    matrix:
        Dense array, SciPy sparse matrix, or an existing backend (returned
        as-is when it already matches the requested kind).
    backend:
        ``"dense"``, ``"sparse"`` or ``"auto"``.  Auto selection picks the
        sparse representation when the matrix has at least
        :data:`SPARSE_SIZE_THRESHOLD` entries and a fill fraction of at most
        :data:`SPARSE_DENSITY_THRESHOLD`; small or dense matrices stay dense.
    """
    if backend not in ("auto", "dense", "sparse"):
        raise RoutingError(f"unknown routing backend {backend!r}")
    if isinstance(matrix, RoutingBackend):
        if backend == "auto" or matrix.kind == backend:
            return matrix
        if backend == "dense":
            return DenseBackend(matrix.toarray())
        source = matrix.raw if isinstance(matrix, SparseBackend) else matrix.toarray()
        return SparseBackend(source)
    if backend == "dense":
        if scipy.sparse.issparse(matrix):
            matrix = matrix.toarray()
        return DenseBackend(matrix)
    if backend == "sparse":
        return SparseBackend(matrix)
    # Auto selection by size and density.
    if scipy.sparse.issparse(matrix):
        rows, cols = matrix.shape
        size = rows * cols
        density = matrix.nnz / size if size else 0.0
    else:
        matrix = np.asarray(matrix, dtype=float)
        size = matrix.size
        density = np.count_nonzero(matrix) / size if size else 0.0
    if size >= SPARSE_SIZE_THRESHOLD and density <= SPARSE_DENSITY_THRESHOLD:
        return SparseBackend(matrix)
    if scipy.sparse.issparse(matrix):
        matrix = matrix.toarray()
    return DenseBackend(matrix)
