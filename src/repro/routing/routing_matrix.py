"""Construction of the routing matrix ``R`` from routed paths.

The routing matrix is the central object of the estimation problem
``R s = t`` (paper Eq. 1-2): ``R`` has one row per directed link and one
column per origin-destination pair; entry ``r_lp`` is 1 when the demand of
pair ``p`` traverses link ``l`` (or the traversed fraction for multi-path
routing).

:class:`RoutingMatrix` bundles the NumPy array with the link and pair
orderings it was built from, so downstream code never has to guess which row
or column corresponds to which network element.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import RoutingError
from repro.routing.cspf import CSPFRouter
from repro.routing.shortest_path import Path, ShortestPathRouter
from repro.topology.elements import NodePair
from repro.topology.network import Network

__all__ = ["RoutingMatrix", "build_routing_matrix", "build_ecmp_routing_matrix"]


class RoutingMatrix:
    """The routing matrix together with its row/column labelling.

    Parameters
    ----------
    matrix:
        Array of shape ``(num_links, num_pairs)`` with entries in [0, 1].
    link_names:
        Row labels (canonical link order of the network).
    pairs:
        Column labels (canonical origin-destination pair order).
    network:
        The network the matrix was built from (kept for convenience).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        link_names: Sequence[str],
        pairs: Sequence[NodePair],
        network: Optional[Network] = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise RoutingError("routing matrix must be two-dimensional")
        if matrix.shape != (len(link_names), len(pairs)):
            raise RoutingError(
                f"routing matrix shape {matrix.shape} does not match "
                f"{len(link_names)} links x {len(pairs)} pairs"
            )
        if np.any(matrix < -1e-12) or np.any(matrix > 1 + 1e-12):
            raise RoutingError("routing matrix entries must lie in [0, 1]")
        self.matrix = matrix
        self.link_names = tuple(link_names)
        self.pairs = tuple(pairs)
        self.network = network
        self._pair_index = {pair: idx for idx, pair in enumerate(self.pairs)}
        self._link_index = {name: idx for idx, name in enumerate(self.link_names)}

    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Number of rows (directed links)."""
        return self.matrix.shape[0]

    @property
    def num_pairs(self) -> int:
        """Number of columns (origin-destination pairs)."""
        return self.matrix.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_links, num_pairs)``."""
        return self.matrix.shape

    def pair_index(self, pair: NodePair) -> int:
        """Column index of ``pair``."""
        try:
            return self._pair_index[pair]
        except KeyError as exc:
            raise RoutingError(f"pair {pair} not present in routing matrix") from exc

    def link_row(self, link_name: str) -> np.ndarray:
        """Row of the matrix for ``link_name``."""
        try:
            return self.matrix[self._link_index[link_name]]
        except KeyError as exc:
            raise RoutingError(f"link {link_name!r} not present in routing matrix") from exc

    def pair_column(self, pair: NodePair) -> np.ndarray:
        """Column of the matrix for ``pair`` (the links it traverses)."""
        return self.matrix[:, self.pair_index(pair)]

    def link_loads(self, demands: np.ndarray) -> np.ndarray:
        """Compute ``t = R s`` for a demand vector ``s``.

        This is how the paper constructs its consistent evaluation data set
        (Section 5.1.4): link loads are computed from the measured demands
        and the simulated routing, not measured separately.
        """
        demands = np.asarray(demands, dtype=float)
        if demands.shape != (self.num_pairs,):
            raise RoutingError(
                f"demand vector has shape {demands.shape}, expected ({self.num_pairs},)"
            )
        return self.matrix @ demands

    def rank(self) -> int:
        """Numerical rank of the routing matrix.

        The estimation problem is under-determined whenever the rank is
        smaller than the number of pairs, which is the normal situation in
        backbones (many more pairs than links).
        """
        return int(np.linalg.matrix_rank(self.matrix))

    def nullity(self) -> int:
        """Dimension of the null space, i.e. the degrees of freedom left free."""
        return self.num_pairs - self.rank()

    def is_underdetermined(self) -> bool:
        """Whether ``R s = t`` has infinitely many non-negative candidates."""
        return self.rank() < self.num_pairs

    def path_length(self, pair: NodePair) -> float:
        """Number of links (possibly fractional for ECMP) used by ``pair``."""
        return float(self.pair_column(pair).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutingMatrix(links={self.num_links}, pairs={self.num_pairs}, rank={self.rank()})"


def build_routing_matrix(
    network: Network,
    paths: Optional[Mapping[NodePair, Path]] = None,
    use_cspf: bool = False,
    bandwidths: Optional[Mapping[NodePair, float]] = None,
) -> RoutingMatrix:
    """Build the 0/1 single-path routing matrix for ``network``.

    Parameters
    ----------
    network:
        The topology.  Its canonical link and pair orderings become the row
        and column orderings of the matrix.
    paths:
        Pre-computed paths per pair.  When omitted, paths are computed with
        plain shortest-path routing or, if ``use_cspf`` is set, with the
        CSPF simulator and the given ``bandwidths``.
    use_cspf:
        Route with :class:`~repro.routing.cspf.CSPFRouter` instead of plain
        Dijkstra.
    bandwidths:
        LSP bandwidth values used by CSPF (ignored otherwise).
    """
    pairs = network.node_pairs()
    if paths is None:
        if use_cspf:
            router = CSPFRouter(network)
            paths = router.route_all(bandwidths=dict(bandwidths or {}))
        else:
            paths = ShortestPathRouter(network).route_all(pairs)
    missing = [pair for pair in pairs if pair not in paths]
    if missing:
        raise RoutingError(f"missing paths for pairs: {[str(p) for p in missing[:5]]}")

    matrix = np.zeros((network.num_links, len(pairs)))
    for col, pair in enumerate(pairs):
        for link in paths[pair].links:
            matrix[network.link_index(link.name), col] = 1.0
    return RoutingMatrix(matrix, network.link_names, pairs, network=network)


def build_ecmp_routing_matrix(network: Network) -> RoutingMatrix:
    """Build a fractional routing matrix with even ECMP splitting.

    Every equal-cost shortest path of a pair carries ``1/k`` of the demand,
    where ``k`` is the number of such paths.  The paper notes that the
    formulation extends to this case by allowing fractional entries in
    ``R``; this builder exists to exercise that extension.
    """
    pairs = network.node_pairs()
    router = ShortestPathRouter(network)
    matrix = np.zeros((network.num_links, len(pairs)))
    for col, pair in enumerate(pairs):
        ecmp_paths = router.all_shortest_paths(pair)
        share = 1.0 / len(ecmp_paths)
        for path in ecmp_paths:
            for link in path.links:
                matrix[network.link_index(link.name), col] += share
    return RoutingMatrix(matrix, network.link_names, pairs, network=network)
