"""Construction of the routing matrix ``R`` from routed paths.

The routing matrix is the central object of the estimation problem
``R s = t`` (paper Eq. 1-2): ``R`` has one row per directed link and one
column per origin-destination pair; entry ``r_lp`` is 1 when the demand of
pair ``p`` traverses link ``l`` (or the traversed fraction for multi-path
routing).

:class:`RoutingMatrix` bundles the storage backend (dense ndarray or SciPy
CSR, auto-selected by size and density — see :mod:`repro.routing.backends`)
with the link and pair orderings it was built from, so downstream code never
has to guess which row or column corresponds to which network element.
Consumers should prefer the operator-style products (:meth:`link_loads` /
:meth:`matvec`, :meth:`rmatvec`, :meth:`matmat`, :meth:`gram`) over the
dense :attr:`matrix` view; expensive derived quantities (numerical rank,
path lengths, the Gram matrix, the dense view itself) are computed once and
cached.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np
import scipy.sparse

from repro import telemetry
from repro.errors import RoutingError
from repro.routing.backends import RoutingBackend, make_backend
from repro.routing.cspf import CSPFRouter
from repro.routing.shortest_path import Path, ShortestPathRouter
from repro.topology.elements import NodePair
from repro.topology.network import Network

__all__ = ["RoutingMatrix", "build_routing_matrix", "build_ecmp_routing_matrix"]


class RoutingMatrix:
    """The routing matrix together with its row/column labelling.

    Parameters
    ----------
    matrix:
        Array-like or SciPy sparse matrix of shape ``(num_links,
        num_pairs)`` with entries in [0, 1]; an existing
        :class:`~repro.routing.backends.RoutingBackend` is also accepted.
    link_names:
        Row labels (canonical link order of the network).
    pairs:
        Column labels (canonical origin-destination pair order).
    network:
        The network the matrix was built from (kept for convenience).
    backend:
        Storage backend: ``"auto"`` (default — sparse CSR for large sparse
        matrices, dense otherwise), ``"dense"`` or ``"sparse"``.
    """

    def __init__(
        self,
        matrix: Union[np.ndarray, scipy.sparse.spmatrix, RoutingBackend],
        link_names: Sequence[str],
        pairs: Sequence[NodePair],
        network: Optional[Network] = None,
        backend: str = "auto",
    ) -> None:
        self._backend = make_backend(matrix, backend=backend)
        if self._backend.shape != (len(link_names), len(pairs)):
            raise RoutingError(
                f"routing matrix shape {self._backend.shape} does not match "
                f"{len(link_names)} links x {len(pairs)} pairs"
            )
        self._backend.validate_entries()
        self.link_names = tuple(link_names)
        self.pairs = tuple(pairs)
        self.network = network
        self._pair_index = {pair: idx for idx, pair in enumerate(self.pairs)}
        self._link_index = {name: idx for idx, name in enumerate(self.link_names)}
        self._rank: Optional[int] = None
        self._path_lengths: Optional[np.ndarray] = None
        self._spectral_radius: Optional[float] = None

    # ------------------------------------------------------------------
    # backend / storage
    # ------------------------------------------------------------------
    @property
    def backend(self) -> RoutingBackend:
        """The storage backend in use."""
        return self._backend

    @property
    def backend_kind(self) -> str:
        """``"dense"`` or ``"sparse"``."""
        return self._backend.kind

    @property
    def matrix(self) -> np.ndarray:
        """Dense ndarray view of the routing matrix (cached; do not mutate).

        Prefer the operator-style products below; this view exists for the
        few algorithms (active-set NNLS, LP constraint assembly, column
        slicing) that genuinely need a dense array.
        """
        return self._backend.toarray()

    @property
    def native(self) -> Union[np.ndarray, scipy.sparse.csr_matrix]:
        """The matrix in its native storage: CSR when sparse, ndarray when dense.

        For consumers (LP assembly, iterative scaling) that can work with
        either representation directly — unlike :attr:`matrix`, this never
        materialises a dense copy on a sparse backend.
        """
        if self._backend.kind == "sparse":
            return self._backend.raw
        return self._backend.toarray()

    def select_pairs(self, indices: np.ndarray) -> RoutingBackend:
        """Backend restricted to the given pair columns (same storage kind).

        The sparse-safe replacement for ``matrix[:, indices]``: estimators
        that reduce the problem to a demand subset keep CSR storage on
        sparse backends.
        """
        return self._backend.column_select(indices)

    def with_backend(self, backend: str) -> "RoutingMatrix":
        """Return a copy of this routing matrix using the given backend."""
        return RoutingMatrix(
            self._backend.toarray(),
            self.link_names,
            self.pairs,
            network=self.network,
            backend=backend,
        )

    @property
    def density(self) -> float:
        """Fraction of non-zero entries."""
        return self._backend.density

    # ------------------------------------------------------------------
    # shape and labelling
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Number of rows (directed links)."""
        return self._backend.shape[0]

    @property
    def num_pairs(self) -> int:
        """Number of columns (origin-destination pairs)."""
        return self._backend.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_links, num_pairs)``."""
        return self._backend.shape

    def pair_index(self, pair: NodePair) -> int:
        """Column index of ``pair``."""
        try:
            return self._pair_index[pair]
        except KeyError as exc:
            raise RoutingError(f"pair {pair} not present in routing matrix") from exc

    def link_row(self, link_name: str) -> np.ndarray:
        """Row of the matrix for ``link_name``."""
        try:
            return self._backend.row(self._link_index[link_name])
        except KeyError as exc:
            raise RoutingError(f"link {link_name!r} not present in routing matrix") from exc

    def pair_column(self, pair: NodePair) -> np.ndarray:
        """Column of the matrix for ``pair`` (the links it traverses)."""
        return self._backend.column(self.pair_index(pair))

    # ------------------------------------------------------------------
    # operator-style products
    # ------------------------------------------------------------------
    def link_loads(self, demands: np.ndarray) -> np.ndarray:
        """Compute ``t = R s`` for a demand vector ``s``.

        This is how the paper constructs its consistent evaluation data set
        (Section 5.1.4): link loads are computed from the measured demands
        and the simulated routing, not measured separately.
        """
        demands = np.asarray(demands, dtype=float)
        if demands.shape != (self.num_pairs,):
            raise RoutingError(
                f"demand vector has shape {demands.shape}, expected ({self.num_pairs},)"
            )
        return self._backend.matvec(demands)

    def matvec(self, demands: np.ndarray) -> np.ndarray:
        """``R @ demands`` (alias of :meth:`link_loads`)."""
        return self.link_loads(demands)

    def rmatvec(self, loads: np.ndarray) -> np.ndarray:
        """``R.T @ loads`` for a link-load vector."""
        loads = np.asarray(loads, dtype=float)
        if loads.shape != (self.num_links,):
            raise RoutingError(
                f"load vector has shape {loads.shape}, expected ({self.num_links},)"
            )
        return self._backend.rmatvec(loads)

    def matmat(self, demands: np.ndarray) -> np.ndarray:
        """``R @ demands`` for a dense ``(num_pairs, k)`` matrix of demand columns."""
        demands = np.asarray(demands, dtype=float)
        if demands.ndim != 2 or demands.shape[0] != self.num_pairs:
            raise RoutingError(
                f"demand matrix has shape {demands.shape}, expected ({self.num_pairs}, k)"
            )
        return self._backend.matmat(demands)

    def rmatmat(self, loads: np.ndarray) -> np.ndarray:
        """``R.T @ loads`` for a dense ``(num_links, k)`` matrix of load columns."""
        loads = np.asarray(loads, dtype=float)
        if loads.ndim != 2 or loads.shape[0] != self.num_links:
            raise RoutingError(
                f"load matrix has shape {loads.shape}, expected ({self.num_links}, k)"
            )
        return self._backend.rmatmat(loads)

    def gram(self) -> np.ndarray:
        """The Gram matrix ``R.T @ R`` (dense, cached by the backend)."""
        return self._backend.gram()

    # ------------------------------------------------------------------
    # cached derived quantities
    # ------------------------------------------------------------------
    def rank(self) -> int:
        """Numerical rank of the routing matrix (computed once, then cached).

        The estimation problem is under-determined whenever the rank is
        smaller than the number of pairs, which is the normal situation in
        backbones (many more pairs than links).
        """
        if self._rank is None:
            self._rank = int(np.linalg.matrix_rank(self._backend.toarray()))
        return self._rank

    def nullity(self) -> int:
        """Dimension of the null space, i.e. the degrees of freedom left free."""
        return self.num_pairs - self.rank()

    def is_underdetermined(self) -> bool:
        """Whether ``R s = t`` has infinitely many non-negative candidates."""
        return self.rank() < self.num_pairs

    def gram_spectral_radius(self) -> float:
        """``lambda_max(R'R)`` by operator power iteration (computed once).

        Uses only ``matvec``/``rmatvec`` products — no Gram matrix is
        formed — with a deterministic start (the path-length direction,
        which has a non-zero component on the dominant eigenvector of the
        non-negative ``R'R``) and a 1 % safety inflation so step sizes
        derived as ``1/L`` stay valid if the iteration stops marginally
        low.  Cached on the routing matrix, which is shared across every
        snapshot sub-problem of a series, unlike per-problem caches.
        """
        if self._spectral_radius is None:
            vector = self.path_lengths().astype(float).copy()
            norm = float(np.linalg.norm(vector))
            if norm == 0.0:
                self._spectral_radius = 0.0
                return self._spectral_radius
            vector /= norm
            eigenvalue = 0.0
            for _ in range(200):
                product = self.rmatvec(self.matvec(vector))
                next_eigenvalue = float(np.linalg.norm(product))
                if next_eigenvalue == 0.0:
                    self._spectral_radius = 0.0
                    return self._spectral_radius
                vector = product / next_eigenvalue
                if abs(next_eigenvalue - eigenvalue) <= 1e-6 * max(next_eigenvalue, 1e-30):
                    eigenvalue = next_eigenvalue
                    break
                eigenvalue = next_eigenvalue
            self._spectral_radius = 1.01 * eigenvalue
        return self._spectral_radius

    def path_lengths(self) -> np.ndarray:
        """Per-pair path lengths (column sums; cached, read-only)."""
        if self._path_lengths is None:
            lengths = self._backend.column_sums()
            lengths.setflags(write=False)
            self._path_lengths = lengths
        return self._path_lengths

    def path_length(self, pair: NodePair) -> float:
        """Number of links (possibly fractional for ECMP) used by ``pair``."""
        return float(self.path_lengths()[self.pair_index(pair)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingMatrix(links={self.num_links}, pairs={self.num_pairs}, "
            f"rank={self.rank()}, backend={self.backend_kind!r})"
        )


def build_routing_matrix(
    network: Network,
    paths: Optional[Mapping[NodePair, Path]] = None,
    use_cspf: bool = False,
    bandwidths: Optional[Mapping[NodePair, float]] = None,
    backend: str = "auto",
) -> RoutingMatrix:
    """Build the 0/1 single-path routing matrix for ``network``.

    Parameters
    ----------
    network:
        The topology.  Its canonical link and pair orderings become the row
        and column orderings of the matrix.
    paths:
        Pre-computed paths per pair.  When omitted, paths are computed with
        plain shortest-path routing or, if ``use_cspf`` is set, with the
        CSPF simulator and the given ``bandwidths``.
    use_cspf:
        Route with :class:`~repro.routing.cspf.CSPFRouter` instead of plain
        Dijkstra.
    bandwidths:
        LSP bandwidth values used by CSPF (ignored otherwise).
    backend:
        Storage backend passed to :class:`RoutingMatrix` (``"auto"``,
        ``"dense"`` or ``"sparse"``).
    """
    pairs = network.node_pairs()
    with telemetry.span(
        "routing.build_matrix", links=network.num_links, pairs=len(pairs)
    ):
        return _assemble_routing_matrix(network, pairs, paths, use_cspf, bandwidths, backend)


def _assemble_routing_matrix(
    network: Network,
    pairs: tuple[NodePair, ...],
    paths: Optional[Mapping[NodePair, Path]],
    use_cspf: bool,
    bandwidths: Optional[Mapping[NodePair, float]],
    backend: str,
) -> RoutingMatrix:
    if paths is None:
        if use_cspf:
            router = CSPFRouter(network)
            paths = router.route_all(bandwidths=dict(bandwidths or {}))
        else:
            paths = ShortestPathRouter(network).route_all(pairs)
    missing = [pair for pair in pairs if pair not in paths]
    if missing:
        raise RoutingError(f"missing paths for pairs: {[str(p) for p in missing[:5]]}")

    # Assemble in coordinate form in one vectorized pass: row indices come
    # from a single generator sweep over the paths (plain dict lookups, no
    # per-traversal method calls), column indices from one np.repeat over
    # the per-pair path lengths.
    link_index = {name: idx for idx, name in enumerate(network.link_names)}
    lengths = np.fromiter(
        (len(paths[pair].links) for pair in pairs), dtype=np.intp, count=len(pairs)
    )
    rows = np.fromiter(
        (link_index[link.name] for pair in pairs for link in paths[pair].links),
        dtype=np.intp,
        count=int(lengths.sum()),
    )
    cols = np.repeat(np.arange(len(pairs)), lengths)
    coo = scipy.sparse.coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(network.num_links, len(pairs))
    )
    return RoutingMatrix(coo, network.link_names, pairs, network=network, backend=backend)


def build_ecmp_routing_matrix(network: Network, backend: str = "auto") -> RoutingMatrix:
    """Build a fractional routing matrix with even ECMP splitting.

    Every equal-cost shortest path of a pair carries ``1/k`` of the demand,
    where ``k`` is the number of such paths.  The paper notes that the
    formulation extends to this case by allowing fractional entries in
    ``R``; this builder exists to exercise that extension.
    """
    pairs = network.node_pairs()
    router = ShortestPathRouter(network)
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for col, pair in enumerate(pairs):
        ecmp_paths = router.all_shortest_paths(pair)
        share = 1.0 / len(ecmp_paths)
        for path in ecmp_paths:
            for link in path.links:
                rows.append(network.link_index(link.name))
                cols.append(col)
                data.append(share)
    coo = scipy.sparse.coo_matrix(
        (data, (rows, cols)), shape=(network.num_links, len(pairs))
    )
    # Duplicate (row, col) entries from shared links are summed by COO->CSR.
    return RoutingMatrix(coo, network.link_names, pairs, network=network, backend=backend)
