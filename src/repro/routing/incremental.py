"""Incremental re-routing of an LSP mesh after element failures.

Failure what-if analysis asks the same question for hundreds of cases: "if
these links or nodes go down, where does every demand flow?".  Re-signalling
the full mesh from scratch for each case repeats work — most demands never
touched the failed element and keep their path (removing links or nodes can
only *remove* candidate paths, so a surviving shortest path stays shortest,
and the deterministic lexicographic tie-breaking keeps the same winner).

:class:`IncrementalRerouter` exploits that: it routes the mesh once over the
base topology, builds inverted indexes from links and nodes to the pairs
whose paths traverse them, and for each failure case re-runs Dijkstra only
for the affected pairs — over the *base* network with the failed elements
excluded, so no per-case topology object is ever constructed.  The
post-failure routing matrix is likewise rebuilt incrementally: the base
coordinate arrays are kept and only the affected columns are replaced.

With per-LSP ``bandwidths`` the rerouter mimics RSVP-TE repair: the
reservations of the torn-down LSPs are released and the affected LSPs are
re-signalled in descending bandwidth order against the surviving
reservation state (falling back to the unconstrained shortest path exactly
like non-strict :class:`~repro.routing.cspf.CSPFRouter`).  In the default
zero-bandwidth (pure IGP) mode the incremental result is *identical* to a
from-scratch re-signal of the surviving topology; with non-zero bandwidths
the signalling order of the unaffected LSPs differs from a global
re-optimisation, as it would on a real network where established tunnels
stay put.

Demands whose endpoints fail, or that a partition leaves with no surviving
path, are reported as *infeasible* (``None`` paths / all-zero routing
columns) rather than raising, so planning layers can produce structured
"this failure disconnects the network" records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

import numpy as np
import scipy.sparse

from repro.errors import RoutingError
from repro.routing.cspf import CSPFRouter
from repro.routing.lsp import LSPMesh
from repro.routing.routing_matrix import RoutingMatrix
from repro.routing.shortest_path import Path, ShortestPathRouter, constrained_dijkstra
from repro.topology.elements import Link, NodePair
from repro.topology.network import Network

__all__ = ["RerouteResult", "IncrementalRerouter"]


@dataclass(frozen=True)
class RerouteResult:
    """Outcome of re-routing the mesh around a set of failed elements.

    Attributes
    ----------
    failed_links, failed_nodes:
        The failed elements (links incident to failed nodes are implied).
    paths:
        Post-failure path for *every* pair in canonical order; ``None``
        marks a pair the failure disconnects.
    rerouted:
        Pairs whose base path traversed a failed element (in canonical
        order); all other pairs kept their base path.
    infeasible:
        The subset of ``rerouted`` left without any surviving path.
    """

    failed_links: tuple[str, ...]
    failed_nodes: tuple[str, ...]
    paths: dict[NodePair, Optional[Path]]
    rerouted: tuple[NodePair, ...]
    infeasible: tuple[NodePair, ...]

    @property
    def is_feasible(self) -> bool:
        """Whether every demand still has a path."""
        return not self.infeasible


class IncrementalRerouter:
    """Re-route only the demands a failure actually touches.

    Parameters
    ----------
    network:
        The base topology.
    bandwidths:
        Optional per-pair LSP bandwidth values.  When given, the base mesh
        is signalled with CSPF (largest LSPs first) and failure repair
        honours the surviving reservations; when omitted (default) routing
        is pure IGP shortest path and incremental re-routing is provably
        identical to a from-scratch rebuild.
    paths:
        Pre-computed base paths (e.g. from an existing routing matrix
        build).  Must cover every canonical pair; overrides the internal
        base routing.
    """

    def __init__(
        self,
        network: Network,
        bandwidths: Optional[Mapping[NodePair, float]] = None,
        paths: Optional[Mapping[NodePair, Path]] = None,
    ) -> None:
        self.network = network
        self.pairs = network.node_pairs()
        self.bandwidths = {pair: float(value) for pair, value in (bandwidths or {}).items()}
        unknown = set(self.bandwidths) - set(self.pairs)
        if unknown:
            raise RoutingError(
                f"bandwidths reference unknown pairs: {sorted(map(str, unknown))}"
            )
        if paths is not None:
            missing = [pair for pair in self.pairs if pair not in paths]
            if missing:
                raise RoutingError(
                    f"base paths missing pairs: {[str(p) for p in missing[:5]]}"
                )
            self.base_paths: dict[NodePair, Path] = {pair: paths[pair] for pair in self.pairs}
        elif self.bandwidths:
            router = CSPFRouter(network)
            mesh = LSPMesh(network, bandwidths=self.bandwidths)
            self.base_paths = dict(router.signal_mesh(mesh, order="bandwidth"))
        else:
            self.base_paths = dict(ShortestPathRouter(network).route_all())
        # Which LSPs actually hold a reservation: non-strict CSPF routes an
        # unplaceable LSP along the unconstrained shortest path *without*
        # reserving bandwidth, so the repair path must not release for it.
        self._base_reserved, self._reservation_holders = self._replay_reservations(
            self.base_paths
        )

        # Inverted indexes: which pairs does each link / node carry?
        self._pair_position = {pair: idx for idx, pair in enumerate(self.pairs)}
        self._pairs_by_link: dict[str, list[NodePair]] = {}
        self._pairs_by_node: dict[str, list[NodePair]] = {}
        for pair in self.pairs:
            path = self.base_paths[pair]
            for link in path.links:
                self._pairs_by_link.setdefault(link.name, []).append(pair)
            for node in path.nodes:
                self._pairs_by_node.setdefault(node, []).append(pair)

        # Base coordinate arrays for incremental routing-matrix rebuilds.
        rows: list[int] = []
        cols: list[int] = []
        for col, pair in enumerate(self.pairs):
            for link in self.base_paths[pair].links:
                rows.append(network.link_index(link.name))
                cols.append(col)
        self._base_rows = np.asarray(rows, dtype=np.int64)
        self._base_cols = np.asarray(cols, dtype=np.int64)
        self._base_matrix: Optional[RoutingMatrix] = None

    # ------------------------------------------------------------------
    # base routing
    # ------------------------------------------------------------------
    @property
    def base_matrix(self) -> RoutingMatrix:
        """Routing matrix of the intact topology (built once, cached)."""
        if self._base_matrix is None:
            coo = scipy.sparse.coo_matrix(
                (np.ones(len(self._base_rows)), (self._base_rows, self._base_cols)),
                shape=(self.network.num_links, len(self.pairs)),
            )
            self._base_matrix = RoutingMatrix(
                coo, self.network.link_names, self.pairs, network=self.network
            )
        return self._base_matrix

    def _replay_reservations(
        self, paths: Mapping[NodePair, Path]
    ) -> tuple[dict[str, float], set[NodePair]]:
        """Reconstruct the RSVP reservation state behind ``paths``.

        Replays admission in the CSPF signalling order (largest bandwidth
        first, pair-name tie-break): an LSP whose path has enough free
        capacity at its turn reserves it; one that does not was a
        non-strict fallback and holds nothing.  For paths produced by
        :meth:`CSPFRouter.signal_mesh` this reproduces the router's exact
        reserved table and holder set.
        """
        reserved = {name: 0.0 for name in self.network.link_names}
        holders: set[NodePair] = set()
        capacity = {name: self.network.link(name).capacity_mbps for name in reserved}
        order = sorted(
            (pair for pair in self.pairs if self.bandwidths.get(pair, 0.0) > 0.0),
            key=lambda pair: (-self.bandwidths[pair], str(pair)),
        )
        for pair in order:
            bandwidth = self.bandwidths[pair]
            links = paths[pair].link_names()
            if all(capacity[name] - reserved[name] >= bandwidth - 1e-9 for name in links):
                for name in links:
                    reserved[name] += bandwidth
                holders.add(pair)
        return reserved, holders

    # ------------------------------------------------------------------
    # failure analysis
    # ------------------------------------------------------------------
    def _expand_failed(
        self, failed_links: Iterable[str], failed_nodes: Iterable[str]
    ) -> tuple[set[str], set[str]]:
        links = set(failed_links)
        nodes = set(failed_nodes)
        for name in links:
            self.network.link(name)
        for name in nodes:
            self.network.node(name)
            for link in self.network.outgoing_links(name):
                links.add(link.name)
            for link in self.network.incoming_links(name):
                links.add(link.name)
        return links, nodes

    def affected_pairs(
        self, failed_links: Iterable[str] = (), failed_nodes: Iterable[str] = ()
    ) -> tuple[NodePair, ...]:
        """Pairs whose base path traverses any failed element, canonical order."""
        links, nodes = self._expand_failed(failed_links, failed_nodes)
        return self._affected_from(links, nodes)

    def _affected_from(
        self, banned_links: set[str], banned_nodes: set[str]
    ) -> tuple[NodePair, ...]:
        touched: set[NodePair] = set()
        for name in banned_links:
            touched.update(self._pairs_by_link.get(name, ()))
        for name in banned_nodes:
            touched.update(self._pairs_by_node.get(name, ()))
        return tuple(sorted(touched, key=self._pair_position.__getitem__))

    def _shortest_path_excluding(
        self,
        pair: NodePair,
        banned_links: set[str],
        banned_nodes: set[str],
        available: Optional[dict[str, float]] = None,
        bandwidth: float = 0.0,
    ) -> Optional[Path]:
        """Dijkstra over the surviving elements, same tie-breaking as the base.

        This runs the shared
        :func:`~repro.routing.shortest_path.constrained_dijkstra` with the
        failed links/nodes filtered out, so a surviving pair gets exactly
        the path a from-scratch rebuild of the surviving topology would
        give it.  With ``available`` it also skips links with less
        unreserved bandwidth than ``bandwidth`` (the CSPF admission test);
        returns ``None`` when the destination is unreachable.
        """

        def usable(link: Link) -> bool:
            if link.name in banned_links or link.target in banned_nodes:
                return False
            if available is not None and bandwidth > 0.0:
                return available[link.name] >= bandwidth - 1e-9
            return True

        return constrained_dijkstra(
            self.network, pair, lambda link: link.metric, usable=usable
        )

    def reroute(
        self, failed_links: Iterable[str] = (), failed_nodes: Iterable[str] = ()
    ) -> RerouteResult:
        """Re-route the mesh around the failed elements.

        Only the affected pairs are re-routed; everything else keeps its
        base path.  Pairs whose origin or destination failed, and pairs the
        failure partitions away from their destination, come back with a
        ``None`` path in :attr:`RerouteResult.paths`.
        """
        failed_links = tuple(failed_links)
        failed_nodes = tuple(failed_nodes)
        banned_links, banned_nodes = self._expand_failed(failed_links, failed_nodes)
        affected = self._affected_from(banned_links, banned_nodes)
        paths: dict[NodePair, Optional[Path]] = dict(self.base_paths)
        infeasible: list[NodePair] = []

        available: Optional[dict[str, float]] = None
        order = affected
        if self.bandwidths:
            # RSVP-TE repair: release the torn-down reservations — only for
            # LSPs that actually hold one; non-strict fallbacks reserved
            # nothing — then re-signal the affected LSPs largest-first
            # against what is left.
            reserved = dict(self._base_reserved)
            for pair in affected:
                bandwidth = self.bandwidths.get(pair, 0.0)
                if bandwidth and pair in self._reservation_holders:
                    for link in self.base_paths[pair].links:
                        reserved[link.name] -= bandwidth
            available = {
                name: self.network.link(name).capacity_mbps - reserved[name]
                for name in self.network.link_names
            }
            order = tuple(
                sorted(
                    affected,
                    key=lambda pair: (-self.bandwidths.get(pair, 0.0), str(pair)),
                )
            )

        for pair in order:
            if pair.origin in banned_nodes or pair.destination in banned_nodes:
                paths[pair] = None
                infeasible.append(pair)
                continue
            bandwidth = self.bandwidths.get(pair, 0.0)
            path = self._shortest_path_excluding(
                pair, banned_links, banned_nodes, available=available, bandwidth=bandwidth
            )
            if path is None and bandwidth > 0.0:
                # Non-strict CSPF: fall back to the unconstrained surviving
                # shortest path without reserving bandwidth.
                path = self._shortest_path_excluding(pair, banned_links, banned_nodes)
                bandwidth = 0.0
            if path is None:
                paths[pair] = None
                infeasible.append(pair)
                continue
            if available is not None and bandwidth > 0.0:
                for link in path.links:
                    available[link.name] -= bandwidth
            paths[pair] = path

        infeasible.sort(key=self._pair_position.__getitem__)
        return RerouteResult(
            failed_links=tuple(sorted(set(failed_links))),
            failed_nodes=tuple(sorted(set(failed_nodes))),
            paths=paths,
            rerouted=affected,
            infeasible=tuple(infeasible),
        )

    def reroute_matrix(
        self,
        failed_links: Iterable[str] = (),
        failed_nodes: Iterable[str] = (),
        backend: str = "auto",
    ) -> tuple[RoutingMatrix, RerouteResult]:
        """Post-failure routing matrix, rebuilt incrementally.

        The base coordinate arrays are reused: entries of unaffected
        columns are kept as-is and only the affected columns are replaced
        with the re-routed paths (infeasible pairs become all-zero
        columns).  Row and column orderings stay the *base* network's, so
        post-failure matrices of different cases stay directly comparable.
        """
        result = self.reroute(failed_links, failed_nodes)
        if not result.rerouted:
            matrix = (
                self.base_matrix if backend == "auto" else self.base_matrix.with_backend(backend)
            )
            return matrix, result

        affected_cols = np.asarray(
            [self._pair_position[pair] for pair in result.rerouted], dtype=np.int64
        )
        keep = ~np.isin(self._base_cols, affected_cols)
        new_rows: list[int] = []
        new_cols: list[int] = []
        for pair in result.rerouted:
            path = result.paths[pair]
            if path is None:
                continue
            col = self._pair_position[pair]
            for link in path.links:
                new_rows.append(self.network.link_index(link.name))
                new_cols.append(col)
        rows = np.concatenate([self._base_rows[keep], np.asarray(new_rows, dtype=np.int64)])
        cols = np.concatenate([self._base_cols[keep], np.asarray(new_cols, dtype=np.int64)])
        coo = scipy.sparse.coo_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(self.network.num_links, len(self.pairs)),
        )
        matrix = RoutingMatrix(
            coo, self.network.link_names, self.pairs, network=self.network, backend=backend
        )
        return matrix, result
