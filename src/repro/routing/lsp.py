"""MPLS label-switched paths (LSPs) and RSVP-style bandwidth reservation.

Global Crossing's backbone runs a full mesh of LSPs between core routers;
each LSP carries a bandwidth value, the head-end router computes a
constrained shortest path (CSPF) honouring that bandwidth, and RSVP reserves
the bandwidth along the path.  Measuring per-LSP byte counters is what gives
the paper its complete traffic matrix.

This module models that machinery:

* :class:`LSP` — a tunnel between a head-end and tail-end with a reserved
  bandwidth and (once signalled) an explicit path;
* :class:`ReservationState` — per-link bookkeeping of reserved bandwidth,
  mimicking the RSVP-TE state a router would hold;
* :class:`LSPMesh` — a full mesh of LSPs between the edge nodes of a
  network, which together with :class:`~repro.routing.cspf.CSPFRouter`
  reproduces the network architecture described in Section 5.1.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.errors import RoutingError
from repro.routing.shortest_path import Path
from repro.topology.elements import NodePair
from repro.topology.network import Network

__all__ = ["LSP", "ReservationState", "LSPMesh"]


@dataclass
class LSP:
    """A label-switched path (MPLS tunnel).

    Attributes
    ----------
    pair:
        Head-end / tail-end node pair.
    bandwidth_mbps:
        The bandwidth value associated with the LSP; CSPF only considers
        paths with at least this much unreserved capacity.
    path:
        The signalled path, or ``None`` while the LSP is unsignalled.
    setup_priority:
        RSVP-TE setup priority (0 = most important).  LSPs are signalled in
        priority order by :class:`LSPMesh`.
    """

    pair: NodePair
    bandwidth_mbps: float = 0.0
    path: Optional[Path] = None
    setup_priority: int = 7

    def __post_init__(self) -> None:
        if self.bandwidth_mbps < 0:
            raise RoutingError(f"LSP {self.pair} has negative bandwidth")
        if not 0 <= self.setup_priority <= 7:
            raise RoutingError("setup_priority must be in 0..7")

    @property
    def name(self) -> str:
        """Canonical tunnel name, e.g. ``"lsp:LON->FRA"``."""
        return f"lsp:{self.pair.origin}->{self.pair.destination}"

    @property
    def is_signalled(self) -> bool:
        """Whether a path has been established for the LSP."""
        return self.path is not None

    def signal(self, path: Path) -> None:
        """Attach a signalled path, verifying it matches the LSP endpoints."""
        if path.pair != self.pair:
            raise RoutingError(
                f"path endpoints {path.pair} do not match LSP {self.pair}"
            )
        self.path = path

    def tear_down(self) -> None:
        """Remove the signalled path (e.g. before re-optimisation)."""
        self.path = None


class ReservationState:
    """Per-link reserved-bandwidth bookkeeping (RSVP-TE style).

    Parameters
    ----------
    network:
        Topology whose links are tracked.
    oversubscription:
        Factor applied to link capacities when checking admission; ``1.0``
        (default) means reservations may not exceed the physical capacity,
        larger values emulate operators that oversubscribe reservations.
    """

    def __init__(self, network: Network, oversubscription: float = 1.0) -> None:
        if oversubscription <= 0:
            raise RoutingError("oversubscription factor must be positive")
        self.network = network
        self.oversubscription = oversubscription
        self._reserved: dict[str, float] = {name: 0.0 for name in network.link_names}

    def reserved(self, link_name: str) -> float:
        """Currently reserved bandwidth on ``link_name`` in Mbit/s."""
        if link_name not in self._reserved:
            raise RoutingError(f"unknown link {link_name!r}")
        return self._reserved[link_name]

    def available(self, link_name: str) -> float:
        """Unreserved bandwidth on ``link_name`` in Mbit/s."""
        link = self.network.link(link_name)
        return link.capacity_mbps * self.oversubscription - self._reserved[link_name]

    def can_admit(self, path: Path, bandwidth_mbps: float) -> bool:
        """Whether ``bandwidth_mbps`` fits on every link of ``path``."""
        return all(self.available(link.name) >= bandwidth_mbps - 1e-9 for link in path.links)

    def reserve(self, path: Path, bandwidth_mbps: float) -> None:
        """Reserve bandwidth along ``path``, raising if admission fails."""
        if bandwidth_mbps < 0:
            raise RoutingError("cannot reserve negative bandwidth")
        if not self.can_admit(path, bandwidth_mbps):
            raise RoutingError(
                f"admission failure for {path.pair}: {bandwidth_mbps} Mbit/s "
                "does not fit on the path"
            )
        for link in path.links:
            self._reserved[link.name] += bandwidth_mbps

    def release(self, path: Path, bandwidth_mbps: float) -> None:
        """Release a previous reservation along ``path``."""
        for link in path.links:
            new_value = self._reserved[link.name] - bandwidth_mbps
            if new_value < -1e-6:
                raise RoutingError(
                    f"releasing more bandwidth than reserved on {link.name!r}"
                )
            self._reserved[link.name] = max(0.0, new_value)

    def utilisation(self, link_name: str) -> float:
        """Reserved fraction of the physical capacity of ``link_name``."""
        link = self.network.link(link_name)
        return self._reserved[link_name] / link.capacity_mbps

    def snapshot(self) -> dict[str, float]:
        """Copy of the reserved-bandwidth table (for tests and inspection)."""
        return dict(self._reserved)


class LSPMesh:
    """A full mesh of LSPs between the edge nodes of a network.

    The mesh is the measurement vehicle of the paper: once every LSP is
    signalled, per-LSP byte counters *are* the traffic matrix.

    Parameters
    ----------
    network:
        The backbone.
    bandwidths:
        Optional mapping from node pair to the LSP bandwidth value; pairs
        not present get a zero-bandwidth LSP (CSPF then degenerates to
        shortest path).
    """

    def __init__(
        self,
        network: Network,
        bandwidths: Optional[Mapping[NodePair, float]] = None,
    ) -> None:
        self.network = network
        bandwidths = dict(bandwidths or {})
        unknown = set(bandwidths) - set(network.node_pairs())
        if unknown:
            raise RoutingError(f"bandwidths reference unknown pairs: {sorted(map(str, unknown))}")
        self._lsps: dict[NodePair, LSP] = {}
        for pair in network.node_pairs():
            self._lsps[pair] = LSP(pair=pair, bandwidth_mbps=float(bandwidths.get(pair, 0.0)))

    @property
    def lsps(self) -> tuple[LSP, ...]:
        """All LSPs in canonical pair order."""
        return tuple(self._lsps.values())

    def lsp(self, pair: NodePair) -> LSP:
        """Return the LSP for ``pair``."""
        try:
            return self._lsps[pair]
        except KeyError as exc:
            raise RoutingError(f"no LSP for pair {pair}") from exc

    def __len__(self) -> int:
        return len(self._lsps)

    def __iter__(self) -> Iterator[LSP]:
        return iter(self._lsps.values())

    def signalled_paths(self) -> dict[NodePair, Path]:
        """Paths of all signalled LSPs, in canonical order.

        Raises
        ------
        RoutingError
            If any LSP is still unsignalled; the routing matrix requires a
            path for every pair.
        """
        paths: dict[NodePair, Path] = {}
        for pair, lsp in self._lsps.items():
            if lsp.path is None:
                raise RoutingError(f"LSP for pair {pair} has not been signalled")
            paths[pair] = lsp.path
        return paths

    def set_bandwidths(self, bandwidths: Mapping[NodePair, float]) -> None:
        """Update LSP bandwidth values (e.g. from a measured traffic matrix)."""
        for pair, bandwidth in bandwidths.items():
            self.lsp(pair).bandwidth_mbps = float(bandwidth)

    def tear_down_all(self) -> None:
        """Unsignal every LSP (used before global re-optimisation)."""
        for lsp in self._lsps.values():
            lsp.tear_down()
