"""Shortest-path (IGP) routing over a :class:`~repro.topology.network.Network`.

The paper assumes single-path routing for each demand (its routing matrix is
0/1) but notes that fractional routing matrices cover multi-path cases.  This
module provides both:

* :class:`ShortestPathRouter` — Dijkstra routing on link metrics, producing a
  single path per origin-destination pair with deterministic tie-breaking;
* equal-cost multi-path (ECMP) enumeration via
  :meth:`ShortestPathRouter.all_shortest_paths`, used by the fractional
  routing-matrix builder.

Paths are represented as :class:`Path` objects carrying both the node
sequence and the link sequence, which is what the routing-matrix builder
needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import RoutingError
from repro.topology.elements import Link, NodePair
from repro.topology.network import Network

__all__ = [
    "Path",
    "ShortestPathRouter",
    "constrained_dijkstra",
    "single_source_shortest_paths",
]


@dataclass(frozen=True)
class Path:
    """A routed path through the network.

    Attributes
    ----------
    pair:
        The origin-destination pair this path serves.
    nodes:
        Node names from origin to destination, inclusive.
    links:
        The directed links traversed, in order.
    cost:
        Total metric of the path.
    """

    pair: NodePair
    nodes: tuple[str, ...]
    links: tuple[Link, ...]
    cost: float

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise RoutingError(f"path for {self.pair} must visit at least two nodes")
        if len(self.links) != len(self.nodes) - 1:
            raise RoutingError(
                f"path for {self.pair} has {len(self.links)} links "
                f"but {len(self.nodes)} nodes"
            )
        if self.nodes[0] != self.pair.origin or self.nodes[-1] != self.pair.destination:
            raise RoutingError(f"path endpoints do not match pair {self.pair}")

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.links)

    def link_names(self) -> tuple[str, ...]:
        """Names of the traversed links, in order."""
        return tuple(link.name for link in self.links)

    def uses_link(self, link_name: str) -> bool:
        """Return whether the path traverses the named link."""
        return any(link.name == link_name for link in self.links)

    def bottleneck_capacity(self) -> float:
        """Smallest capacity along the path in Mbit/s."""
        return min(link.capacity_mbps for link in self.links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)


def _dijkstra_sweep(
    network: Network,
    origin: str,
    link_cost: Callable[[Link], float],
    usable: Optional[Callable[[Link], bool]],
    target: Optional[str],
) -> tuple[dict[str, float], dict[str, tuple[tuple[str, ...], tuple[Link, ...]]]]:
    """The one Dijkstra relaxation of the routing substrate.

    Deterministic tie-breaking — the lexicographically smallest node
    sequence among equal-cost paths, with heap order matching — lives only
    here, so it cannot drift between the per-pair and the single-source
    entry points.  ``target`` enables the classic early exit; it cannot
    change any recorded route because link costs are strictly positive
    (``Link`` validates this), so once a node is popped no later
    relaxation can reach it at an equal-or-better cost.
    """
    best_cost: dict[str, float] = {origin: 0.0}
    best_route: dict[str, tuple[tuple[str, ...], tuple[Link, ...]]] = {origin: ((origin,), ())}
    heap: list[tuple[float, tuple[str, ...], str]] = [(0.0, (origin,), origin)]
    visited: set[str] = set()
    while heap:
        cost, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for link in network.outgoing_links(node):
            if usable is not None and not usable(link):
                continue
            next_cost = cost + link_cost(link)
            nodes, links = best_route[node]
            candidate = (nodes + (link.target,), links + (link,))
            current = best_cost.get(link.target)
            if (
                current is None
                or next_cost < current - 1e-12
                or (
                    abs(next_cost - current) <= 1e-12
                    and candidate[0] < best_route[link.target][0]
                )
            ):
                best_cost[link.target] = next_cost
                best_route[link.target] = candidate
                heapq.heappush(heap, (next_cost, candidate[0], link.target))
    return best_cost, best_route


def constrained_dijkstra(
    network: Network,
    pair: NodePair,
    link_cost: Callable[[Link], float],
    usable: Optional[Callable[[Link], bool]] = None,
) -> Optional[Path]:
    """Deterministic Dijkstra with an optional link filter.

    This is the *single* shortest-path implementation of the routing
    substrate: :class:`ShortestPathRouter` (IGP),
    :class:`~repro.routing.cspf.CSPFRouter` (bandwidth admission via
    ``usable``) and :class:`~repro.routing.incremental.IncrementalRerouter`
    (failure exclusion via ``usable``) all call it, and
    :func:`single_source_shortest_paths` runs the same sweep without the
    early exit.  Sharing one implementation (:func:`_dijkstra_sweep`) is
    what makes incremental reroute provably identical to a from-scratch
    rebuild and batched routing identical to the per-pair loop:
    tie-breaking — the lexicographically smallest node sequence among
    equal-cost paths — cannot drift between callers.

    Returns ``None`` when the destination is unreachable over the usable
    links (callers decide whether that is an error, a fallback, or an
    infeasible planning record).
    """
    best_cost, best_route = _dijkstra_sweep(
        network, pair.origin, link_cost, usable, pair.destination
    )
    if pair.destination not in best_route:
        return None
    nodes, links = best_route[pair.destination]
    if len(nodes) < 2:
        return None
    return Path(pair=pair, nodes=nodes, links=links, cost=best_cost[pair.destination])


def single_source_shortest_paths(
    network: Network,
    origin: str,
    link_cost: Callable[[Link], float],
    usable: Optional[Callable[[Link], bool]] = None,
) -> dict[str, tuple[tuple[str, ...], tuple[Link, ...], float]]:
    """One Dijkstra serving every destination reachable from ``origin``.

    Returns ``{destination: (nodes, links, cost)}`` for every node other
    than ``origin`` that the usable links reach.  This runs the shared
    :func:`_dijkstra_sweep` with no early-exit target, so the route
    recorded for each destination is exactly what
    :func:`constrained_dijkstra` would return for it.

    This is the all-pairs fast path: routing ``N`` origins costs ``N`` full
    Dijkstras instead of the ``N * (N - 1)`` truncated ones of a per-pair
    loop, which is what makes 200+-node backbones routable in well under a
    second.
    """
    best_cost, best_route = _dijkstra_sweep(network, origin, link_cost, usable, None)
    return {
        node: (nodes, links, best_cost[node])
        for node, (nodes, links) in best_route.items()
        if node != origin
    }


class ShortestPathRouter:
    """Dijkstra single-path and ECMP routing on link metrics.

    Parameters
    ----------
    network:
        The topology to route over.
    metric_attribute:
        Which link attribute to minimise; ``"metric"`` (default) gives IGP
        routing, ``"hops"`` gives minimum-hop routing.

    Notes
    -----
    Tie-breaking is deterministic: when two paths have equal cost the one
    whose node sequence is lexicographically smaller wins.  Deterministic
    routing matters because the routing matrix must be reproducible for the
    estimation benchmarks.
    """

    def __init__(self, network: Network, metric_attribute: str = "metric") -> None:
        if metric_attribute not in ("metric", "hops"):
            raise RoutingError(
                f"unsupported metric attribute {metric_attribute!r}; "
                "expected 'metric' or 'hops'"
            )
        self.network = network
        self.metric_attribute = metric_attribute

    # ------------------------------------------------------------------
    def _link_cost(self, link: Link) -> float:
        return 1.0 if self.metric_attribute == "hops" else link.metric

    def shortest_path(self, pair: NodePair) -> Path:
        """Return the single shortest path for ``pair``.

        Raises
        ------
        RoutingError
            If the destination is unreachable from the origin.
        """
        self.network.node(pair.origin)
        self.network.node(pair.destination)
        path = constrained_dijkstra(self.network, pair, self._link_cost)
        if path is None:
            raise RoutingError(
                f"no path from {pair.origin!r} to {pair.destination!r} "
                f"in network {self.network.name!r}"
            )
        return path

    def all_shortest_paths(self, pair: NodePair, tolerance: float = 1e-9) -> tuple[Path, ...]:
        """Return every equal-cost shortest path for ``pair`` (ECMP set).

        Parameters
        ----------
        pair:
            Origin-destination pair.
        tolerance:
            Paths whose cost is within ``tolerance`` of the optimum are
            considered equal cost.
        """
        optimum = self.shortest_path(pair).cost
        paths: list[Path] = []

        def extend(node: str, nodes: tuple[str, ...], links: tuple[Link, ...], cost: float) -> None:
            if cost > optimum + tolerance:
                return
            if node == pair.destination:
                paths.append(Path(pair=pair, nodes=nodes, links=links, cost=cost))
                return
            for link in self.network.outgoing_links(node):
                if link.target in nodes:
                    continue
                extend(
                    link.target,
                    nodes + (link.target,),
                    links + (link,),
                    cost + self._link_cost(link),
                )

        extend(pair.origin, (pair.origin,), (), 0.0)
        if not paths:
            raise RoutingError(f"no path found for pair {pair}")
        paths.sort(key=lambda p: p.nodes)
        return tuple(paths)

    def route_all(self, pairs: Optional[Sequence[NodePair]] = None) -> dict[NodePair, Path]:
        """Route every pair (default: all pairs of the network).

        Pairs are grouped by origin and served by one single-source
        Dijkstra each (:func:`single_source_shortest_paths`), so an
        ``N``-node all-pairs mesh costs ``N`` shortest-path trees instead
        of ``N * (N - 1)`` per-pair runs.  The paths — node sequences, link
        sequences and costs — are identical to calling
        :meth:`shortest_path` per pair (same relaxation, same
        tie-breaking), which the parity tests pin on every named scenario.

        Returns a mapping ordered like the canonical pair enumeration so
        that downstream consumers can build positional structures from it.
        """
        if pairs is None:
            pairs = self.network.node_pairs()
        by_origin: dict[str, list[NodePair]] = {}
        for pair in pairs:
            self.network.node(pair.origin)
            self.network.node(pair.destination)
            by_origin.setdefault(pair.origin, []).append(pair)
        # Origins serving a single requested destination keep the early
        # exit of the per-pair search; the full tree only pays off when
        # one origin amortises it over several destinations.
        trees = {
            origin: single_source_shortest_paths(self.network, origin, self._link_cost)
            for origin, origin_pairs in by_origin.items()
            if len(origin_pairs) > 1
        }
        routed: dict[NodePair, Path] = {}
        for pair in pairs:
            tree = trees.get(pair.origin)
            if tree is None:
                routed[pair] = self.shortest_path(pair)
                continue
            route = tree.get(pair.destination)
            if route is None:
                raise RoutingError(
                    f"no path from {pair.origin!r} to {pair.destination!r} "
                    f"in network {self.network.name!r}"
                )
            nodes, links, cost = route
            routed[pair] = Path(pair=pair, nodes=nodes, links=links, cost=cost)
        return routed

    def route_all_pairwise(
        self, pairs: Optional[Sequence[NodePair]] = None
    ) -> dict[NodePair, Path]:
        """Legacy per-pair routing loop: one truncated Dijkstra per pair.

        Kept as the reference baseline the batched :meth:`route_all` is
        benchmarked and parity-tested against; production code should call
        :meth:`route_all`.
        """
        if pairs is None:
            pairs = self.network.node_pairs()
        return {pair: self.shortest_path(pair) for pair in pairs}
