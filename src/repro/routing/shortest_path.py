"""Shortest-path (IGP) routing over a :class:`~repro.topology.network.Network`.

The paper assumes single-path routing for each demand (its routing matrix is
0/1) but notes that fractional routing matrices cover multi-path cases.  This
module provides both:

* :class:`ShortestPathRouter` — Dijkstra routing on link metrics, producing a
  single path per origin-destination pair with deterministic tie-breaking;
* equal-cost multi-path (ECMP) enumeration via
  :meth:`ShortestPathRouter.all_shortest_paths`, used by the fractional
  routing-matrix builder.

Paths are represented as :class:`Path` objects carrying both the node
sequence and the link sequence, which is what the routing-matrix builder
needs.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro import telemetry
from repro.errors import RoutingError
from repro.topology.elements import Link, NodePair
from repro.topology.network import Network

__all__ = [
    "Path",
    "ShortestPathRouter",
    "constrained_dijkstra",
    "single_source_shortest_paths",
]

#: Below this many nodes the pure-python sweep wins (no csgraph call
#: overhead, no reconstruction pass); ``engine="auto"`` only batches
#: through scipy at or above it.
_CSGRAPH_MIN_NODES = 64

#: Cost tolerance shared with :func:`_dijkstra_sweep`: paths within this
#: of the optimum count as equal cost for tie-breaking purposes.
_TIE_TOLERANCE = 1e-12


@dataclass(frozen=True)
class Path:
    """A routed path through the network.

    Attributes
    ----------
    pair:
        The origin-destination pair this path serves.
    nodes:
        Node names from origin to destination, inclusive.
    links:
        The directed links traversed, in order.
    cost:
        Total metric of the path.
    """

    pair: NodePair
    nodes: tuple[str, ...]
    links: tuple[Link, ...]
    cost: float

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise RoutingError(f"path for {self.pair} must visit at least two nodes")
        if len(self.links) != len(self.nodes) - 1:
            raise RoutingError(
                f"path for {self.pair} has {len(self.links)} links "
                f"but {len(self.nodes)} nodes"
            )
        if self.nodes[0] != self.pair.origin or self.nodes[-1] != self.pair.destination:
            raise RoutingError(f"path endpoints do not match pair {self.pair}")

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.links)

    def link_names(self) -> tuple[str, ...]:
        """Names of the traversed links, in order."""
        return tuple(link.name for link in self.links)

    def uses_link(self, link_name: str) -> bool:
        """Return whether the path traverses the named link."""
        return any(link.name == link_name for link in self.links)

    def bottleneck_capacity(self) -> float:
        """Smallest capacity along the path in Mbit/s."""
        return min(link.capacity_mbps for link in self.links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)


def _dijkstra_sweep(
    network: Network,
    origin: str,
    link_cost: Callable[[Link], float],
    usable: Optional[Callable[[Link], bool]],
    target: Optional[str],
) -> tuple[dict[str, float], dict[str, tuple[tuple[str, ...], tuple[Link, ...]]]]:
    """The one Dijkstra relaxation of the routing substrate.

    Deterministic tie-breaking — the lexicographically smallest node
    sequence among equal-cost paths, with heap order matching — lives only
    here, so it cannot drift between the per-pair and the single-source
    entry points.  ``target`` enables the classic early exit; it cannot
    change any recorded route because link costs are strictly positive
    (``Link`` validates this), so once a node is popped no later
    relaxation can reach it at an equal-or-better cost.
    """
    best_cost: dict[str, float] = {origin: 0.0}
    best_route: dict[str, tuple[tuple[str, ...], tuple[Link, ...]]] = {origin: ((origin,), ())}
    heap: list[tuple[float, tuple[str, ...], str]] = [(0.0, (origin,), origin)]
    visited: set[str] = set()
    while heap:
        cost, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for link in network.outgoing_links(node):
            if usable is not None and not usable(link):
                continue
            next_cost = cost + link_cost(link)
            nodes, links = best_route[node]
            candidate = (nodes + (link.target,), links + (link,))
            current = best_cost.get(link.target)
            if (
                current is None
                or next_cost < current - 1e-12
                or (
                    abs(next_cost - current) <= 1e-12
                    and candidate[0] < best_route[link.target][0]
                )
            ):
                best_cost[link.target] = next_cost
                best_route[link.target] = candidate
                heapq.heappush(heap, (next_cost, candidate[0], link.target))
    return best_cost, best_route


def constrained_dijkstra(
    network: Network,
    pair: NodePair,
    link_cost: Callable[[Link], float],
    usable: Optional[Callable[[Link], bool]] = None,
) -> Optional[Path]:
    """Deterministic Dijkstra with an optional link filter.

    This is the *single* shortest-path implementation of the routing
    substrate: :class:`ShortestPathRouter` (IGP),
    :class:`~repro.routing.cspf.CSPFRouter` (bandwidth admission via
    ``usable``) and :class:`~repro.routing.incremental.IncrementalRerouter`
    (failure exclusion via ``usable``) all call it, and
    :func:`single_source_shortest_paths` runs the same sweep without the
    early exit.  Sharing one implementation (:func:`_dijkstra_sweep`) is
    what makes incremental reroute provably identical to a from-scratch
    rebuild and batched routing identical to the per-pair loop:
    tie-breaking — the lexicographically smallest node sequence among
    equal-cost paths — cannot drift between callers.

    Returns ``None`` when the destination is unreachable over the usable
    links (callers decide whether that is an error, a fallback, or an
    infeasible planning record).
    """
    best_cost, best_route = _dijkstra_sweep(
        network, pair.origin, link_cost, usable, pair.destination
    )
    if pair.destination not in best_route:
        return None
    nodes, links = best_route[pair.destination]
    if len(nodes) < 2:
        return None
    return Path(pair=pair, nodes=nodes, links=links, cost=best_cost[pair.destination])


def single_source_shortest_paths(
    network: Network,
    origin: str,
    link_cost: Callable[[Link], float],
    usable: Optional[Callable[[Link], bool]] = None,
) -> dict[str, tuple[tuple[str, ...], tuple[Link, ...], float]]:
    """One Dijkstra serving every destination reachable from ``origin``.

    Returns ``{destination: (nodes, links, cost)}`` for every node other
    than ``origin`` that the usable links reach.  This runs the shared
    :func:`_dijkstra_sweep` with no early-exit target, so the route
    recorded for each destination is exactly what
    :func:`constrained_dijkstra` would return for it.

    This is the all-pairs fast path: routing ``N`` origins costs ``N`` full
    Dijkstras instead of the ``N * (N - 1)`` truncated ones of a per-pair
    loop, which is what makes 200+-node backbones routable in well under a
    second.
    """
    best_cost, best_route = _dijkstra_sweep(network, origin, link_cost, usable, None)
    return {
        node: (nodes, links, best_cost[node])
        for node, (nodes, links) in best_route.items()
        if node != origin
    }


def _load_csgraph():
    """Import hook for :mod:`scipy.sparse.csgraph` (monkeypatchable).

    Kept as a module-level seam so tests can force the python fallback by
    patching it to raise, and so a scipy build missing the feature degrades
    gracefully instead of crashing ``route_all``.
    """
    from scipy.sparse import csgraph

    if not hasattr(csgraph, "dijkstra"):
        raise ImportError("scipy.sparse.csgraph has no dijkstra")
    return csgraph


def _csgraph_trees(
    network: Network,
    origins: Sequence[str],
    link_cost: Callable[[Link], float],
) -> dict[str, dict[str, tuple[tuple[str, ...], tuple[Link, ...], float]]]:
    """Batched shortest-path trees via one vectorised csgraph Dijkstra.

    Computes all origin rows of the distance matrix in a single
    ``scipy.sparse.csgraph.dijkstra`` call over the network's adjacency
    CSR, then reconstructs, per origin, exactly the routes the python
    sweep would record: among equal-cost paths the lexicographically
    smallest node sequence, and among parallel equal-cost links the first
    in insertion order.  Returns ``{origin: {destination: (nodes, links,
    cost)}}`` in the same shape as :func:`single_source_shortest_paths`.

    Raises :class:`~repro.errors.RoutingError` when reconstruction cannot
    reproduce the distances (e.g. a scipy build whose tie handling
    diverges); callers treat that as "fall back to the python sweep".
    """
    csgraph = _load_csgraph()
    import numpy as np
    from scipy import sparse

    names = network.node_names
    index = {name: position for position, name in enumerate(names)}
    num_nodes = len(names)

    # Incoming-edge lists in link insertion order (drives the
    # parallel-link tie-break) plus the min-cost adjacency used for the
    # distance computation.
    incoming: list[list[tuple[int, Link, float]]] = [[] for _ in range(num_nodes)]
    best_weight: dict[tuple[int, int], float] = {}
    for link in network.links:
        source = index[link.source]
        target = index[link.target]
        weight = link_cost(link)
        if not weight > 0.0:
            raise RoutingError(
                f"link {link.name!r} has non-positive cost {weight!r}; "
                "csgraph routing requires strictly positive costs"
            )
        incoming[target].append((source, link, weight))
        key = (source, target)
        if key not in best_weight or weight < best_weight[key]:
            best_weight[key] = weight
    if best_weight:
        rows, cols = zip(*best_weight.keys())
        data = [best_weight[key] for key in best_weight]
    else:
        rows, cols, data = (), (), ()
    adjacency = sparse.csr_matrix(
        (np.asarray(data, dtype=np.float64), (rows, cols)),
        shape=(num_nodes, num_nodes),
    )

    origin_indices = [index[origin] for origin in origins]
    distances = np.atleast_2d(
        csgraph.dijkstra(adjacency, directed=True, indices=origin_indices)
    )
    return {
        origin: _reconstruct_tree(names, incoming, index[origin], distances[row])
        for row, origin in enumerate(origins)
    }


def _reconstruct_tree(
    names: Sequence[str],
    incoming: Sequence[Sequence[tuple[int, Link, float]]],
    origin_index: int,
    distances,
) -> dict[str, tuple[tuple[str, ...], tuple[Link, ...], float]]:
    """Rebuild the deterministic route tree from one distance row.

    Nodes are processed in increasing distance order, so every optimal
    predecessor (``|d[u] + w - d[v]| <= tol`` with ``w > tol``) already has
    its route when ``v`` is reached; among them the lexicographically
    smallest full candidate sequence (predecessor route plus ``v``) wins,
    matching :func:`_dijkstra_sweep` exactly.  The comparison must append
    ``v`` before comparing — a predecessor route that is a proper prefix
    of another sorts first on its own but not necessarily once ``v`` is
    appended.  Costs are re-accumulated link by link along the chosen
    chain so the floats are bit-identical to the python sweep's running
    sums.
    """
    import numpy as np

    routes: dict[int, tuple[tuple[str, ...], tuple[Link, ...]]] = {
        origin_index: ((names[origin_index],), ())
    }
    costs: dict[int, float] = {origin_index: 0.0}
    for position in np.argsort(distances, kind="stable"):
        node = int(position)
        distance = distances[node]
        if not np.isfinite(distance):
            break
        if node == origin_index:
            continue
        name = names[node]
        chosen_nodes: Optional[tuple[str, ...]] = None
        chosen_links: Optional[tuple[Link, ...]] = None
        chosen_source: Optional[int] = None
        chosen_weight = 0.0
        for source, link, weight in incoming[node]:
            if abs(distances[source] + weight - distance) > _TIE_TOLERANCE:
                continue
            route = routes.get(source)
            if route is None:
                continue
            candidate = route[0] + (name,)
            if chosen_nodes is None or candidate < chosen_nodes:
                chosen_nodes = candidate
                chosen_links = route[1] + (link,)
                chosen_source = source
                chosen_weight = weight
        if chosen_nodes is None or chosen_links is None or chosen_source is None:
            raise RoutingError(
                f"csgraph distance for node {name!r} has no optimal "
                "predecessor; tie tolerance diverged from the python sweep"
            )
        routes[node] = (chosen_nodes, chosen_links)
        costs[node] = costs[chosen_source] + chosen_weight
    return {
        names[node]: (nodes, links, costs[node])
        for node, (nodes, links) in routes.items()
        if node != origin_index
    }


class ShortestPathRouter:
    """Dijkstra single-path and ECMP routing on link metrics.

    Parameters
    ----------
    network:
        The topology to route over.
    metric_attribute:
        Which link attribute to minimise; ``"metric"`` (default) gives IGP
        routing, ``"hops"`` gives minimum-hop routing.
    engine:
        Batched-routing backend for :meth:`route_all`: ``"auto"``
        (default) uses the vectorised :mod:`scipy.sparse.csgraph` path on
        networks of :data:`_CSGRAPH_MIN_NODES` or more nodes, ``"csgraph"``
        forces it, ``"python"`` forces the pure-python sweep.  Whatever the
        engine, the routes are identical — the csgraph path reconstructs
        the same tie-breaking and falls back to the python sweep (with a
        warning) if scipy is missing the feature or its distances cannot
        be reconciled.

    Notes
    -----
    Tie-breaking is deterministic: when two paths have equal cost the one
    whose node sequence is lexicographically smaller wins.  Deterministic
    routing matters because the routing matrix must be reproducible for the
    estimation benchmarks.
    """

    def __init__(
        self,
        network: Network,
        metric_attribute: str = "metric",
        engine: str = "auto",
    ) -> None:
        if metric_attribute not in ("metric", "hops"):
            raise RoutingError(
                f"unsupported metric attribute {metric_attribute!r}; "
                "expected 'metric' or 'hops'"
            )
        if engine not in ("auto", "csgraph", "python"):
            raise RoutingError(
                f"unsupported routing engine {engine!r}; "
                "expected 'auto', 'csgraph' or 'python'"
            )
        self.network = network
        self.metric_attribute = metric_attribute
        self.engine = engine

    # ------------------------------------------------------------------
    def _link_cost(self, link: Link) -> float:
        return 1.0 if self.metric_attribute == "hops" else link.metric

    def _use_csgraph(self) -> bool:
        if self.engine == "python":
            return False
        if self.engine == "csgraph":
            return True
        return self.network.num_nodes >= _CSGRAPH_MIN_NODES

    def shortest_path(self, pair: NodePair) -> Path:
        """Return the single shortest path for ``pair``.

        Raises
        ------
        RoutingError
            If the destination is unreachable from the origin.
        """
        self.network.node(pair.origin)
        self.network.node(pair.destination)
        path = constrained_dijkstra(self.network, pair, self._link_cost)
        if path is None:
            raise RoutingError(
                f"no path from {pair.origin!r} to {pair.destination!r} "
                f"in network {self.network.name!r}"
            )
        return path

    def all_shortest_paths(self, pair: NodePair, tolerance: float = 1e-9) -> tuple[Path, ...]:
        """Return every equal-cost shortest path for ``pair`` (ECMP set).

        Parameters
        ----------
        pair:
            Origin-destination pair.
        tolerance:
            Paths whose cost is within ``tolerance`` of the optimum are
            considered equal cost.
        """
        optimum = self.shortest_path(pair).cost
        paths: list[Path] = []

        def extend(node: str, nodes: tuple[str, ...], links: tuple[Link, ...], cost: float) -> None:
            if cost > optimum + tolerance:
                return
            if node == pair.destination:
                paths.append(Path(pair=pair, nodes=nodes, links=links, cost=cost))
                return
            for link in self.network.outgoing_links(node):
                if link.target in nodes:
                    continue
                extend(
                    link.target,
                    nodes + (link.target,),
                    links + (link,),
                    cost + self._link_cost(link),
                )

        extend(pair.origin, (pair.origin,), (), 0.0)
        if not paths:
            raise RoutingError(f"no path found for pair {pair}")
        paths.sort(key=lambda p: p.nodes)
        return tuple(paths)

    def route_all(self, pairs: Optional[Sequence[NodePair]] = None) -> dict[NodePair, Path]:
        """Route every pair (default: all pairs of the network).

        Pairs are grouped by origin and served by one single-source
        Dijkstra each (:func:`single_source_shortest_paths`), so an
        ``N``-node all-pairs mesh costs ``N`` shortest-path trees instead
        of ``N * (N - 1)`` per-pair runs.  The paths — node sequences, link
        sequences and costs — are identical to calling
        :meth:`shortest_path` per pair (same relaxation, same
        tie-breaking), which the parity tests pin on every named scenario.

        Returns a mapping ordered like the canonical pair enumeration so
        that downstream consumers can build positional structures from it.
        """
        if pairs is None:
            pairs = self.network.node_pairs()
        with telemetry.span("routing.route_all", pairs=len(pairs)):
            return self._route_all_grouped(pairs)

    def _route_all_grouped(self, pairs: Sequence[NodePair]) -> dict[NodePair, Path]:
        by_origin: dict[str, list[NodePair]] = {}
        for pair in pairs:
            self.network.node(pair.origin)
            self.network.node(pair.destination)
            by_origin.setdefault(pair.origin, []).append(pair)
        # Origins serving a single requested destination keep the early
        # exit of the per-pair search; the full tree only pays off when
        # one origin amortises it over several destinations.
        tree_origins = [
            origin for origin, origin_pairs in by_origin.items() if len(origin_pairs) > 1
        ]
        trees: Optional[dict[str, dict[str, tuple[tuple[str, ...], tuple[Link, ...], float]]]]
        trees = None
        if tree_origins and self._use_csgraph():
            try:
                trees = _csgraph_trees(self.network, tree_origins, self._link_cost)
            except (ImportError, AttributeError, RoutingError) as exc:
                warnings.warn(
                    f"csgraph routing unavailable ({exc}); "
                    "falling back to the python Dijkstra sweep",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if trees is None:
            trees = {
                origin: single_source_shortest_paths(self.network, origin, self._link_cost)
                for origin in tree_origins
            }
        routed: dict[NodePair, Path] = {}
        for pair in pairs:
            tree = trees.get(pair.origin)
            if tree is None:
                routed[pair] = self.shortest_path(pair)
                continue
            route = tree.get(pair.destination)
            if route is None:
                raise RoutingError(
                    f"no path from {pair.origin!r} to {pair.destination!r} "
                    f"in network {self.network.name!r}"
                )
            nodes, links, cost = route
            routed[pair] = Path(pair=pair, nodes=nodes, links=links, cost=cost)
        return routed

    def route_all_pairwise(
        self, pairs: Optional[Sequence[NodePair]] = None
    ) -> dict[NodePair, Path]:
        """Legacy per-pair routing loop: one truncated Dijkstra per pair.

        Kept as the reference baseline the batched :meth:`route_all` is
        benchmarked and parity-tested against; production code should call
        :meth:`route_all`.
        """
        if pairs is None:
            pairs = self.network.node_pairs()
        return {pair: self.shortest_path(pair) for pair in pairs}
