"""Routing substrate: IGP shortest path, CSPF/MPLS simulation, routing matrices.

The estimation problem ``R s = t`` needs the routing matrix ``R``; the paper
obtains it by simulating the CSPF routing of the MPLS LSP mesh.  This package
provides:

* :class:`~repro.routing.shortest_path.ShortestPathRouter` — IGP (Dijkstra)
  routing with deterministic tie-breaking and ECMP enumeration;
* :class:`~repro.routing.lsp.LSPMesh` and
  :class:`~repro.routing.lsp.ReservationState` — the MPLS tunnel mesh and
  RSVP-style bandwidth bookkeeping;
* :class:`~repro.routing.cspf.CSPFRouter` — constraint-based routing of the
  mesh;
* :class:`~repro.routing.routing_matrix.RoutingMatrix` and the builders
  :func:`~repro.routing.routing_matrix.build_routing_matrix` /
  :func:`~repro.routing.routing_matrix.build_ecmp_routing_matrix`;
* :class:`~repro.routing.incremental.IncrementalRerouter` — failure-case
  re-routing that re-signals only the affected demands and rebuilds the
  routing matrix incrementally (the planning subsystem's fast path);
* the pluggable storage backends of :mod:`repro.routing.backends`
  (dense ndarray / SciPy CSR, auto-selected by size and density).
"""

from repro.routing.backends import (
    DenseBackend,
    RoutingBackend,
    RoutingOperator,
    SparseBackend,
    make_backend,
)
from repro.routing.cspf import CSPFRouter
from repro.routing.incremental import IncrementalRerouter, RerouteResult
from repro.routing.lsp import LSP, LSPMesh, ReservationState
from repro.routing.routing_matrix import (
    RoutingMatrix,
    build_ecmp_routing_matrix,
    build_routing_matrix,
)
from repro.routing.shortest_path import (
    Path,
    ShortestPathRouter,
    single_source_shortest_paths,
)

__all__ = [
    "Path",
    "ShortestPathRouter",
    "single_source_shortest_paths",
    "LSP",
    "LSPMesh",
    "ReservationState",
    "CSPFRouter",
    "IncrementalRerouter",
    "RerouteResult",
    "RoutingMatrix",
    "build_routing_matrix",
    "build_ecmp_routing_matrix",
    "RoutingBackend",
    "RoutingOperator",
    "DenseBackend",
    "SparseBackend",
    "make_backend",
]
