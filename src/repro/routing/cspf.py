"""Constrained shortest path first (CSPF) routing for MPLS LSPs.

The paper builds its routing matrix by *simulating* the constraint-based
routing protocol used by the routers (Section 5.1.3, using Cariden MATE).
This module provides the equivalent simulator: given an
:class:`~repro.routing.lsp.LSPMesh` with per-LSP bandwidth values, the
:class:`CSPFRouter` signals every LSP along the shortest path that still has
the required unreserved bandwidth, updating RSVP-style reservation state as
it goes.

When a bandwidth-feasible path does not exist, the router either falls back
to the unconstrained shortest path (the default, matching the common
operational practice of letting the LSP come up anyway) or raises, depending
on ``strict`` mode.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import RoutingError
from repro.routing.lsp import LSP, LSPMesh, ReservationState
from repro.routing.shortest_path import Path, ShortestPathRouter, constrained_dijkstra
from repro.topology.elements import Link, NodePair
from repro.topology.network import Network

__all__ = ["CSPFRouter"]


class CSPFRouter:
    """Constraint-based shortest-path routing with bandwidth reservation.

    Parameters
    ----------
    network:
        The backbone to route over.
    oversubscription:
        Reservation oversubscription factor forwarded to
        :class:`~repro.routing.lsp.ReservationState`.
    strict:
        If ``True``, an LSP whose bandwidth cannot be placed raises
        :class:`~repro.errors.RoutingError`.  If ``False`` (default) the LSP
        falls back to the plain shortest path without reserving bandwidth,
        which keeps the routing matrix complete.
    """

    def __init__(
        self,
        network: Network,
        oversubscription: float = 1.0,
        strict: bool = False,
    ) -> None:
        self.network = network
        self.reservations = ReservationState(network, oversubscription=oversubscription)
        self.strict = strict
        self._fallback = ShortestPathRouter(network)

    # ------------------------------------------------------------------
    def constrained_shortest_path(
        self, pair: NodePair, bandwidth_mbps: float
    ) -> Optional[Path]:
        """Dijkstra over links with enough unreserved bandwidth.

        Returns ``None`` when no feasible path exists (the caller decides
        whether to fall back or fail).
        """
        if bandwidth_mbps < 0:
            raise RoutingError("bandwidth must be non-negative")
        self.network.node(pair.origin)
        self.network.node(pair.destination)

        def usable(link: Link) -> bool:
            return self.reservations.available(link.name) >= bandwidth_mbps - 1e-9

        return constrained_dijkstra(
            self.network, pair, lambda link: link.metric, usable=usable
        )

    # ------------------------------------------------------------------
    def signal_lsp(self, lsp: LSP) -> Path:
        """Signal a single LSP, reserving bandwidth along the chosen path.

        Returns the path that was installed.  In non-strict mode an
        infeasible LSP is routed along the unconstrained shortest path and
        no bandwidth is reserved for it.
        """
        path = self.constrained_shortest_path(lsp.pair, lsp.bandwidth_mbps)
        if path is not None:
            self.reservations.reserve(path, lsp.bandwidth_mbps)
            lsp.signal(path)
            return path
        if self.strict:
            raise RoutingError(
                f"CSPF could not place LSP {lsp.pair} with "
                f"{lsp.bandwidth_mbps} Mbit/s"
            )
        fallback = self._fallback.shortest_path(lsp.pair)
        lsp.signal(fallback)
        return fallback

    def signal_mesh(self, mesh: LSPMesh, order: str = "bandwidth") -> dict[NodePair, Path]:
        """Signal every LSP of ``mesh`` and return the resulting paths.

        Parameters
        ----------
        mesh:
            The LSP mesh (must belong to the same network).
        order:
            Signalling order: ``"bandwidth"`` (default) signals the largest
            LSPs first, mimicking offline re-optimisation and matching the
            paper's decision to route aggregated demands along the path of
            the largest original demand; ``"priority"`` uses the RSVP setup
            priority; ``"pair"`` uses the canonical pair order.
        """
        if mesh.network is not self.network:
            raise RoutingError("LSP mesh belongs to a different network")
        lsps = list(mesh.lsps)
        if order == "bandwidth":
            lsps.sort(key=lambda lsp: (-lsp.bandwidth_mbps, str(lsp.pair)))
        elif order == "priority":
            lsps.sort(key=lambda lsp: (lsp.setup_priority, str(lsp.pair)))
        elif order == "pair":
            pass
        else:
            raise RoutingError(f"unknown signalling order {order!r}")
        for lsp in lsps:
            self.signal_lsp(lsp)
        return mesh.signalled_paths()

    def route_all(
        self,
        pairs: Optional[Sequence[NodePair]] = None,
        bandwidths: Optional[dict[NodePair, float]] = None,
    ) -> dict[NodePair, Path]:
        """Convenience wrapper: build a mesh, signal it, return the paths.

        With no ``bandwidths`` every LSP has zero bandwidth and CSPF
        degenerates to plain IGP shortest-path routing, which is the routing
        model the estimation benchmarks use.
        """
        mesh = LSPMesh(self.network, bandwidths=bandwidths)
        if pairs is not None:
            requested = set(pairs)
            paths = self.signal_mesh(mesh)
            return {pair: path for pair, path in paths.items() if pair in requested}
        return self.signal_mesh(mesh)
