"""Mean-variance scaling laws for traffic demands.

Section 5.2.3 of the paper investigates the *generalised scaling law*

    ``Var{s_p} = phi * lambda_p ** c``

relating the variance of a demand to its mean.  For Poisson traffic
``phi = c = 1``; the paper fits ``phi = 0.82, c = 1.6`` to the European
demands and ``phi = 2.44, c = 1.5`` to the American ones, and this strong
relation is what the Vardi / Cao family of estimators tries to exploit.

This module provides:

* :class:`ScalingLaw` — the law itself, able to predict variances and draw
  demand samples consistent with it;
* :func:`fit_scaling_law` — the log-log least-squares fit the paper uses to
  obtain ``(phi, c)`` from per-demand sample means and variances;
* :func:`scaling_law_from_series` — convenience wrapper computing the fit
  directly from a :class:`~repro.traffic.matrix.TrafficMatrixSeries`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrafficError
from repro.traffic.matrix import TrafficMatrixSeries

__all__ = ["ScalingLaw", "fit_scaling_law", "scaling_law_from_series"]


@dataclass(frozen=True)
class ScalingLaw:
    """The generalised mean-variance scaling law ``Var = phi * mean ** c``.

    Parameters
    ----------
    phi:
        Multiplicative scale factor (must be positive).
    c:
        Exponent; ``c = 1`` with ``phi = 1`` recovers the Poisson relation.
    """

    phi: float
    c: float

    def __post_init__(self) -> None:
        if self.phi <= 0:
            raise TrafficError("scaling law parameter phi must be positive")

    def variance(self, mean: float | np.ndarray) -> float | np.ndarray:
        """Predicted variance for the given mean demand(s)."""
        mean = np.asarray(mean, dtype=float)
        if np.any(mean < 0):
            raise TrafficError("mean demands must be non-negative")
        result = self.phi * np.power(mean, self.c)
        return float(result) if result.ndim == 0 else result

    def standard_deviation(self, mean: float | np.ndarray) -> float | np.ndarray:
        """Predicted standard deviation for the given mean demand(s)."""
        variance = self.variance(mean)
        return np.sqrt(variance)

    def sample(
        self,
        means: np.ndarray,
        size: int,
        rng: np.random.Generator,
        truncate_at_zero: bool = True,
    ) -> np.ndarray:
        """Draw ``size`` demand snapshots consistent with the law.

        Each demand ``p`` is drawn i.i.d. from a normal distribution with
        mean ``means[p]`` and variance ``phi * means[p] ** c`` (the model of
        Cao et al.), truncated at zero by default since demands cannot be
        negative.

        Returns an array of shape ``(size, len(means))``.
        """
        means = np.asarray(means, dtype=float)
        if means.ndim != 1:
            raise TrafficError("means must be a one-dimensional array")
        if size <= 0:
            raise TrafficError("sample size must be positive")
        std = np.sqrt(self.variance(means))
        draws = rng.normal(loc=means, scale=std, size=(size, len(means)))
        if truncate_at_zero:
            draws = np.maximum(draws, 0.0)
        return draws

    @classmethod
    def poisson(cls) -> "ScalingLaw":
        """The Poisson special case (``phi = 1, c = 1``)."""
        return cls(phi=1.0, c=1.0)


def fit_scaling_law(
    means: np.ndarray,
    variances: np.ndarray,
    min_mean: float = 0.0,
) -> ScalingLaw:
    """Fit ``(phi, c)`` by least squares in log-log space.

    Parameters
    ----------
    means, variances:
        Per-demand sample means and variances (same length).
    min_mean:
        Demands with mean at or below this value are excluded from the fit;
        zero-mean or zero-variance demands are always excluded because their
        logarithm is undefined.

    Returns
    -------
    ScalingLaw
        The fitted law.

    Raises
    ------
    TrafficError
        If fewer than two usable points remain.
    """
    means = np.asarray(means, dtype=float)
    variances = np.asarray(variances, dtype=float)
    if means.shape != variances.shape or means.ndim != 1:
        raise TrafficError("means and variances must be one-dimensional arrays of equal length")
    mask = (means > max(min_mean, 0.0)) & (variances > 0.0)
    if int(mask.sum()) < 2:
        raise TrafficError("need at least two positive (mean, variance) points to fit the law")
    log_mean = np.log(means[mask])
    log_var = np.log(variances[mask])
    # Ordinary least squares for log(var) = log(phi) + c * log(mean).
    design = np.column_stack([np.ones_like(log_mean), log_mean])
    coeffs, *_ = np.linalg.lstsq(design, log_var, rcond=None)
    return ScalingLaw(phi=float(np.exp(coeffs[0])), c=float(coeffs[1]))


def scaling_law_from_series(
    series: TrafficMatrixSeries, min_mean: float = 0.0
) -> ScalingLaw:
    """Fit the scaling law to the per-demand statistics of a series.

    This is exactly the paper's procedure: per-demand 5-minute means and
    variances over the busy period, fitted across the whole demand range.
    """
    return fit_scaling_law(series.demand_means(), series.demand_variances(), min_mean=min_mean)
