"""Traffic matrix data structures.

A traffic matrix assigns a demand volume to every origin-destination pair of
a network.  The paper manipulates it in three equivalent forms (Section 3):

* the vector ``s`` of point-to-point demands (canonical pair order),
* the normalised *demand distribution* ``s / s_tot``, and
* the *fanout* form ``alpha_nm = s_nm / sum_m s_nm`` — the fraction of the
  traffic entering at ``n`` that exits at ``m``.

:class:`TrafficMatrix` provides all three views plus the bookkeeping
(origin / destination totals, top-demand selection, thresholds for the
"demands carrying X % of traffic" rule used by the MRE metric).
:class:`TrafficMatrixSeries` holds a time series of matrices sampled at a
fixed interval — the paper's 24 hours of 5-minute samples — and exposes the
per-demand statistics (mean, variance, fanout trajectories) the data
analysis sections rely on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.errors import TrafficError
from repro.topology.elements import NodePair
from repro.topology.network import Network

__all__ = ["TrafficMatrix", "TrafficMatrixSeries"]


class TrafficMatrix:
    """An immutable traffic matrix over an explicit pair ordering.

    Parameters
    ----------
    pairs:
        Origin-destination pairs, in the order the values refer to.  This is
        normally the canonical order of the owning network.
    values:
        Demand volumes (e.g. Mbit/s), one per pair, all non-negative.
    """

    def __init__(self, pairs: Sequence[NodePair], values: Iterable[float]) -> None:
        self.pairs = tuple(pairs)
        vector = np.asarray(list(values), dtype=float)
        if vector.ndim != 1:
            raise TrafficError("traffic matrix values must form a one-dimensional vector")
        if len(vector) != len(self.pairs):
            raise TrafficError(
                f"got {len(vector)} values for {len(self.pairs)} pairs"
            )
        if np.any(vector < 0):
            raise TrafficError("traffic matrix values must be non-negative")
        if len(set(self.pairs)) != len(self.pairs):
            raise TrafficError("duplicate origin-destination pairs")
        self._values = vector
        self._values.setflags(write=False)
        self._index = {pair: idx for idx, pair in enumerate(self.pairs)}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls,
        pairs: Sequence[NodePair],
        demands: Mapping[NodePair, float],
        strict: bool = False,
    ) -> "TrafficMatrix":
        """Build a matrix from a ``pair -> volume`` mapping.

        Pairs absent from the mapping get zero demand.  With ``strict`` the
        mapping must not contain pairs outside ``pairs``.
        """
        known = set(pairs)
        extra = set(demands) - known
        if strict and extra:
            raise TrafficError(f"demands reference unknown pairs: {sorted(map(str, extra))}")
        return cls(pairs, [float(demands.get(pair, 0.0)) for pair in pairs])

    @classmethod
    def from_network(cls, network: Network, demands: Mapping[NodePair, float]) -> "TrafficMatrix":
        """Build a matrix over the canonical pair order of ``network``."""
        return cls.from_mapping(network.node_pairs(), demands, strict=True)

    @classmethod
    def zeros(cls, pairs: Sequence[NodePair]) -> "TrafficMatrix":
        """An all-zero matrix over ``pairs``."""
        return cls(pairs, np.zeros(len(pairs)))

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """The demand vector ``s`` (read-only view)."""
        return self._values

    def demand(self, pair: NodePair) -> float:
        """Demand of a single pair."""
        try:
            return float(self._values[self._index[pair]])
        except KeyError as exc:
            raise TrafficError(f"pair {pair} not in traffic matrix") from exc

    def __getitem__(self, pair: NodePair) -> float:
        return self.demand(pair)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[tuple[NodePair, float]]:
        return iter(zip(self.pairs, self._values))

    def to_mapping(self) -> dict[NodePair, float]:
        """Return a ``pair -> volume`` dictionary."""
        return {pair: float(value) for pair, value in zip(self.pairs, self._values)}

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total network traffic ``s_tot`` (sum of all demands)."""
        return float(self._values.sum())

    def origin_names(self) -> tuple[str, ...]:
        """Origins appearing in the pair ordering, in first-seen order."""
        seen: dict[str, None] = {}
        for pair in self.pairs:
            seen.setdefault(pair.origin, None)
        return tuple(seen)

    def destination_names(self) -> tuple[str, ...]:
        """Destinations appearing in the pair ordering, in first-seen order."""
        seen: dict[str, None] = {}
        for pair in self.pairs:
            seen.setdefault(pair.destination, None)
        return tuple(seen)

    def origin_totals(self) -> dict[str, float]:
        """Total traffic entering the network at each origin (``t_e(n)``)."""
        totals: dict[str, float] = {name: 0.0 for name in self.origin_names()}
        for pair, value in zip(self.pairs, self._values):
            totals[pair.origin] += float(value)
        return totals

    def destination_totals(self) -> dict[str, float]:
        """Total traffic exiting the network at each destination (``t_x(m)``)."""
        totals: dict[str, float] = {name: 0.0 for name in self.destination_names()}
        for pair, value in zip(self.pairs, self._values):
            totals[pair.destination] += float(value)
        return totals

    def to_dense(self) -> tuple[tuple[str, ...], np.ndarray]:
        """Return ``(node_names, matrix)`` with a dense N x N array.

        The diagonal is zero; node order is origins-first-seen, extended by
        destinations not already present.
        """
        names = list(self.origin_names())
        for name in self.destination_names():
            if name not in names:
                names.append(name)
        index = {name: i for i, name in enumerate(names)}
        dense = np.zeros((len(names), len(names)))
        for pair, value in zip(self.pairs, self._values):
            dense[index[pair.origin], index[pair.destination]] = value
        return tuple(names), dense

    # ------------------------------------------------------------------
    # normalised views (paper Section 3.2)
    # ------------------------------------------------------------------
    def as_distribution(self) -> np.ndarray:
        """The demand distribution ``s / s_tot`` (sums to one).

        Raises
        ------
        TrafficError
            If the matrix is identically zero (the distribution is undefined).
        """
        total = self.total
        if total <= 0:
            raise TrafficError("cannot normalise an all-zero traffic matrix")
        return self._values / total

    def fanouts(self) -> dict[NodePair, float]:
        """Fanout factors ``alpha_nm = s_nm / t_e(n)``.

        Origins with zero total traffic get uniform fanouts over their
        destinations, which keeps every per-origin fanout vector a proper
        probability distribution.
        """
        origin_totals = self.origin_totals()
        destinations_per_origin: dict[str, int] = {}
        for pair in self.pairs:
            destinations_per_origin[pair.origin] = destinations_per_origin.get(pair.origin, 0) + 1
        fanouts: dict[NodePair, float] = {}
        for pair, value in zip(self.pairs, self._values):
            total = origin_totals[pair.origin]
            if total > 0:
                fanouts[pair] = float(value) / total
            else:
                fanouts[pair] = 1.0 / destinations_per_origin[pair.origin]
        return fanouts

    def fanout_vector(self) -> np.ndarray:
        """Fanouts in canonical pair order, as a vector."""
        fanouts = self.fanouts()
        return np.array([fanouts[pair] for pair in self.pairs])

    # ------------------------------------------------------------------
    # demand ranking helpers (used by the MRE threshold rule)
    # ------------------------------------------------------------------
    def top_demands(self, count: int) -> tuple[NodePair, ...]:
        """The ``count`` largest demands, by volume, ties broken by pair order."""
        if count < 0:
            raise TrafficError("count must be non-negative")
        order = sorted(
            range(len(self.pairs)), key=lambda i: (-self._values[i], i)
        )
        return tuple(self.pairs[i] for i in order[:count])

    def threshold_for_traffic_fraction(self, fraction: float) -> float:
        """Smallest demand value whose inclusion covers ``fraction`` of traffic.

        The paper's MRE sums over demands larger than a threshold chosen so
        that the retained demands carry approximately 90 % of total traffic;
        this helper computes that threshold.
        """
        if not 0 < fraction <= 1:
            raise TrafficError("fraction must lie in (0, 1]")
        if self.total <= 0:
            return 0.0
        sorted_values = np.sort(self._values)[::-1]
        cumulative = np.cumsum(sorted_values)
        target = fraction * self.total
        idx = int(np.searchsorted(cumulative, target - 1e-12))
        idx = min(idx, len(sorted_values) - 1)
        return float(sorted_values[idx])

    def demands_above(self, threshold: float) -> tuple[NodePair, ...]:
        """Pairs whose demand strictly exceeds ``threshold``."""
        return tuple(
            pair for pair, value in zip(self.pairs, self._values) if value > threshold
        )

    def cumulative_distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """Data behind the paper's Figure 2.

        Returns ``(rank_fraction, traffic_fraction)``: after sorting demands
        in decreasing order, ``traffic_fraction[i]`` is the share of total
        traffic carried by the ``rank_fraction[i]`` largest fraction of
        demands.
        """
        if self.total <= 0:
            raise TrafficError("cumulative distribution undefined for zero traffic")
        sorted_values = np.sort(self._values)[::-1]
        cumulative = np.cumsum(sorted_values) / self.total
        ranks = np.arange(1, len(sorted_values) + 1) / len(sorted_values)
        return ranks, cumulative

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy with every demand multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise TrafficError("scaling factor must be non-negative")
        return TrafficMatrix(self.pairs, self._values * factor)

    def with_values(self, values: Iterable[float]) -> "TrafficMatrix":
        """Return a matrix over the same pairs with new values."""
        return TrafficMatrix(self.pairs, values)

    def __add__(self, other: "TrafficMatrix") -> "TrafficMatrix":
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        if self.pairs != other.pairs:
            raise TrafficError("cannot add traffic matrices over different pair orderings")
        return TrafficMatrix(self.pairs, self._values + other._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrafficMatrix(pairs={len(self.pairs)}, total={self.total:.3f})"


class TrafficMatrixSeries:
    """A time series of traffic matrices sampled at a fixed interval.

    Parameters
    ----------
    snapshots:
        Traffic matrices in chronological order; all must share the same
        pair ordering.
    interval_seconds:
        Sampling interval; the paper's data is five-minute (300 s) samples.
    start_time_seconds:
        Timestamp of the first snapshot, seconds since midnight.
    """

    def __init__(
        self,
        snapshots: Sequence[TrafficMatrix],
        interval_seconds: float = 300.0,
        start_time_seconds: float = 0.0,
    ) -> None:
        if not snapshots:
            raise TrafficError("a traffic matrix series needs at least one snapshot")
        if interval_seconds <= 0:
            raise TrafficError("interval_seconds must be positive")
        first = snapshots[0]
        for snap in snapshots[1:]:
            if snap.pairs != first.pairs:
                raise TrafficError("all snapshots must share the same pair ordering")
        self.snapshots = tuple(snapshots)
        self.interval_seconds = float(interval_seconds)
        self.start_time_seconds = float(start_time_seconds)
        self.pairs = first.pairs

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, index: int) -> TrafficMatrix:
        return self.snapshots[index]

    def __iter__(self) -> Iterator[TrafficMatrix]:
        return iter(self.snapshots)

    def timestamps(self) -> np.ndarray:
        """Timestamps (seconds since midnight) of each snapshot."""
        return self.start_time_seconds + self.interval_seconds * np.arange(len(self.snapshots))

    def as_array(self) -> np.ndarray:
        """Stack the demand vectors into an array of shape ``(K, P)``."""
        return np.stack([snap.vector for snap in self.snapshots])

    # ------------------------------------------------------------------
    # statistics used by the paper's data analysis
    # ------------------------------------------------------------------
    def mean_matrix(self) -> TrafficMatrix:
        """Per-pair mean over the series (the MRE reference for time-series methods)."""
        return TrafficMatrix(self.pairs, self.as_array().mean(axis=0))

    def demand_means(self) -> np.ndarray:
        """Per-pair sample means."""
        return self.as_array().mean(axis=0)

    def demand_variances(self, ddof: int = 0) -> np.ndarray:
        """Per-pair sample variances."""
        return self.as_array().var(axis=0, ddof=ddof)

    def total_traffic_series(self) -> np.ndarray:
        """Total network traffic per snapshot (the paper's Figure 1)."""
        return self.as_array().sum(axis=1)

    def fanout_series(self) -> np.ndarray:
        """Fanouts per snapshot, shape ``(K, P)`` (the paper's Figure 5)."""
        return np.stack([snap.fanout_vector() for snap in self.snapshots])

    def window(self, start: int, length: int) -> "TrafficMatrixSeries":
        """Return the sub-series ``[start, start + length)``."""
        if length <= 0:
            raise TrafficError("window length must be positive")
        if start < 0 or start + length > len(self.snapshots):
            raise TrafficError(
                f"window [{start}, {start + length}) outside series of length {len(self)}"
            )
        return TrafficMatrixSeries(
            self.snapshots[start : start + length],
            interval_seconds=self.interval_seconds,
            start_time_seconds=self.start_time_seconds + start * self.interval_seconds,
        )

    def busy_window_start(self, length: int) -> int:
        """Start index of the ``length``-snapshot window with the most traffic.

        Exposed separately from :meth:`busy_window` so that parallel series
        (e.g. measured link loads) can be sliced to the same interval.
        """
        if length <= 0:
            raise TrafficError("window length must be positive")
        if length > len(self.snapshots):
            raise TrafficError("window longer than the series")
        totals = self.total_traffic_series()
        sums = np.convolve(totals, np.ones(length), mode="valid")
        return int(np.argmax(sums))

    def busy_window(self, length: int) -> "TrafficMatrixSeries":
        """The ``length`` consecutive snapshots with the highest total traffic.

        This mirrors the paper's focus on the busy period (the shaded
        interval of its Figure 1) for the estimation benchmarks.
        """
        return self.window(self.busy_window_start(length), length)
