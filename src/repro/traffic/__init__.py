"""Traffic substrate: traffic matrices, diurnal profiles, synthetic generators.

* :class:`~repro.traffic.matrix.TrafficMatrix` /
  :class:`~repro.traffic.matrix.TrafficMatrixSeries` — demand vectors,
  distributions, fanouts and their time series;
* :mod:`~repro.traffic.diurnal` — 24-hour traffic profiles (Figure 1);
* :mod:`~repro.traffic.meanvariance` — the generalised scaling law
  ``Var = phi * mean ** c`` and its log-log fit (Figure 6);
* :mod:`~repro.traffic.synthetic` — day-long synthetic demand processes
  calibrated to the paper's data analysis, plus the Poisson series of the
  synthetic Vardi experiment (Figure 12).
"""

from repro.traffic.diurnal import (
    FIVE_MINUTES,
    SECONDS_PER_DAY,
    DiurnalProfile,
    american_profile,
    european_profile,
    flat_profile,
)
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries
from repro.traffic.meanvariance import ScalingLaw, fit_scaling_law, scaling_law_from_series
from repro.traffic.synthetic import (
    SyntheticTrafficConfig,
    SyntheticTrafficModel,
    base_demand_matrix,
    poisson_series,
)

__all__ = [
    "TrafficMatrix",
    "TrafficMatrixSeries",
    "DiurnalProfile",
    "european_profile",
    "american_profile",
    "flat_profile",
    "FIVE_MINUTES",
    "SECONDS_PER_DAY",
    "ScalingLaw",
    "fit_scaling_law",
    "scaling_law_from_series",
    "SyntheticTrafficConfig",
    "SyntheticTrafficModel",
    "base_demand_matrix",
    "poisson_series",
]
