"""Synthetic traffic-matrix generation calibrated to the paper's data analysis.

The measured Global Crossing traffic matrices are proprietary, so the
reproduction generates synthetic demand processes that reproduce every
statistic the paper reports about its data:

* a clear **diurnal cycle** of the total traffic with busy periods that
  differ between regions (Figure 1) — via
  :class:`~repro.traffic.diurnal.DiurnalProfile`;
* strong **spatial concentration**: the top 20 % of demands carry roughly
  80 % of the traffic (Figure 2), with a few dominating source/destination
  hot spots (Figure 3);
* **gravity-model violations**: per-pair affinity factors distort the
  population-gravity baseline, mildly for the European-like network and
  strongly for the American-like one, reproducing Figure 7 where the simple
  gravity model underestimates the large American demands;
* **stable fanouts** for large sources (Figures 4-5): the spatial structure
  is held fixed over the day up to small jitter while total per-origin
  volumes follow the diurnal cycle;
* the **generalised mean-variance scaling law** ``Var = phi * mean ** c``
  (Figure 6) for the 5-minute fluctuations around the slowly varying mean.

The two public entry points are :func:`base_demand_matrix` (a single mean
traffic matrix) and :class:`SyntheticTrafficModel` (a full day of five-minute
snapshots).  :func:`poisson_series` generates the i.i.d. Poisson snapshots
used by the paper's synthetic Vardi experiment (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import TrafficError
from repro.topology.elements import NodePair
from repro.topology.network import Network
from repro.traffic.diurnal import FIVE_MINUTES, SECONDS_PER_DAY, DiurnalProfile, flat_profile
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries
from repro.traffic.meanvariance import ScalingLaw

__all__ = [
    "SyntheticTrafficConfig",
    "base_demand_matrix",
    "SyntheticTrafficModel",
    "poisson_series",
]


@dataclass(frozen=True)
class SyntheticTrafficConfig:
    """Parameters of the synthetic demand generator.

    Parameters
    ----------
    total_traffic_mbps:
        Total network traffic at the busy-hour peak.
    top_fraction, top_share:
        Concentration target: the largest ``top_fraction`` of demands should
        carry about ``top_share`` of total traffic (the paper's 20 %/80 %).
    gravity_distortion:
        Standard deviation (in log space) of the per-pair affinity factors
        that pull the matrix away from the pure gravity structure.  Around
        0.5 the gravity model still fits reasonably (European behaviour);
        around 1.3 it underestimates the large demands badly (American
        behaviour).
    scaling_law:
        Mean-variance law of the five-minute fluctuations.
    fanout_jitter:
        Relative standard deviation of the slow per-pair modulation applied
        on top of the diurnal cycle; small values keep fanouts stable.
    origin_phase_spread_hours:
        Per-origin peak-hour spread; origins do not all peak at exactly the
        same minute.
    """

    total_traffic_mbps: float = 20_000.0
    top_fraction: float = 0.2
    top_share: float = 0.8
    gravity_distortion: float = 0.5
    scaling_law: ScalingLaw = field(default_factory=lambda: ScalingLaw(phi=1.0, c=1.5))
    fanout_jitter: float = 0.03
    origin_phase_spread_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.total_traffic_mbps <= 0:
            raise TrafficError("total_traffic_mbps must be positive")
        if not 0 < self.top_fraction < 1:
            raise TrafficError("top_fraction must lie in (0, 1)")
        if not 0 < self.top_share < 1:
            raise TrafficError("top_share must lie in (0, 1)")
        if self.top_share < self.top_fraction:
            raise TrafficError("top_share must be at least top_fraction (concentration)")
        if self.gravity_distortion < 0:
            raise TrafficError("gravity_distortion must be non-negative")
        if self.fanout_jitter < 0:
            raise TrafficError("fanout_jitter must be non-negative")
        if self.origin_phase_spread_hours < 0:
            raise TrafficError("origin_phase_spread_hours must be non-negative")


def _top_share(values: np.ndarray, top_fraction: float) -> float:
    """Share of total volume carried by the largest ``top_fraction`` of values."""
    total = values.sum()
    if total <= 0:
        raise TrafficError("cannot compute concentration of a zero matrix")
    count = max(1, int(round(top_fraction * len(values))))
    largest = np.sort(values)[::-1][:count]
    return float(largest.sum() / total)


def _apply_concentration(
    values: np.ndarray, top_fraction: float, top_share: float, tolerance: float = 0.01
) -> np.ndarray:
    """Exponentiate ``values`` (preserving their order) to hit a concentration target.

    Raising every value to a power ``gamma > 0`` preserves the ranking while
    monotonically adjusting how concentrated the distribution is; a simple
    bisection on ``gamma`` therefore drives the top-``top_fraction`` share to
    the requested ``top_share``.
    """
    values = np.asarray(values, dtype=float)
    if np.any(values < 0):
        raise TrafficError("values must be non-negative")
    positive = values > 0
    if not np.any(positive):
        raise TrafficError("cannot concentrate an all-zero vector")

    def share_for(gamma: float) -> float:
        adjusted = np.zeros_like(values)
        adjusted[positive] = np.power(values[positive], gamma)
        return _top_share(adjusted, top_fraction)

    low, high = 0.05, 20.0
    if share_for(low) > top_share:
        gamma = low
    elif share_for(high) < top_share:
        gamma = high
    else:
        gamma = 1.0
        for _ in range(60):
            gamma = 0.5 * (low + high)
            current = share_for(gamma)
            if abs(current - top_share) <= tolerance:
                break
            if current < top_share:
                low = gamma
            else:
                high = gamma
    adjusted = np.zeros_like(values)
    adjusted[positive] = np.power(values[positive], gamma)
    return adjusted


def base_demand_matrix(
    network: Network,
    config: Optional[SyntheticTrafficConfig] = None,
    seed: Optional[int] = None,
) -> TrafficMatrix:
    """Generate the mean (busy-hour) traffic matrix for ``network``.

    The construction starts from a population-gravity structure
    ``s_nm ~ pop_n * pop_m``, multiplies each pair by a log-normal affinity
    factor (hot-spot structure / gravity violation), adjusts the
    concentration so the top 20 % of demands carry about 80 % of the
    traffic, and scales the total to ``config.total_traffic_mbps``.
    """
    config = config or SyntheticTrafficConfig()
    rng = np.random.default_rng(seed)
    pairs = network.node_pairs()
    if not pairs:
        raise TrafficError(f"network {network.name!r} has no origin-destination pairs")
    populations = {node.name: node.population for node in network.nodes}
    gravity = np.array(
        [populations[pair.origin] * populations[pair.destination] for pair in pairs]
    )
    affinity = rng.lognormal(mean=0.0, sigma=config.gravity_distortion, size=len(pairs))
    raw = gravity * affinity
    concentrated = _apply_concentration(raw, config.top_fraction, config.top_share)
    scaled = concentrated * (config.total_traffic_mbps / concentrated.sum())
    return TrafficMatrix(pairs, scaled)


class SyntheticTrafficModel:
    """A day-long synthetic demand process over a network.

    Parameters
    ----------
    network:
        The backbone the demands live on.
    base_matrix:
        Busy-hour mean traffic matrix (e.g. from :func:`base_demand_matrix`).
    profile:
        Diurnal profile of the region.
    config:
        Generator configuration (scaling law, jitters, ...).
    seed:
        Seed for the internal random generator; a fixed seed makes the whole
        day reproducible.
    """

    def __init__(
        self,
        network: Network,
        base_matrix: TrafficMatrix,
        profile: Optional[DiurnalProfile] = None,
        config: Optional[SyntheticTrafficConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.network = network
        self.config = config or SyntheticTrafficConfig()
        self.profile = profile or flat_profile()
        pairs = network.node_pairs()
        if base_matrix.pairs != pairs:
            raise TrafficError("base matrix pair ordering does not match the network")
        self.base_matrix = base_matrix
        self._rng = np.random.default_rng(seed)
        origins = sorted({pair.origin for pair in pairs})
        spread = self.config.origin_phase_spread_hours
        self._origin_phase = {
            origin: float(self._rng.uniform(-spread, spread)) for origin in origins
        }
        # Slow per-pair modulation (kept fixed for the day) controls how much
        # fanouts drift; small jitter keeps them stable as in Figures 4-5.
        self._pair_modulation = self._rng.normal(
            loc=1.0, scale=self.config.fanout_jitter, size=len(pairs)
        ).clip(min=0.0)
        # The diurnal level depends only on the origin's phase, so each
        # snapshot needs one profile evaluation per *origin*, scattered to
        # the pairs through this index array — not one per pair, which is
        # what makes day generation tractable on large meshes.
        self._phase_seconds = np.array([self._origin_phase[origin] * 3600.0 for origin in origins])
        origin_pos = {name: idx for idx, name in enumerate(origins)}
        self._pair_origin_index = np.fromiter(
            (origin_pos[pair.origin] for pair in pairs), dtype=np.intp, count=len(pairs)
        )

    # ------------------------------------------------------------------
    def mean_at(self, time_seconds: float) -> np.ndarray:
        """Instantaneous mean demand vector at ``time_seconds``."""
        base = self.base_matrix.vector
        origin_levels = np.asarray(self.profile.level(time_seconds + self._phase_seconds))
        levels = origin_levels[self._pair_origin_index]
        return base * levels * self._pair_modulation

    def snapshot_at(self, time_seconds: float) -> TrafficMatrix:
        """Draw one five-minute snapshot at ``time_seconds``.

        The snapshot equals the instantaneous mean plus a fluctuation whose
        variance follows the configured mean-variance scaling law, truncated
        at zero.
        """
        mean = self.mean_at(time_seconds)
        std = np.sqrt(self.config.scaling_law.variance(mean))
        values = np.maximum(self._rng.normal(loc=mean, scale=std), 0.0)
        return TrafficMatrix(self.base_matrix.pairs, values)

    def generate_day(
        self,
        interval_seconds: float = FIVE_MINUTES,
        start_time_seconds: float = 0.0,
    ) -> TrafficMatrixSeries:
        """Generate a full day of snapshots (288 samples at 5 minutes)."""
        if interval_seconds <= 0:
            raise TrafficError("interval_seconds must be positive")
        times = np.arange(start_time_seconds, start_time_seconds + SECONDS_PER_DAY, interval_seconds)
        snapshots = [self.snapshot_at(float(t)) for t in times]
        return TrafficMatrixSeries(
            snapshots, interval_seconds=interval_seconds, start_time_seconds=start_time_seconds
        )

    def generate_series(
        self,
        num_samples: int,
        interval_seconds: float = FIVE_MINUTES,
        start_time_seconds: float = 18.0 * 3600,
    ) -> TrafficMatrixSeries:
        """Generate ``num_samples`` consecutive snapshots (default: busy hour onwards)."""
        if num_samples <= 0:
            raise TrafficError("num_samples must be positive")
        times = start_time_seconds + interval_seconds * np.arange(num_samples)
        snapshots = [self.snapshot_at(float(t)) for t in times]
        return TrafficMatrixSeries(
            snapshots, interval_seconds=interval_seconds, start_time_seconds=start_time_seconds
        )


def poisson_series(
    mean_matrix: TrafficMatrix,
    num_samples: int,
    seed: Optional[int] = None,
    interval_seconds: float = FIVE_MINUTES,
) -> TrafficMatrixSeries:
    """Generate i.i.d. Poisson snapshots around a mean traffic matrix.

    This reproduces the paper's synthetic experiment (Figure 12): the mean
    of the measured demands over the busy period is used as the Poisson
    intensity ``lambda_p``, and a time series of independent Poisson
    matrices is drawn from it to study how many samples the Vardi method
    needs even when its modelling assumption holds exactly.
    """
    if num_samples <= 0:
        raise TrafficError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    lam = mean_matrix.vector
    snapshots = [
        TrafficMatrix(mean_matrix.pairs, rng.poisson(lam).astype(float))
        for _ in range(num_samples)
    ]
    return TrafficMatrixSeries(snapshots, interval_seconds=interval_seconds)
