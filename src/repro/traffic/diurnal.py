"""Diurnal (time-of-day) traffic profiles.

The paper's Figure 1 shows the normalised total traffic of the European and
American subnetworks over 24 hours: both follow a clear diurnal cycle with
pronounced busy periods that partially overlap around 18:00 GMT (Europe's
evening peak and America's afternoon peak).

:class:`DiurnalProfile` models such a cycle as a smooth, strictly positive
multiplier of a base traffic level.  Profiles are built from a peak hour, a
peak-to-trough ratio and an optional secondary (morning) bump, and can be
sampled at arbitrary timestamps — the generators sample them every five
minutes, matching the paper's measurement interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TrafficError

__all__ = [
    "DiurnalProfile",
    "european_profile",
    "american_profile",
    "flat_profile",
    "SECONDS_PER_DAY",
    "FIVE_MINUTES",
]

SECONDS_PER_DAY = 24 * 3600
FIVE_MINUTES = 300.0


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-hour periodic traffic multiplier.

    The multiplier at time ``t`` (seconds since midnight) is

    ``level(t) = base + amplitude * bump(t; peak_hour, width)
               + morning_amplitude * bump(t; morning_hour, width)``

    where ``bump`` is a periodic von-Mises-style bell centred on the peak
    hour.  The profile is normalised so its maximum over the day equals 1,
    making it directly comparable to the paper's normalised plots.

    Parameters
    ----------
    peak_hour:
        Hour of the main busy period (0-24, GMT).
    trough_ratio:
        Ratio of the overnight minimum to the peak (0 < ratio < 1).
    sharpness:
        Concentration of the busy period; larger values give a narrower peak.
    morning_hour, morning_ratio:
        Optional secondary bump (e.g. a business-hours plateau); the
        secondary peak reaches ``morning_ratio`` of the main one.
    """

    peak_hour: float = 20.0
    trough_ratio: float = 0.3
    sharpness: float = 2.0
    morning_hour: float | None = None
    morning_ratio: float = 0.6

    def __post_init__(self) -> None:
        if not 0 <= self.peak_hour < 24:
            raise TrafficError("peak_hour must lie in [0, 24)")
        if not 0 < self.trough_ratio < 1:
            raise TrafficError("trough_ratio must lie in (0, 1)")
        if self.sharpness <= 0:
            raise TrafficError("sharpness must be positive")
        if self.morning_hour is not None and not 0 <= self.morning_hour < 24:
            raise TrafficError("morning_hour must lie in [0, 24)")
        if not 0 <= self.morning_ratio <= 1:
            raise TrafficError("morning_ratio must lie in [0, 1]")

    # ------------------------------------------------------------------
    def _bump(self, hours: np.ndarray, centre: float) -> np.ndarray:
        """Periodic bell centred on ``centre`` with unit maximum."""
        phase = 2 * math.pi * (hours - centre) / 24.0
        return np.exp(self.sharpness * (np.cos(phase) - 1.0))

    def level(self, time_seconds: float | np.ndarray) -> np.ndarray | float:
        """Traffic multiplier at the given time(s), normalised to peak 1."""
        scalar = np.isscalar(time_seconds)
        hours = np.asarray(time_seconds, dtype=float) / 3600.0 % 24.0
        shape = self._bump(hours, self.peak_hour)
        if self.morning_hour is not None:
            shape = np.maximum(shape, self.morning_ratio * self._bump(hours, self.morning_hour))
        value = self.trough_ratio + (1.0 - self.trough_ratio) * shape
        # Normalise so the daily maximum is exactly one.
        grid_hours = np.linspace(0, 24, 289)
        grid = self._bump(grid_hours, self.peak_hour)
        if self.morning_hour is not None:
            grid = np.maximum(grid, self.morning_ratio * self._bump(grid_hours, self.morning_hour))
        peak = self.trough_ratio + (1.0 - self.trough_ratio) * grid.max()
        value = value / peak
        return float(value) if scalar else value

    def sample_day(self, interval_seconds: float = FIVE_MINUTES) -> np.ndarray:
        """Sample the profile at fixed intervals over one day.

        With the default 300-second interval this returns 288 samples,
        matching the paper's 24 hours of five-minute measurements.
        """
        if interval_seconds <= 0:
            raise TrafficError("interval_seconds must be positive")
        times = np.arange(0, SECONDS_PER_DAY, interval_seconds)
        return np.asarray(self.level(times))

    def busy_hour(self, interval_seconds: float = FIVE_MINUTES) -> float:
        """Hour of the day at which the sampled profile is largest."""
        samples = self.sample_day(interval_seconds)
        return float(np.argmax(samples) * interval_seconds / 3600.0)

    def shifted(self, hours: float) -> "DiurnalProfile":
        """Return a copy whose peaks are shifted by ``hours`` (wrap-around)."""
        return DiurnalProfile(
            peak_hour=(self.peak_hour + hours) % 24.0,
            trough_ratio=self.trough_ratio,
            sharpness=self.sharpness,
            morning_hour=None if self.morning_hour is None else (self.morning_hour + hours) % 24.0,
            morning_ratio=self.morning_ratio,
        )


def european_profile() -> DiurnalProfile:
    """Diurnal profile for the European subnetwork.

    Evening peak around 20:00 GMT with a business-hours shoulder, so that
    the busy period overlaps the American one around 18:00 GMT as in the
    paper's Figure 1.
    """
    return DiurnalProfile(
        peak_hour=19.5, trough_ratio=0.35, sharpness=2.2, morning_hour=10.0, morning_ratio=0.75
    )


def american_profile() -> DiurnalProfile:
    """Diurnal profile for the American subnetwork (peak around 23:00 GMT)."""
    return DiurnalProfile(
        peak_hour=22.5, trough_ratio=0.30, sharpness=1.8, morning_hour=16.0, morning_ratio=0.8
    )


def flat_profile() -> DiurnalProfile:
    """A nearly flat profile, useful for tests that want stationary traffic."""
    return DiurnalProfile(peak_hour=12.0, trough_ratio=0.97, sharpness=0.5)
