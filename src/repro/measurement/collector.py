"""Distributed measurement collection.

The paper's infrastructure uses a geographically distributed set of pollers,
each responsible for the routers of its area and acting as a backup for its
neighbours, with results shipped to a central database over TCP
(Section 5.1.2).  This module models that architecture end-to-end:

* :class:`MeasurementArchive` — the central database: a time-indexed store
  of per-object rate samples with simple querying;
* :class:`DistributedCollector` — assigns objects to regional
  :class:`~repro.measurement.snmp.SNMPPoller` instances, drives them from a
  traffic-matrix series via a routing matrix (so the polled counters see the
  true LSP/link rates), derives interval rates and stores them in the
  archive.

The collector is what turns a *demand process* into the *measured LSP
matrix* and *measured link loads* the estimation benchmarks start from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import MeasurementError
from repro.measurement.snmp import SNMPPoller, rates_from_polls
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import NodePair
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = ["MeasurementArchive", "DistributedCollector"]


class MeasurementArchive:
    """Central store of per-object rate samples.

    Samples are stored per object name as ``(timestamp, rate)`` pairs in
    insertion order.  The archive deliberately mimics a simple time-series
    database rather than exposing NumPy arrays directly; use
    :meth:`rates_matrix` to get the dense view estimation code wants.
    """

    def __init__(self) -> None:
        self._samples: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record(self, object_name: str, timestamp: float, rate_mbps: float) -> None:
        """Store one sample; rates must be non-negative."""
        if rate_mbps < 0:
            raise MeasurementError(f"negative rate recorded for {object_name!r}")
        self._samples[object_name].append((float(timestamp), float(rate_mbps)))

    def objects(self) -> tuple[str, ...]:
        """Names of all objects with at least one sample."""
        return tuple(self._samples)

    def samples(self, object_name: str) -> tuple[tuple[float, float], ...]:
        """All ``(timestamp, rate)`` samples of one object."""
        if object_name not in self._samples:
            raise MeasurementError(f"no samples recorded for {object_name!r}")
        return tuple(self._samples[object_name])

    def num_samples(self, object_name: str) -> int:
        """Number of samples stored for ``object_name`` (0 if unknown)."""
        return len(self._samples.get(object_name, ()))

    def rates_matrix(self, object_names: Sequence[str]) -> np.ndarray:
        """Dense ``(K, num_objects)`` rate array in the given object order.

        All requested objects must have the same number of samples (they do
        when populated by one collector run).
        """
        columns = []
        lengths = set()
        for name in object_names:
            rates = [rate for _, rate in self.samples(name)]
            lengths.add(len(rates))
            columns.append(rates)
        if len(lengths) > 1:
            raise MeasurementError("objects have differing sample counts")
        return np.array(columns, dtype=float).T


class DistributedCollector:
    """A set of regional pollers feeding one central archive.

    Parameters
    ----------
    routing:
        Routing matrix of the measured network; its pair and link orderings
        define the LSP and link objects to poll.
    num_pollers:
        Number of regional pollers to spread the objects over.
    interval_seconds, jitter_std_seconds, loss_probability:
        Forwarded to each :class:`~repro.measurement.snmp.SNMPPoller`.
    seed:
        Base seed; each poller gets a distinct derived seed.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        num_pollers: int = 3,
        interval_seconds: float = 300.0,
        jitter_std_seconds: float = 2.0,
        loss_probability: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if num_pollers < 1:
            raise MeasurementError("need at least one poller")
        self.routing = routing
        self.archive = MeasurementArchive()
        self.interval_seconds = float(interval_seconds)

        lsp_names = [f"lsp:{pair.origin}->{pair.destination}" for pair in routing.pairs]
        link_names = list(routing.link_names)
        self._lsp_names = tuple(lsp_names)
        self._link_names = tuple(link_names)
        all_objects = lsp_names + link_names

        # Round-robin assignment of objects to pollers approximates the
        # paper's geographic split while keeping per-poller load balanced.
        assignments: list[list[str]] = [[] for _ in range(num_pollers)]
        for idx, name in enumerate(all_objects):
            assignments[idx % num_pollers].append(name)
        base_seed = seed if seed is not None else 0
        self.pollers = [
            SNMPPoller(
                object_names=objects,
                interval_seconds=interval_seconds,
                jitter_std_seconds=jitter_std_seconds,
                loss_probability=loss_probability,
                seed=base_seed + poller_idx,
            )
            for poller_idx, objects in enumerate(assignments)
            if objects
        ]

    # ------------------------------------------------------------------
    def _object_rates(self, snapshot: TrafficMatrix) -> dict[str, float]:
        """True per-object rates for one snapshot (LSPs carry demands, links carry sums)."""
        rates: dict[str, float] = {}
        for pair, value in zip(self.routing.pairs, snapshot.vector):
            rates[f"lsp:{pair.origin}->{pair.destination}"] = float(value)
        link_loads = self.routing.link_loads(snapshot.vector)
        for name, load in zip(self.routing.link_names, link_loads):
            rates[name] = float(load)
        return rates

    def collect(self, series: TrafficMatrixSeries, start_time: float = 0.0) -> MeasurementArchive:
        """Run the full collection pipeline over a traffic series.

        Every poller drives its counters with the true rates of each
        interval, polls on the shared schedule, and the derived
        interval-adjusted rates are stored in the central archive.

        Returns the archive (also available as :attr:`archive`).
        """
        if series.pairs != self.routing.pairs:
            raise MeasurementError("series pair ordering does not match the routing matrix")
        rate_series = [self._object_rates(snapshot) for snapshot in series]
        timestamps = start_time + self.interval_seconds * np.arange(len(rate_series))
        for poller in self.pollers:
            rounds = poller.run_schedule(rate_series, start_time=start_time)
            rates = rates_from_polls(rounds, poller.object_names)
            for col, name in enumerate(poller.object_names):
                for k in range(rates.shape[0]):
                    self.archive.record(name, float(timestamps[k]), float(rates[k, col]))
        return self.archive

    # ------------------------------------------------------------------
    def measured_traffic_series(self) -> TrafficMatrixSeries:
        """Reconstruct the measured traffic-matrix series from LSP counters.

        This is the paper's headline capability: because every demand is an
        LSP with its own counter, the collected archive *is* a complete
        traffic matrix per interval.
        """
        rates = self.archive.rates_matrix(self._lsp_names)
        snapshots = [
            TrafficMatrix(self.routing.pairs, np.maximum(rates[k], 0.0))
            for k in range(rates.shape[0])
        ]
        return TrafficMatrixSeries(snapshots, interval_seconds=self.interval_seconds)

    def measured_link_loads(self) -> np.ndarray:
        """Measured link-load series of shape ``(K, L)`` from link counters."""
        return self.archive.rates_matrix(self._link_names)
