"""Distributed measurement collection.

The paper's infrastructure uses a geographically distributed set of pollers,
each responsible for the routers of its area and acting as a backup for its
neighbours, with results shipped to a central database over TCP
(Section 5.1.2).  This module models that architecture end-to-end:

* :class:`MeasurementArchive` — the central database: a time-indexed store
  of per-object rate samples.  Samples arrive in bulk blocks (one array per
  collector run) or one at a time; queries sort by timestamp, so pollers can
  ship their results in any order without misaligning the series;
* :class:`DistributedCollector` — assigns objects to regional
  :class:`~repro.measurement.snmp.SNMPPoller` instances, drives them from a
  traffic-matrix series via a routing matrix (so the polled counters see the
  true LSP/link rates), derives interval rates and stores them in the
  archive.  The whole pipeline is array-valued: one ``(K, objects)`` rate
  matrix drives all counters, and rates land in the archive as blocks.

Timestamp convention: the rate of interval ``k`` is derived from the poll at
the *end* of the interval, so the archive stamps it ``start + (k+1) * dt``.
:meth:`DistributedCollector.measured_traffic_series` shifts the series start
back by one interval so measured snapshot ``k`` carries the same timestamp
as snapshot ``k`` of the driving :class:`~repro.traffic.matrix.TrafficMatrixSeries`.

The collector is what turns a *demand process* into the *measured LSP
matrix* and *measured link loads* the estimation benchmarks start from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

import numpy as np

from repro import telemetry
from repro.errors import MeasurementError
from repro.measurement.snmp import (
    PollMatrix,
    RateDiagnostics,
    SNMPPoller,
    rates_from_poll_matrix,
)
from repro.routing.routing_matrix import RoutingMatrix
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = ["MeasurementArchive", "DistributedCollector"]


class MeasurementArchive:
    """Central store of per-object rate samples.

    Samples are stored per object as blocks of ``(timestamps, rates)``
    arrays — one block per :meth:`record_block` call (bulk, the collector's
    path) or per :meth:`record` call (single sample).  Queries merge the
    blocks and sort by timestamp, so the order in which pollers ship their
    results never affects the assembled series.

    Parameters
    ----------
    max_samples:
        Optional ring-buffer bound: keep at most this many of the *newest*
        samples (by timestamp) per object, evicting older ones as new
        blocks arrive.  A streamed day would otherwise grow the archive
        without bound; a bounded archive holds the recent window the
        streaming estimator actually consumes.  ``None`` (default) keeps
        everything — the batch pipeline's historical behaviour.

    With telemetry enabled the archive maintains two gauges,
    ``archive.retained_samples`` and ``archive.retained_bytes``, updated on
    every record/eviction so a dashboard can watch the ring stay bounded.
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise MeasurementError("max_samples must be positive (or None for unbounded)")
        self.max_samples = int(max_samples) if max_samples is not None else None
        self._blocks: dict[str, list[tuple[np.ndarray, np.ndarray]]] = defaultdict(list)
        # Single samples land in plain lists (O(1) per record) and are
        # coalesced into one array block when the object is next queried.
        self._pending: dict[str, list[tuple[float, float]]] = defaultdict(list)
        #: Samples evicted by the ring-buffer bound since construction.
        self.evicted_samples: int = 0

    def record(self, object_name: str, timestamp: float, rate_mbps: float) -> None:
        """Store one sample; rates must be non-negative."""
        if rate_mbps < 0:
            raise MeasurementError(f"negative rate recorded for {object_name!r}")
        self._blocks[object_name]  # register the object in insertion order
        self._pending[object_name].append((float(timestamp), float(rate_mbps)))
        if self.max_samples is not None and (
            len(self._pending[object_name])
            + sum(len(block[0]) for block in self._blocks[object_name])
            > self.max_samples
        ):
            self._evict(object_name)
        self._update_gauges()

    def record_block(
        self,
        object_names: Sequence[str],
        timestamps: np.ndarray,
        rates_mbps: np.ndarray,
    ) -> None:
        """Store a ``(K, objects)`` block of samples in one call.

        ``rates_mbps[k, i]`` is the rate of ``object_names[i]`` at
        ``timestamps[k]``.  This is the collector's bulk path: one call per
        poller run instead of one :meth:`record` per (object, interval).
        """
        timestamps = np.asarray(timestamps, dtype=float)
        rates = np.asarray(rates_mbps, dtype=float)
        if timestamps.ndim != 1:
            raise MeasurementError("timestamps must form a one-dimensional array")
        if rates.shape != (len(timestamps), len(object_names)):
            raise MeasurementError(
                f"rates block has shape {rates.shape}, expected "
                f"({len(timestamps)}, {len(object_names)})"
            )
        if np.any(rates < 0):
            raise MeasurementError("negative rate recorded in block")
        if len(set(object_names)) != len(tuple(object_names)):
            raise MeasurementError("duplicate object names in block")
        for col, name in enumerate(object_names):
            self._blocks[name].append((timestamps, rates[:, col]))
            if self.max_samples is not None and self.num_samples(name) > self.max_samples:
                self._evict(name)
        self._update_gauges()

    # ------------------------------------------------------------------
    def _evict(self, object_name: str) -> None:
        """Trim ``object_name`` to the newest ``max_samples`` samples.

        Coalesces the object's blocks into one timestamp-sorted block and
        keeps the tail, so eviction is by measurement time regardless of
        the order pollers shipped their results in.
        """
        assert self.max_samples is not None
        timestamps, rates = self._merged(object_name)
        dropped = len(timestamps) - self.max_samples
        if dropped <= 0:
            return
        self.evicted_samples += dropped
        self._blocks[object_name] = [
            (timestamps[dropped:], rates[dropped:])
        ]

    def _update_gauges(self) -> None:
        if not telemetry.is_enabled():
            return
        samples = 0
        for name, blocks in self._blocks.items():
            samples += sum(len(block[0]) for block in blocks)
            samples += len(self._pending.get(name, ()))
        # One float timestamp + one float rate per retained sample.
        telemetry.gauge_set("archive.retained_samples", samples)
        telemetry.gauge_set("archive.retained_bytes", samples * 16)

    def _merged(self, object_name: str) -> tuple[np.ndarray, np.ndarray]:
        """All samples of one object, sorted by timestamp."""
        pending = self._pending.pop(object_name, None)
        if pending:
            samples = np.asarray(pending, dtype=float)
            self._blocks[object_name].append((samples[:, 0], samples[:, 1]))
        blocks = self._blocks.get(object_name)
        if not blocks:
            raise MeasurementError(f"no samples recorded for {object_name!r}")
        timestamps = np.concatenate([block[0] for block in blocks])
        rates = np.concatenate([block[1] for block in blocks])
        order = np.argsort(timestamps, kind="stable")
        return timestamps[order], rates[order]

    def objects(self) -> tuple[str, ...]:
        """Names of all objects with at least one sample."""
        return tuple(self._blocks)

    def samples(self, object_name: str) -> tuple[tuple[float, float], ...]:
        """All ``(timestamp, rate)`` samples of one object, in time order."""
        timestamps, rates = self._merged(object_name)
        return tuple(zip(timestamps.tolist(), rates.tolist()))

    def num_samples(self, object_name: str) -> int:
        """Number of samples stored for ``object_name`` (0 if unknown)."""
        return sum(
            len(block[0]) for block in self._blocks.get(object_name, ())
        ) + len(self._pending.get(object_name, ()))

    def schedule(self, object_name: str) -> np.ndarray:
        """Sorted sample timestamps of one object."""
        return self._merged(object_name)[0]

    def rates_matrix(self, object_names: Sequence[str]) -> np.ndarray:
        """Dense ``(K, num_objects)`` rate array in the given object order.

        Rows are ordered by timestamp; all requested objects must have been
        sampled on the *same* schedule (identical timestamp sets, no
        duplicates), which is what one collector run produces.  Mismatched
        or ambiguous schedules raise instead of silently misaligning rows.
        """
        reference: Optional[np.ndarray] = None
        columns = []
        for name in object_names:
            timestamps, rates = self._merged(name)
            if len(np.unique(timestamps)) != len(timestamps):
                raise MeasurementError(
                    f"object {name!r} has duplicate sample timestamps"
                )
            if reference is None:
                reference = timestamps
            elif timestamps.shape != reference.shape or not np.array_equal(
                timestamps, reference
            ):
                raise MeasurementError(
                    f"object {name!r} was sampled on a different schedule "
                    "than the other requested objects"
                )
            columns.append(rates)
        return np.array(columns, dtype=float).T


class DistributedCollector:
    """A set of regional pollers feeding one central archive.

    Parameters
    ----------
    routing:
        Routing matrix of the measured network; its pair and link orderings
        define the LSP and link objects to poll.
    num_pollers:
        Number of regional pollers to spread the objects over.
    interval_seconds, jitter_std_seconds, loss_probability:
        Forwarded to each :class:`~repro.measurement.snmp.SNMPPoller`.
    seed:
        Base seed; each poller gets a distinct derived seed.
    max_interpolated_fraction:
        Forwarded to :func:`~repro.measurement.snmp.rates_from_poll_matrix`:
        raise when more than this fraction of a poller's samples had to be
        interpolated (the default ``1.0`` never raises).
    counter_bits:
        Counter width forwarded to every poller (64 for Counter64, 32 for
        legacy Counter32).
    fault_plan:
        Optional seeded fault plan (duck-typed; see
        :class:`repro.resilience.FaultPlan`).  Each poller receives the
        plan resolved for its own index (``plan.for_poller(idx)``) with its
        index as fault salt, so collector outages hit the right poller and
        probabilistic faults draw reproducible per-poller streams.
    archive_max_samples:
        Optional per-object ring-buffer bound forwarded to the central
        :class:`MeasurementArchive` (see its ``max_samples``); ``None``
        keeps the archive unbounded.
    """

    def __init__(
        self,
        routing: RoutingMatrix,
        num_pollers: int = 3,
        interval_seconds: float = 300.0,
        jitter_std_seconds: float = 2.0,
        loss_probability: float = 0.0,
        seed: Optional[int] = None,
        max_interpolated_fraction: float = 1.0,
        counter_bits: int = 64,
        fault_plan: Optional[object] = None,
        archive_max_samples: Optional[int] = None,
    ) -> None:
        if num_pollers < 1:
            raise MeasurementError("need at least one poller")
        self.routing = routing
        self.archive = MeasurementArchive(max_samples=archive_max_samples)
        self.interval_seconds = float(interval_seconds)
        self.max_interpolated_fraction = float(max_interpolated_fraction)
        #: Per-poller sample accounting of the most recent :meth:`collect` run.
        self.poll_diagnostics: tuple[RateDiagnostics, ...] = ()

        lsp_names = [f"lsp:{pair.origin}->{pair.destination}" for pair in routing.pairs]
        link_names = list(routing.link_names)
        self._lsp_names = tuple(lsp_names)
        self._link_names = tuple(link_names)
        all_objects = lsp_names + link_names

        # Round-robin assignment of objects to pollers approximates the
        # paper's geographic split while keeping per-poller load balanced.
        # Each poller remembers which columns of the full (K, objects) rate
        # matrix it owns, so collection is pure array slicing.
        assignments = [
            np.arange(start, len(all_objects), num_pollers)
            for start in range(num_pollers)
        ]
        base_seed = seed if seed is not None else 0
        self.pollers: list[SNMPPoller] = []
        self._assigned_columns: list[np.ndarray] = []
        for poller_idx, columns in enumerate(assignments):
            if not len(columns):
                continue
            poller_plan = (
                fault_plan.for_poller(poller_idx)
                if fault_plan is not None and hasattr(fault_plan, "for_poller")
                else fault_plan
            )
            self.pollers.append(
                SNMPPoller(
                    object_names=[all_objects[col] for col in columns],
                    interval_seconds=interval_seconds,
                    jitter_std_seconds=jitter_std_seconds,
                    loss_probability=loss_probability,
                    seed=base_seed + poller_idx,
                    counter_bits=counter_bits,
                    fault_plan=poller_plan,
                    fault_salt=poller_idx,
                )
            )
            self._assigned_columns.append(columns)

    # ------------------------------------------------------------------
    def _object_rate_matrix(self, series: TrafficMatrixSeries) -> np.ndarray:
        """True per-object rates for the whole series: ``(K, lsps + links)``.

        LSPs carry the demands themselves; links carry ``R s`` — both
        evaluated for all snapshots with one matrix product.
        """
        demands = series.as_array()  # (K, P)
        loads = self.routing.matmat(demands.T).T  # (K, L)
        return np.hstack([demands, loads])

    def collect(
        self, series: TrafficMatrixSeries, start_time: Optional[float] = None
    ) -> MeasurementArchive:
        """Run the full collection pipeline over a traffic series.

        Every poller drives its counters with the true rates of each
        interval, polls on the shared schedule, and the derived
        interval-adjusted rates are stored in the central archive, stamped
        with the poll time at the *end* of each interval (the rate of
        interval ``k`` only exists once poll ``k + 1`` has answered).

        ``start_time`` defaults to the series' own start time, so measured
        timestamps line up with the driving series without any bookkeeping
        by the caller.

        Returns the archive (also available as :attr:`archive`).
        """
        if series.pairs != self.routing.pairs:
            raise MeasurementError("series pair ordering does not match the routing matrix")
        if not np.isclose(series.interval_seconds, self.interval_seconds):
            raise MeasurementError(
                f"series interval ({series.interval_seconds} s) does not match "
                f"the polling interval ({self.interval_seconds} s)"
            )
        if start_time is None:
            start_time = series.start_time_seconds
        start_time = float(start_time)
        rate_matrix = self._object_rate_matrix(series)
        # Interval k's rate is derived at the poll closing the interval.
        timestamps = start_time + self.interval_seconds * np.arange(1, len(series) + 1)
        diagnostics = []
        for poller, columns in zip(self.pollers, self._assigned_columns):
            polls = poller.run_schedule_matrix(
                rate_matrix[:, columns], start_time=start_time
            )
            rates, poller_diagnostics = rates_from_poll_matrix(
                polls, max_interpolated_fraction=self.max_interpolated_fraction
            )
            diagnostics.append(poller_diagnostics)
            self.archive.record_block(poller.object_names, timestamps, rates)
        self.poll_diagnostics = tuple(diagnostics)
        return self.archive

    def poll_matrices(
        self, series: TrafficMatrixSeries, start_time: Optional[float] = None
    ) -> list[PollMatrix]:
        """Run every poller's schedule and return the *raw* poll matrices.

        This is the streaming layer's entry point: instead of deriving
        rates and filling the archive in one batch (:meth:`collect`), the
        caller receives each poller's ``(rounds, objects)``
        :class:`~repro.measurement.snmp.PollMatrix` — faults applied — and
        consumes the rounds one at a time (see
        :class:`repro.streaming.PollStream`).  Counter state advances
        exactly as in :meth:`collect`, so a collector is used for one mode
        or the other, not both over the same series.
        """
        if series.pairs != self.routing.pairs:
            raise MeasurementError("series pair ordering does not match the routing matrix")
        if not np.isclose(series.interval_seconds, self.interval_seconds):
            raise MeasurementError(
                f"series interval ({series.interval_seconds} s) does not match "
                f"the polling interval ({self.interval_seconds} s)"
            )
        if start_time is None:
            start_time = series.start_time_seconds
        start_time = float(start_time)
        rate_matrix = self._object_rate_matrix(series)
        return [
            poller.run_schedule_matrix(rate_matrix[:, columns], start_time=start_time)
            for poller, columns in zip(self.pollers, self._assigned_columns)
        ]

    @property
    def lsp_object_names(self) -> tuple[str, ...]:
        """Archive object names of the LSP counters, in pair order."""
        return self._lsp_names

    @property
    def link_object_names(self) -> tuple[str, ...]:
        """Archive object names of the link counters, in link order."""
        return self._link_names

    def collection_diagnostics(self) -> RateDiagnostics:
        """Sample accounting of the last :meth:`collect`, merged over pollers."""
        if not self.poll_diagnostics:
            raise MeasurementError("no collection has run yet")
        merged = self.poll_diagnostics[0]
        for diagnostics in self.poll_diagnostics[1:]:
            merged = merged.merged(diagnostics)
        return merged

    # ------------------------------------------------------------------
    def measured_traffic_series(self) -> TrafficMatrixSeries:
        """Reconstruct the measured traffic-matrix series from LSP counters.

        This is the paper's headline capability: because every demand is an
        LSP with its own counter, the collected archive *is* a complete
        traffic matrix per interval.  Snapshot ``k`` is stamped with the
        *start* of its interval (archive timestamps are interval ends), so
        the returned series carries the same timestamps as the driving
        series.
        """
        rates = self.archive.rates_matrix(self._lsp_names)
        snapshots = [
            TrafficMatrix(self.routing.pairs, np.maximum(rates[k], 0.0))
            for k in range(rates.shape[0])
        ]
        first_poll = float(self.archive.schedule(self._lsp_names[0])[0])
        return TrafficMatrixSeries(
            snapshots,
            interval_seconds=self.interval_seconds,
            start_time_seconds=first_poll - self.interval_seconds,
        )

    def measured_link_loads(self) -> np.ndarray:
        """Measured link-load series of shape ``(K, L)`` from link counters."""
        return self.archive.rates_matrix(self._link_names)
