"""Measurement substrate: link loads, SNMP polling, collection, NetFlow emulation.

* :mod:`~repro.measurement.linkloads` — the consistent ``t = R s`` link-load
  computation the paper's evaluation data set is built on, plus optional
  measurement-noise models;
* :mod:`~repro.measurement.snmp` — per-object counter simulation with polling
  jitter, interval-length rate adjustment and UDP loss;
* :mod:`~repro.measurement.collector` — distributed pollers feeding a central
  archive, reconstructing the measured LSP traffic matrix and link loads;
* :mod:`~repro.measurement.netflow` — NetFlow-style flow aggregation used to
  demonstrate why flow-averaged data loses within-flow variance.
"""

from repro.measurement.collector import DistributedCollector, MeasurementArchive
from repro.measurement.linkloads import (
    GaussianNoiseModel,
    LinkLoadObservation,
    NoiselessModel,
    link_load_series,
    link_loads_from_matrix,
)
from repro.measurement.netflow import (
    FlowRecord,
    NetFlowAggregator,
    flows_from_series,
    netflow_smoothed_series,
)
from repro.measurement.snmp import (
    CounterState,
    PollMatrix,
    PollResult,
    RateDiagnostics,
    SNMPPoller,
    rates_from_poll_matrix,
    rates_from_polls,
)

__all__ = [
    "LinkLoadObservation",
    "link_loads_from_matrix",
    "link_load_series",
    "NoiselessModel",
    "GaussianNoiseModel",
    "CounterState",
    "PollResult",
    "PollMatrix",
    "RateDiagnostics",
    "SNMPPoller",
    "rates_from_polls",
    "rates_from_poll_matrix",
    "MeasurementArchive",
    "DistributedCollector",
    "FlowRecord",
    "flows_from_series",
    "NetFlowAggregator",
    "netflow_smoothed_series",
]
