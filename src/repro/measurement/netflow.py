"""NetFlow-style flow aggregation (the measurement method the paper improves on).

Previous studies validated traffic-matrix estimation against demands derived
from NetFlow traces.  NetFlow exports, for each flow, its start time, end
time and byte count; the collector then spreads the bytes *uniformly* over
the flow's lifetime.  As the paper points out (Section 5), this destroys the
within-flow rate variability, which matters when validating methods (Vardi,
Cao) that rely on the variance of 5-minute samples.

This module reproduces that pipeline so the effect can be demonstrated:

* :class:`FlowRecord` — one exported flow;
* :func:`flows_from_series` — decompose a demand time series into synthetic
  flow records (each demand becomes a set of overlapping flows whose summed
  rate matches the series);
* :class:`NetFlowAggregator` — rebuild per-interval demand estimates from
  flow records using the uniform-rate assumption;
* :func:`netflow_smoothed_series` — end-to-end helper returning the
  variance-smoothed series that a NetFlow-based study would have used.

The ablation benchmark ``bench_ablation_netflow`` uses this module to show
that the per-demand variances of the NetFlow-derived series are biased low
relative to the directly measured series, which is the paper's argument for
using direct LSP measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import MeasurementError
from repro.topology.elements import NodePair
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = [
    "FlowRecord",
    "flows_from_series",
    "NetFlowAggregator",
    "netflow_smoothed_series",
]


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow record.

    Attributes
    ----------
    pair:
        Origin-destination pair the flow belongs to.
    start_time, end_time:
        Flow lifetime in seconds; ``end_time`` must be strictly greater.
    total_bytes:
        Bytes transferred during the lifetime.
    """

    pair: NodePair
    start_time: float
    end_time: float
    total_bytes: float

    def __post_init__(self) -> None:
        if self.end_time <= self.start_time:
            raise MeasurementError("flow end_time must be after start_time")
        if self.total_bytes < 0:
            raise MeasurementError("flow byte count must be non-negative")

    @property
    def duration(self) -> float:
        """Flow lifetime in seconds."""
        return self.end_time - self.start_time

    @property
    def average_rate_mbps(self) -> float:
        """The uniform rate the NetFlow collector assumes for the whole lifetime."""
        return self.total_bytes * 8.0 / 1e6 / self.duration

    def bytes_in_window(self, window_start: float, window_end: float) -> float:
        """Bytes attributed to ``[window_start, window_end)`` under the uniform assumption."""
        overlap = min(self.end_time, window_end) - max(self.start_time, window_start)
        if overlap <= 0:
            return 0.0
        return self.total_bytes * overlap / self.duration


def flows_from_series(
    series: TrafficMatrixSeries,
    mean_flow_duration_seconds: float = 1800.0,
    seed: Optional[int] = None,
) -> list[FlowRecord]:
    """Decompose a demand series into synthetic long-lived flow records.

    Each demand's traffic over the series is carried by flows whose
    lifetimes are exponential with the given mean and which together account
    for exactly the demand's byte volume.  Longer flows mean more smoothing
    when the records are aggregated back, which is the effect under study.
    """
    if mean_flow_duration_seconds <= 0:
        raise MeasurementError("mean_flow_duration_seconds must be positive")
    rng = np.random.default_rng(seed)
    interval = series.interval_seconds
    start = series.start_time_seconds
    horizon = start + interval * len(series)
    array = series.as_array()
    flows: list[FlowRecord] = []
    for pair_idx, pair in enumerate(series.pairs):
        volume_bytes = float(array[:, pair_idx].sum()) * interval * 1e6 / 8.0
        if volume_bytes <= 0:
            continue
        # Cover the observation window with flows of random lifetimes; each
        # flow gets the bytes the true process produced during its lifetime.
        cursor = start
        while cursor < horizon:
            duration = float(rng.exponential(mean_flow_duration_seconds))
            duration = max(duration, interval / 10.0)
            end = min(cursor + duration, horizon)
            first = int((cursor - start) // interval)
            last = int(np.ceil((end - start) / interval))
            flow_bytes = 0.0
            for k in range(first, min(last, len(series))):
                window_start = start + k * interval
                window_end = window_start + interval
                overlap = min(end, window_end) - max(cursor, window_start)
                if overlap > 0:
                    flow_bytes += float(array[k, pair_idx]) * 1e6 / 8.0 * overlap
            flows.append(
                FlowRecord(pair=pair, start_time=cursor, end_time=end, total_bytes=flow_bytes)
            )
            cursor = end
    return flows


class NetFlowAggregator:
    """Rebuild per-interval demands from flow records (uniform-rate assumption).

    Parameters
    ----------
    pairs:
        The pair ordering of the output matrices.
    interval_seconds:
        Aggregation interval (300 s to match the rest of the pipeline).
    """

    def __init__(self, pairs: Sequence[NodePair], interval_seconds: float = 300.0) -> None:
        if interval_seconds <= 0:
            raise MeasurementError("interval_seconds must be positive")
        self.pairs = tuple(pairs)
        self.interval_seconds = float(interval_seconds)
        self._pair_index = {pair: idx for idx, pair in enumerate(self.pairs)}

    def aggregate(
        self,
        flows: Sequence[FlowRecord],
        start_time: float,
        num_intervals: int,
    ) -> TrafficMatrixSeries:
        """Aggregate flow records into a traffic-matrix series.

        Bytes of each flow are spread uniformly over its lifetime and binned
        into the requested intervals, exactly as a NetFlow collector would.
        """
        if num_intervals <= 0:
            raise MeasurementError("num_intervals must be positive")
        volumes = np.zeros((num_intervals, len(self.pairs)))
        for flow in flows:
            if flow.pair not in self._pair_index:
                raise MeasurementError(f"flow references unknown pair {flow.pair}")
            col = self._pair_index[flow.pair]
            for k in range(num_intervals):
                window_start = start_time + k * self.interval_seconds
                window_end = window_start + self.interval_seconds
                volumes[k, col] += flow.bytes_in_window(window_start, window_end)
        rates = volumes * 8.0 / 1e6 / self.interval_seconds
        snapshots = [TrafficMatrix(self.pairs, rates[k]) for k in range(num_intervals)]
        return TrafficMatrixSeries(
            snapshots, interval_seconds=self.interval_seconds, start_time_seconds=start_time
        )


def netflow_smoothed_series(
    series: TrafficMatrixSeries,
    mean_flow_duration_seconds: float = 1800.0,
    seed: Optional[int] = None,
) -> TrafficMatrixSeries:
    """End-to-end NetFlow emulation: true series -> flow export -> re-aggregation.

    The result has (approximately) the same per-demand means as the input
    but smaller per-demand variances, because within-flow variability has
    been averaged away — the paper's argument for direct LSP measurement.
    """
    flows = flows_from_series(series, mean_flow_duration_seconds, seed=seed)
    aggregator = NetFlowAggregator(series.pairs, interval_seconds=series.interval_seconds)
    return aggregator.aggregate(flows, series.start_time_seconds, len(series))
