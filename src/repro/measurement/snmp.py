"""SNMP polling simulation.

Section 5.1.2 of the paper describes the collection infrastructure: SNMP
counters for every link and LSP are polled every five minutes at fixed
timestamps; because SNMP runs over unreliable UDP some samples are lost, the
exact response time of each router varies slightly, and the reported byte
counts are converted to rates using the *actual* measurement interval (e.g.
"5 minutes and 3 seconds") so that the time series stays uniform.

This module models that pipeline for a single poller:

* :class:`CounterState` — a monotonically increasing 64-bit byte counter for
  one measured object (link or LSP), advanced by the true traffic process;
* :class:`SNMPPoller` — polls a set of counters on a fixed schedule with
  per-poll jitter and optional UDP loss.  The counters are stored as one
  ``uint64`` array and advanced/polled with array operations, so a poller
  tracking hundreds of objects over a day of five-minute intervals costs a
  handful of NumPy calls instead of a Python loop per (object, round);
* :class:`PollMatrix` — the dense ``(rounds, objects)`` outcome of a polling
  schedule (response times, counter values, loss mask), convertible to and
  from per-round :class:`PollResult` lists;
* :func:`rates_from_polls` / :func:`rates_from_poll_matrix` — turn
  consecutive poll rounds into the rate samples the estimation pipeline
  consumes, interpolating over lost polls and reporting
  :class:`RateDiagnostics` (how many samples were lost to UDP, degenerate
  because no time elapsed between responses, or filled by interpolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import MeasurementError

__all__ = [
    "CounterState",
    "PollResult",
    "PollMatrix",
    "RateDiagnostics",
    "SNMPPoller",
    "rates_from_polls",
    "rates_from_poll_matrix",
]

_COUNTER64_WRAP = 2**64
#: Bytes accumulated per second at 1 Mbit/s.
_BYTES_PER_MBPS_SECOND = 1e6 / 8.0


@dataclass
class CounterState:
    """A monotonically increasing byte counter for one measured object.

    Parameters
    ----------
    name:
        Object identifier (a link or LSP name).
    value_bytes:
        Current counter value; wraps modulo 2**64 like a Counter64 MIB object.
    """

    name: str
    value_bytes: int = 0

    def advance(self, rate_mbps: float, duration_seconds: float) -> None:
        """Advance the counter by ``rate_mbps`` sustained for ``duration_seconds``."""
        if rate_mbps < 0:
            raise MeasurementError(f"counter {self.name!r} advanced with negative rate")
        if duration_seconds < 0:
            raise MeasurementError("duration must be non-negative")
        added_bytes = int(round(rate_mbps * _BYTES_PER_MBPS_SECOND * duration_seconds))
        self.value_bytes = (self.value_bytes + added_bytes) % _COUNTER64_WRAP


class _CounterView:
    """:class:`CounterState`-compatible live view into a poller's counter array."""

    __slots__ = ("name", "_values", "_column")

    def __init__(self, name: str, values: np.ndarray, column: int) -> None:
        self.name = name
        self._values = values
        self._column = column

    @property
    def value_bytes(self) -> int:
        return int(self._values[self._column])

    @value_bytes.setter
    def value_bytes(self, value: int) -> None:
        self._values[self._column] = np.uint64(value % _COUNTER64_WRAP)

    def advance(self, rate_mbps: float, duration_seconds: float) -> None:
        """Advance the counter by ``rate_mbps`` sustained for ``duration_seconds``."""
        if rate_mbps < 0:
            raise MeasurementError(f"counter {self.name!r} advanced with negative rate")
        if duration_seconds < 0:
            raise MeasurementError("duration must be non-negative")
        added = int(round(rate_mbps * _BYTES_PER_MBPS_SECOND * duration_seconds))
        self.value_bytes = self.value_bytes + added

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterState(name={self.name!r}, value_bytes={self.value_bytes})"


@dataclass(frozen=True)
class PollResult:
    """Outcome of polling one object at one scheduled timestamp.

    Attributes
    ----------
    object_name:
        The polled link/LSP.
    scheduled_time:
        Nominal poll timestamp (e.g. 09:05:00) in seconds.
    response_time:
        Actual response time including jitter, in seconds.
    counter_bytes:
        The counter value read, or ``None`` when the poll was lost (UDP).
    """

    object_name: str
    scheduled_time: float
    response_time: float
    counter_bytes: Optional[int]

    @property
    def lost(self) -> bool:
        """Whether this poll produced no data."""
        return self.counter_bytes is None


@dataclass(frozen=True)
class PollMatrix:
    """Dense outcome of a polling schedule: ``(rounds, objects)`` arrays.

    Attributes
    ----------
    object_names:
        Column labels.
    scheduled_times:
        Nominal poll timestamps, shape ``(rounds,)``.
    response_times:
        Actual (jittered) response times, shape ``(rounds, objects)``.
    counters:
        Counter values read, shape ``(rounds, objects)``, ``uint64``; entries
        where ``lost`` is true are undefined (stored as zero).
    lost:
        Boolean UDP-loss mask, shape ``(rounds, objects)``.
    counter_bits:
        Width of the underlying MIB counters (64 for Counter64, 32 for the
        legacy ifInOctets Counter32).  Rate derivation wraps deltas modulo
        ``2**counter_bits``.
    """

    object_names: tuple[str, ...]
    scheduled_times: np.ndarray
    response_times: np.ndarray
    counters: np.ndarray
    lost: np.ndarray
    counter_bits: int = 64

    def __post_init__(self) -> None:
        rounds = len(self.scheduled_times)
        shape = (rounds, len(self.object_names))
        for attribute in ("response_times", "counters", "lost"):
            if getattr(self, attribute).shape != shape:
                raise MeasurementError(
                    f"poll matrix field {attribute} has shape "
                    f"{getattr(self, attribute).shape}, expected {shape}"
                )
        if not 1 <= self.counter_bits <= 64:
            raise MeasurementError(
                f"counter_bits must lie in [1, 64], got {self.counter_bits}"
            )

    @property
    def num_rounds(self) -> int:
        """Number of poll rounds (intervals + 1)."""
        return len(self.scheduled_times)

    @property
    def num_objects(self) -> int:
        """Number of polled objects."""
        return len(self.object_names)

    @classmethod
    def from_rounds(
        cls,
        poll_rounds: Sequence[Sequence[PollResult]],
        object_names: Sequence[str],
        counter_bits: int = 64,
    ) -> "PollMatrix":
        """Assemble a matrix from per-round :class:`PollResult` lists.

        Every round must contain a result for every requested object.
        """
        names = tuple(object_names)
        rounds = len(poll_rounds)
        scheduled = np.empty(rounds)
        response = np.empty((rounds, len(names)))
        counters = np.zeros((rounds, len(names)), dtype=np.uint64)
        lost = np.zeros((rounds, len(names)), dtype=bool)
        for row, round_results in enumerate(poll_rounds):
            indexed = {result.object_name: result for result in round_results}
            missing = set(names) - set(indexed)
            if missing:
                raise MeasurementError(f"poll round missing objects: {sorted(missing)}")
            scheduled[row] = indexed[names[0]].scheduled_time if names else 0.0
            for col, name in enumerate(names):
                result = indexed[name]
                response[row, col] = result.response_time
                if result.lost:
                    lost[row, col] = True
                else:
                    counters[row, col] = np.uint64(result.counter_bytes % (2**counter_bits))
        return cls(
            object_names=names,
            scheduled_times=scheduled,
            response_times=response,
            counters=counters,
            lost=lost,
            counter_bits=counter_bits,
        )

    def round_results(self, index: int) -> list[PollResult]:
        """Round ``index`` as a list of :class:`PollResult` (compatibility view)."""
        if not 0 <= index < self.num_rounds:
            raise MeasurementError(
                f"round index {index} out of range for {self.num_rounds} rounds"
            )
        return [
            PollResult(
                object_name=name,
                scheduled_time=float(self.scheduled_times[index]),
                response_time=float(self.response_times[index, col]),
                counter_bytes=None if self.lost[index, col] else int(self.counters[index, col]),
            )
            for col, name in enumerate(self.object_names)
        ]

    def to_rounds(self) -> list[list[PollResult]]:
        """The whole schedule as per-round :class:`PollResult` lists."""
        return [self.round_results(index) for index in range(self.num_rounds)]


@dataclass(frozen=True)
class RateDiagnostics:
    """Sample accounting of one poll-rounds → rates conversion.

    Attributes
    ----------
    num_intervals:
        Number of measurement intervals (poll rounds minus one).
    num_objects:
        Number of measured objects.
    lost_samples:
        ``(interval, object)`` samples unusable because at least one of the
        two bounding polls was lost to UDP.
    degenerate_samples:
        Samples where both polls answered but no time elapsed between the
        responses (``elapsed <= 0``), so no rate can be derived.
    interpolated_samples:
        Samples filled by interpolation from neighbouring valid samples
        (every lost, degenerate or reset-invalidated sample is filled, so
        this equals their sum).
    reset_samples:
        Samples discarded because the counter went backwards by more than
        half the counter space — a device reset/reboot rather than a wrap.
    wrap_samples:
        Samples where the counter went backwards by *less* than half the
        counter space: a legitimate modulo-``2**counter_bits`` wrap whose
        delta was recovered (these samples stay valid).
    validity:
        Optional boolean ``(num_intervals, num_objects)`` mask: ``True``
        where the rate was derived from two good polls, ``False`` where it
        was filled by interpolation (lost / degenerate / reset samples).
        Callers that must not consume fabricated data — the streaming
        estimator, quality gates — read this instead of re-deriving the
        loss pattern from the poll matrix.  Excluded from equality
        comparisons so diagnostics records stay cheaply comparable.
    """

    num_intervals: int
    num_objects: int
    lost_samples: int
    degenerate_samples: int
    interpolated_samples: int
    reset_samples: int = 0
    wrap_samples: int = 0
    validity: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    @property
    def total_samples(self) -> int:
        """Total number of ``(interval, object)`` samples."""
        return self.num_intervals * self.num_objects

    @property
    def interpolated_fraction(self) -> float:
        """Fraction of samples that had to be interpolated."""
        if self.total_samples == 0:
            return 0.0
        return self.interpolated_samples / self.total_samples

    def merged(self, other: "RateDiagnostics") -> "RateDiagnostics":
        """Combine the accounting of two conversions (e.g. of two pollers)."""
        if self.num_intervals != other.num_intervals:
            raise MeasurementError("cannot merge diagnostics over different interval counts")
        validity = None
        if self.validity is not None and other.validity is not None:
            validity = np.hstack([self.validity, other.validity])
        return RateDiagnostics(
            num_intervals=self.num_intervals,
            num_objects=self.num_objects + other.num_objects,
            lost_samples=self.lost_samples + other.lost_samples,
            degenerate_samples=self.degenerate_samples + other.degenerate_samples,
            interpolated_samples=self.interpolated_samples + other.interpolated_samples,
            reset_samples=self.reset_samples + other.reset_samples,
            wrap_samples=self.wrap_samples + other.wrap_samples,
            validity=validity,
        )


class SNMPPoller:
    """Simulates one SNMP poller and its polling schedule.

    Counters are held as a single ``uint64`` array (one entry per object) so
    that advancing and polling the whole object set are array operations;
    :meth:`counter` exposes a per-object view for tests and advanced use.

    Parameters
    ----------
    object_names:
        Names of the measured objects (links or LSPs).
    interval_seconds:
        Nominal polling interval (the paper uses 300 s).
    jitter_std_seconds:
        Standard deviation of the response-time jitter around the scheduled
        timestamp.
    loss_probability:
        Probability that an individual poll is lost (SNMP over UDP).
    seed:
        Seed of the internal random generator.
    counter_bits:
        Width of the simulated MIB counters: 64 (Counter64, the default) or
        32 (legacy Counter32 / ifInOctets), which wraps every 2**32 bytes.
    fault_plan:
        Optional seeded fault plan (duck-typed; see
        :class:`repro.resilience.FaultPlan`).  Applied to every poll matrix
        this poller produces, after the clean schedule ran.
    fault_salt:
        Salt mixed into the fault plan's generator so several pollers under
        one plan draw distinct, reproducible fault streams.
    """

    def __init__(
        self,
        object_names: Sequence[str],
        interval_seconds: float = 300.0,
        jitter_std_seconds: float = 2.0,
        loss_probability: float = 0.0,
        seed: Optional[int] = None,
        counter_bits: int = 64,
        fault_plan: Optional[object] = None,
        fault_salt: int = 0,
    ) -> None:
        if not object_names:
            raise MeasurementError("poller needs at least one object to poll")
        if len(set(object_names)) != len(object_names):
            raise MeasurementError("duplicate object names")
        if interval_seconds <= 0:
            raise MeasurementError("interval_seconds must be positive")
        if jitter_std_seconds < 0:
            raise MeasurementError("jitter_std_seconds must be non-negative")
        if not 0 <= loss_probability < 1:
            raise MeasurementError("loss_probability must lie in [0, 1)")
        if counter_bits not in (32, 64):
            raise MeasurementError("counter_bits must be 32 or 64")
        self.object_names = tuple(object_names)
        self.interval_seconds = float(interval_seconds)
        self.jitter_std_seconds = float(jitter_std_seconds)
        self.loss_probability = float(loss_probability)
        self.counter_bits = int(counter_bits)
        self.fault_plan = fault_plan
        self.fault_salt = int(fault_salt)
        self._rng = np.random.default_rng(seed)
        self._values = np.zeros(len(self.object_names), dtype=np.uint64)
        self._column = {name: col for col, name in enumerate(self.object_names)}

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """Number of objects this poller tracks."""
        return len(self.object_names)

    def counter(self, name: str) -> _CounterView:
        """A live counter view of ``name`` (for tests and advanced use)."""
        try:
            return _CounterView(name, self._values, self._column[name])
        except KeyError as exc:
            raise MeasurementError(f"poller does not track object {name!r}") from exc

    def counter_values(self) -> np.ndarray:
        """Current counter values as a ``uint64`` array in object order."""
        return self._values.copy()

    def _rates_array(
        self, rates_mbps: Union[Mapping[str, float], np.ndarray, Sequence[float]]
    ) -> np.ndarray:
        if isinstance(rates_mbps, Mapping):
            rates = np.array(
                [float(rates_mbps.get(name, 0.0)) for name in self.object_names]
            )
        else:
            rates = np.asarray(rates_mbps, dtype=float)
            if rates.shape != (self.num_objects,):
                raise MeasurementError(
                    f"rate vector has shape {rates.shape}, "
                    f"expected ({self.num_objects},)"
                )
        if np.any(rates < 0):
            raise MeasurementError("counters cannot be advanced with negative rates")
        return rates

    def advance_counters(
        self,
        rates_mbps: Union[Mapping[str, float], np.ndarray, Sequence[float]],
        duration_seconds: float,
    ) -> None:
        """Advance every tracked counter with the given sustained rates.

        ``rates_mbps`` may be a ``name -> rate`` mapping (missing names count
        as zero) or an array aligned with :attr:`object_names`.
        """
        if duration_seconds < 0:
            raise MeasurementError("duration must be non-negative")
        rates = self._rates_array(rates_mbps)
        added = np.rint(rates * (_BYTES_PER_MBPS_SECOND * duration_seconds))
        self._values = self._values + added.astype(np.uint64)
        if self.counter_bits < 64:
            self._values %= np.uint64(2**self.counter_bits)

    def _poll_arrays(self, scheduled_time: float) -> tuple[np.ndarray, np.ndarray]:
        """One poll round: jittered response times and the loss mask."""
        jitter = np.abs(self._rng.normal(scale=self.jitter_std_seconds, size=self.num_objects))
        lost = self._rng.random(self.num_objects) < self.loss_probability
        return scheduled_time + jitter, lost

    def poll(self, scheduled_time: float) -> list[PollResult]:
        """Poll every object once at ``scheduled_time``.

        Returns one :class:`PollResult` per object; lost polls have
        ``counter_bytes = None``.
        """
        response_times, lost = self._poll_arrays(scheduled_time)
        return [
            PollResult(
                object_name=name,
                scheduled_time=scheduled_time,
                response_time=float(response_times[col]),
                counter_bytes=None if lost[col] else int(self._values[col]),
            )
            for col, name in enumerate(self.object_names)
        ]

    def run_schedule_matrix(
        self,
        rate_matrix_mbps: np.ndarray,
        start_time: float = 0.0,
    ) -> PollMatrix:
        """Drive the counters with a rate matrix and poll after every interval.

        ``rate_matrix_mbps`` has shape ``(K, num_objects)``: the sustained
        per-object rates during each of the ``K`` intervals, columns aligned
        with :attr:`object_names`.  Counter trajectories are one cumulative
        sum and each round's jitter/loss one vectorised draw, so the whole
        schedule is O(K) NumPy calls instead of O(K * objects) Python steps.
        The random stream is drawn in the same order as repeated
        :meth:`poll` calls, so this is a faster path, not a different model.

        Returns a :class:`PollMatrix` with ``K + 1`` rounds, *including* an
        initial poll at ``start_time`` so that rates can be derived from
        consecutive counter differences.
        """
        rates = np.asarray(rate_matrix_mbps, dtype=float)
        if rates.ndim != 2 or rates.shape[1] != self.num_objects:
            raise MeasurementError(
                f"rate matrix has shape {rates.shape}, "
                f"expected (K, {self.num_objects})"
            )
        if np.any(rates < 0):
            raise MeasurementError("counters cannot be advanced with negative rates")
        num_intervals = rates.shape[0]

        added = np.rint(rates * (_BYTES_PER_MBPS_SECOND * self.interval_seconds))
        counters = np.empty((num_intervals + 1, self.num_objects), dtype=np.uint64)
        counters[0] = self._values
        counters[1:] = self._values + np.cumsum(added.astype(np.uint64), axis=0)
        if self.counter_bits < 64:
            counters %= np.uint64(2**self.counter_bits)
        self._values = counters[-1].copy()

        scheduled = start_time + self.interval_seconds * np.arange(num_intervals + 1)
        response = np.empty((num_intervals + 1, self.num_objects))
        lost = np.empty((num_intervals + 1, self.num_objects), dtype=bool)
        for row in range(num_intervals + 1):
            response[row], lost[row] = self._poll_arrays(float(scheduled[row]))
        polls = PollMatrix(
            object_names=self.object_names,
            scheduled_times=scheduled,
            response_times=response,
            counters=counters,
            lost=lost,
            counter_bits=self.counter_bits,
        )
        if self.fault_plan is not None:
            polls = self.fault_plan.apply_to_polls(polls, salt=self.fault_salt)
        return polls

    def run_schedule(
        self,
        rate_series_mbps: Union[Sequence[Mapping[str, float]], np.ndarray],
        start_time: float = 0.0,
    ) -> list[list[PollResult]]:
        """Drive the counters with a rate series and poll after every interval.

        ``rate_series_mbps[k]`` is the sustained per-object rate during the
        ``k``-th interval (a mapping per interval, or a ``(K, objects)``
        array).  The returned list has one poll round per interval boundary,
        *including* an initial poll at ``start_time``.  This is the
        compatibility view of :meth:`run_schedule_matrix`; both consume the
        random stream identically.
        """
        if isinstance(rate_series_mbps, np.ndarray):
            rate_matrix = rate_series_mbps
        else:
            rate_matrix = np.array(
                [self._rates_array(rates) for rates in rate_series_mbps]
            ).reshape(len(rate_series_mbps), self.num_objects)
        return self.run_schedule_matrix(rate_matrix, start_time=start_time).to_rounds()


def rates_from_poll_matrix(
    polls: PollMatrix,
    max_interpolated_fraction: float = 1.0,
) -> tuple[np.ndarray, RateDiagnostics]:
    """Convert a :class:`PollMatrix` into interval rates plus diagnostics.

    The rate of object ``o`` during interval ``k`` is the counter difference
    between round ``k+1`` and round ``k`` divided by the *actual* elapsed
    time between the two responses — the interval-length adjustment the
    paper describes.  Samples where either poll was lost (UDP) or where no
    time elapsed between the responses (degenerate jitter) are linearly
    interpolated from the nearest valid samples of the same object (constant
    extrapolation at the boundaries), and both kinds are counted separately
    in the returned :class:`RateDiagnostics`.

    Counter deltas are wrap-aware: a counter that goes *backwards* between
    two valid polls either wrapped modulo ``2**polls.counter_bits`` (the
    modular delta stays below half the counter space — kept as a valid
    sample, counted in ``wrap_samples``) or was reset by a device reboot
    (the modular delta exceeds half the counter space, which no plausible
    rate produces in one interval — the sample is invalidated, counted in
    ``reset_samples`` and interpolated like a lost poll).

    Parameters
    ----------
    polls:
        The ``(K + 1, objects)`` poll outcome.
    max_interpolated_fraction:
        Raise :class:`~repro.errors.MeasurementError` when the fraction of
        interpolated samples exceeds this threshold (the default ``1.0``
        never raises); archives built from heavily interpolated data are not
        measurements any more.

    Returns ``(rates, diagnostics)`` with ``rates`` of shape
    ``(K, num_objects)``; ``diagnostics.validity`` carries the per-sample
    boolean mask (``False`` where the returned rate was interpolated), so
    callers can skip fabricated samples without re-deriving the loss
    pattern.
    """
    if polls.num_rounds < 2:
        raise MeasurementError("need at least two poll rounds to derive rates")
    if not 0 <= max_interpolated_fraction <= 1:
        raise MeasurementError("max_interpolated_fraction must lie in [0, 1]")
    num_intervals = polls.num_rounds - 1

    # uint64 subtraction wraps modulo 2**64 exactly like the Counter64 MIB;
    # narrower counters (Counter32) reduce the same difference modulo their
    # own space, which recovers the true delta across a legitimate wrap.
    deltas = polls.counters[1:] - polls.counters[:-1]
    if polls.counter_bits < 64:
        deltas = deltas % np.uint64(2**polls.counter_bits)
    backwards = polls.counters[1:] < polls.counters[:-1]
    half_space = np.uint64(2 ** (polls.counter_bits - 1))

    elapsed = polls.response_times[1:] - polls.response_times[:-1]
    pair_lost = polls.lost[1:] | polls.lost[:-1]
    degenerate = ~pair_lost & (elapsed <= 0)
    # A backwards counter whose modular delta exceeds half the counter
    # space is a reset (reboot), not a wrap: the sample is unusable.
    reset = ~pair_lost & ~degenerate & backwards & (deltas > half_space)
    wrapped = ~pair_lost & ~degenerate & backwards & ~reset
    valid = ~pair_lost & ~degenerate & ~reset

    rates = np.full((num_intervals, polls.num_objects), np.nan)
    rates[valid] = (
        deltas[valid].astype(float) * (8.0 / 1e6) / elapsed[valid]
    )

    valid_per_object = valid.any(axis=0)
    if not valid_per_object.all():
        name = polls.object_names[int(np.argmin(valid_per_object))]
        raise MeasurementError(f"all polls lost for object {name!r}")

    validity = valid.copy()
    validity.setflags(write=False)
    diagnostics = RateDiagnostics(
        num_intervals=num_intervals,
        num_objects=polls.num_objects,
        lost_samples=int(pair_lost.sum()),
        degenerate_samples=int(degenerate.sum()),
        interpolated_samples=int((~valid).sum()),
        reset_samples=int(reset.sum()),
        wrap_samples=int(wrapped.sum()),
        validity=validity,
    )
    if diagnostics.interpolated_fraction > max_interpolated_fraction:
        raise MeasurementError(
            f"{diagnostics.interpolated_samples} of {diagnostics.total_samples} samples "
            f"({diagnostics.interpolated_fraction:.1%}) would be interpolated, "
            f"exceeding the allowed fraction {max_interpolated_fraction:.1%}"
        )

    indices = np.arange(num_intervals)
    for col in np.nonzero(~valid.all(axis=0))[0]:
        column = rates[:, col]
        known = ~np.isnan(column)
        column[~known] = np.interp(indices[~known], indices[known], column[known])
    return rates, diagnostics


def rates_from_polls(
    poll_rounds: Sequence[Sequence[PollResult]],
    object_names: Sequence[str],
    max_interpolated_fraction: float = 1.0,
    return_diagnostics: bool = False,
    counter_bits: int = 64,
) -> Union[np.ndarray, tuple[np.ndarray, RateDiagnostics]]:
    """Convert consecutive poll rounds into interval rates in Mbit/s.

    Compatibility wrapper over :func:`rates_from_poll_matrix` for per-round
    :class:`PollResult` lists.  Returns an array of shape
    ``(K, num_objects)`` for ``K + 1`` poll rounds, or
    ``(rates, diagnostics)`` when ``return_diagnostics`` is set.
    """
    matrix = PollMatrix.from_rounds(poll_rounds, object_names, counter_bits=counter_bits)
    rates, diagnostics = rates_from_poll_matrix(
        matrix, max_interpolated_fraction=max_interpolated_fraction
    )
    if return_diagnostics:
        return rates, diagnostics
    return rates
