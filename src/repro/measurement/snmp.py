"""SNMP polling simulation.

Section 5.1.2 of the paper describes the collection infrastructure: SNMP
counters for every link and LSP are polled every five minutes at fixed
timestamps; because SNMP runs over unreliable UDP some samples are lost, the
exact response time of each router varies slightly, and the reported byte
counts are converted to rates using the *actual* measurement interval (e.g.
"5 minutes and 3 seconds") so that the time series stays uniform.

This module models that pipeline for a single poller:

* :class:`CounterState` — a monotonically increasing 64-bit byte counter for
  one measured object (link or LSP), advanced by the true traffic process;
* :class:`SNMPPoller` — polls a set of counters on a fixed schedule with
  per-poll jitter and optional UDP loss, producing :class:`PollResult`
  records with interval-adjusted rates;
* :func:`rates_from_polls` — turns consecutive poll results into the rate
  samples the estimation pipeline consumes, interpolating over lost polls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import MeasurementError

__all__ = ["CounterState", "PollResult", "SNMPPoller", "rates_from_polls"]

_COUNTER64_WRAP = 2**64


@dataclass
class CounterState:
    """A monotonically increasing byte counter for one measured object.

    Parameters
    ----------
    name:
        Object identifier (a link or LSP name).
    value_bytes:
        Current counter value; wraps modulo 2**64 like a Counter64 MIB object.
    """

    name: str
    value_bytes: int = 0

    def advance(self, rate_mbps: float, duration_seconds: float) -> None:
        """Advance the counter by ``rate_mbps`` sustained for ``duration_seconds``."""
        if rate_mbps < 0:
            raise MeasurementError(f"counter {self.name!r} advanced with negative rate")
        if duration_seconds < 0:
            raise MeasurementError("duration must be non-negative")
        added_bytes = int(round(rate_mbps * 1e6 / 8.0 * duration_seconds))
        self.value_bytes = (self.value_bytes + added_bytes) % _COUNTER64_WRAP


@dataclass(frozen=True)
class PollResult:
    """Outcome of polling one object at one scheduled timestamp.

    Attributes
    ----------
    object_name:
        The polled link/LSP.
    scheduled_time:
        Nominal poll timestamp (e.g. 09:05:00) in seconds.
    response_time:
        Actual response time including jitter, in seconds.
    counter_bytes:
        The counter value read, or ``None`` when the poll was lost (UDP).
    """

    object_name: str
    scheduled_time: float
    response_time: float
    counter_bytes: Optional[int]

    @property
    def lost(self) -> bool:
        """Whether this poll produced no data."""
        return self.counter_bytes is None


class SNMPPoller:
    """Simulates one SNMP poller and its polling schedule.

    Parameters
    ----------
    object_names:
        Names of the measured objects (links or LSPs).
    interval_seconds:
        Nominal polling interval (the paper uses 300 s).
    jitter_std_seconds:
        Standard deviation of the response-time jitter around the scheduled
        timestamp.
    loss_probability:
        Probability that an individual poll is lost (SNMP over UDP).
    seed:
        Seed of the internal random generator.
    """

    def __init__(
        self,
        object_names: Sequence[str],
        interval_seconds: float = 300.0,
        jitter_std_seconds: float = 2.0,
        loss_probability: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not object_names:
            raise MeasurementError("poller needs at least one object to poll")
        if len(set(object_names)) != len(object_names):
            raise MeasurementError("duplicate object names")
        if interval_seconds <= 0:
            raise MeasurementError("interval_seconds must be positive")
        if jitter_std_seconds < 0:
            raise MeasurementError("jitter_std_seconds must be non-negative")
        if not 0 <= loss_probability < 1:
            raise MeasurementError("loss_probability must lie in [0, 1)")
        self.object_names = tuple(object_names)
        self.interval_seconds = float(interval_seconds)
        self.jitter_std_seconds = float(jitter_std_seconds)
        self.loss_probability = float(loss_probability)
        self._rng = np.random.default_rng(seed)
        self._counters = {name: CounterState(name) for name in self.object_names}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> CounterState:
        """The counter state of ``name`` (for tests and advanced use)."""
        try:
            return self._counters[name]
        except KeyError as exc:
            raise MeasurementError(f"poller does not track object {name!r}") from exc

    def advance_counters(self, rates_mbps: Mapping[str, float], duration_seconds: float) -> None:
        """Advance every tracked counter with the given sustained rates."""
        for name in self.object_names:
            self._counters[name].advance(float(rates_mbps.get(name, 0.0)), duration_seconds)

    def poll(self, scheduled_time: float) -> list[PollResult]:
        """Poll every object once at ``scheduled_time``.

        Returns one :class:`PollResult` per object; lost polls have
        ``counter_bytes = None``.
        """
        results = []
        for name in self.object_names:
            jitter = abs(float(self._rng.normal(scale=self.jitter_std_seconds)))
            lost = bool(self._rng.random() < self.loss_probability)
            results.append(
                PollResult(
                    object_name=name,
                    scheduled_time=scheduled_time,
                    response_time=scheduled_time + jitter,
                    counter_bytes=None if lost else self._counters[name].value_bytes,
                )
            )
        return results

    def run_schedule(
        self,
        rate_series_mbps: Sequence[Mapping[str, float]],
        start_time: float = 0.0,
    ) -> list[list[PollResult]]:
        """Drive the counters with a rate series and poll after every interval.

        ``rate_series_mbps[k]`` is the sustained per-object rate during the
        ``k``-th interval.  The returned list has one poll round per interval
        boundary, *including* an initial poll at ``start_time`` so that rates
        can be derived from consecutive counter differences.
        """
        rounds = [self.poll(start_time)]
        for k, rates in enumerate(rate_series_mbps):
            self.advance_counters(rates, self.interval_seconds)
            rounds.append(self.poll(start_time + (k + 1) * self.interval_seconds))
        return rounds


def rates_from_polls(
    poll_rounds: Sequence[Sequence[PollResult]],
    object_names: Sequence[str],
) -> np.ndarray:
    """Convert consecutive poll rounds into interval rates in Mbit/s.

    The rate of object ``o`` during interval ``k`` is the counter difference
    between round ``k+1`` and round ``k`` divided by the *actual* elapsed
    time between the two responses — the interval-length adjustment the
    paper describes.  When either poll was lost the rate is linearly
    interpolated from the nearest valid samples of the same object (constant
    extrapolation at the boundaries).

    Returns an array of shape ``(K, num_objects)`` for ``K + 1`` poll rounds.
    """
    if len(poll_rounds) < 2:
        raise MeasurementError("need at least two poll rounds to derive rates")
    name_index = {name: idx for idx, name in enumerate(object_names)}
    num_intervals = len(poll_rounds) - 1
    rates = np.full((num_intervals, len(object_names)), np.nan)

    by_round: list[dict[str, PollResult]] = []
    for round_results in poll_rounds:
        indexed = {result.object_name: result for result in round_results}
        missing = set(object_names) - set(indexed)
        if missing:
            raise MeasurementError(f"poll round missing objects: {sorted(missing)}")
        by_round.append(indexed)

    for name, col in name_index.items():
        for k in range(num_intervals):
            first, second = by_round[k][name], by_round[k + 1][name]
            if first.lost or second.lost:
                continue
            elapsed = second.response_time - first.response_time
            if elapsed <= 0:
                continue
            delta = (second.counter_bytes - first.counter_bytes) % _COUNTER64_WRAP
            rates[k, col] = delta * 8.0 / 1e6 / elapsed
        column = rates[:, col]
        valid = ~np.isnan(column)
        if not valid.any():
            raise MeasurementError(f"all polls lost for object {name!r}")
        if not valid.all():
            indices = np.arange(num_intervals)
            column[~valid] = np.interp(indices[~valid], indices[valid], column[valid])
            rates[:, col] = column
    return rates
