"""Link-load computation and measurement models.

The evaluation data set of the paper is constructed to be *consistent*: link
loads are computed from the measured traffic matrix and the simulated
routing via ``t = R s`` (Section 5.1.4), so that the estimation methods can
be judged without confounding link-measurement errors.  This module provides
exactly that computation, plus optional measurement-noise models for
sensitivity studies (the paper lists measurement errors as future work).

* :func:`link_loads_from_matrix` — the exact ``t = R s`` product;
* :func:`link_load_series` — the same for a whole time series, returning a
  ``(K, L)`` array;
* :class:`LinkLoadObservation` — a time-stamped link-load vector with the
  link labelling attached;
* :class:`GaussianNoiseModel` / :class:`NoiselessModel` — measurement-error
  models applied on top of the exact loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.errors import MeasurementError
from repro.routing.routing_matrix import RoutingMatrix
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = [
    "LinkLoadObservation",
    "link_loads_from_matrix",
    "link_load_series",
    "NoiseModel",
    "NoiselessModel",
    "GaussianNoiseModel",
]


@dataclass(frozen=True)
class LinkLoadObservation:
    """A single snapshot of link loads.

    Attributes
    ----------
    link_names:
        Labels of the links, in the same order as ``loads``.
    loads:
        Load of each link (same unit as the demands, e.g. Mbit/s).
    timestamp_seconds:
        Time of the observation, seconds since midnight.
    """

    link_names: tuple[str, ...]
    loads: np.ndarray
    timestamp_seconds: float = 0.0

    def __post_init__(self) -> None:
        loads = np.asarray(self.loads, dtype=float)
        if loads.ndim != 1 or len(loads) != len(self.link_names):
            raise MeasurementError(
                f"loads shape {loads.shape} does not match {len(self.link_names)} links"
            )
        if np.any(loads < -1e-9):
            raise MeasurementError("link loads must be non-negative")
        object.__setattr__(self, "loads", np.maximum(loads, 0.0))

    def load_of(self, link_name: str) -> float:
        """Load of a single named link."""
        try:
            return float(self.loads[self.link_names.index(link_name)])
        except ValueError as exc:
            raise MeasurementError(f"unknown link {link_name!r}") from exc

    def total(self) -> float:
        """Sum of all link loads (counts transit traffic multiple times)."""
        return float(self.loads.sum())


class NoiseModel(Protocol):
    """Protocol for measurement-noise models applied to exact link loads."""

    def apply(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a noisy version of ``loads``."""
        ...  # pragma: no cover - protocol definition


class NoiselessModel:
    """The identity noise model (the paper's consistent data set)."""

    def apply(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the loads unchanged."""
        return np.asarray(loads, dtype=float).copy()


class GaussianNoiseModel:
    """Additive Gaussian measurement noise, relative or absolute.

    Parameters
    ----------
    relative_std:
        Standard deviation as a fraction of the true load (e.g. 0.01 for
        1 % SNMP counter noise).
    absolute_std:
        Additional absolute noise floor, in load units.
    """

    def __init__(self, relative_std: float = 0.0, absolute_std: float = 0.0) -> None:
        if relative_std < 0 or absolute_std < 0:
            raise MeasurementError("noise standard deviations must be non-negative")
        self.relative_std = relative_std
        self.absolute_std = absolute_std

    def apply(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return loads perturbed by the configured Gaussian noise, clipped at zero."""
        loads = np.asarray(loads, dtype=float)
        std = self.relative_std * loads + self.absolute_std
        return np.maximum(loads + rng.normal(scale=1.0, size=loads.shape) * std, 0.0)


#: Seed for the noise generator when the caller passes ``rng=None``.  A
#: fixed fallback keeps no-argument calls reproducible run to run — the
#: determinism contract the serial==parallel record tests rely on.  Pass an
#: explicit generator to draw different noise per call.
FALLBACK_NOISE_SEED = 0


def _fallback_rng() -> np.random.Generator:
    """Deterministic generator used when no ``rng`` is supplied."""
    return np.random.default_rng(FALLBACK_NOISE_SEED)


def link_loads_from_matrix(
    routing: RoutingMatrix,
    traffic: TrafficMatrix,
    noise: Optional[NoiseModel] = None,
    rng: Optional[np.random.Generator] = None,
    timestamp_seconds: float = 0.0,
) -> LinkLoadObservation:
    """Compute ``t = R s`` for one traffic matrix snapshot.

    Parameters
    ----------
    routing:
        The routing matrix; its pair ordering must match the traffic matrix.
    traffic:
        The demand snapshot.
    noise:
        Optional measurement-noise model (defaults to noiseless).
    rng:
        Random generator for the noise model (defaults to a fixed-seed
        generator, so no-argument calls are reproducible).
    timestamp_seconds:
        Timestamp to attach to the observation.
    """
    if routing.pairs != traffic.pairs:
        raise MeasurementError("routing matrix and traffic matrix use different pair orderings")
    loads = routing.link_loads(traffic.vector)
    if noise is not None and not isinstance(noise, NoiselessModel):
        loads = noise.apply(loads, rng if rng is not None else _fallback_rng())
    return LinkLoadObservation(
        link_names=routing.link_names, loads=loads, timestamp_seconds=timestamp_seconds
    )


def link_load_series(
    routing: RoutingMatrix,
    series: TrafficMatrixSeries,
    noise: Optional[NoiseModel] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Compute link loads for every snapshot of a series.

    Returns an array of shape ``(K, L)``: one row of link loads per
    snapshot.  This is the input consumed by the time-series estimation
    methods (fanout estimation and the Vardi approach).
    """
    if routing.pairs != series.pairs:
        raise MeasurementError("routing matrix and series use different pair orderings")
    rng = rng if rng is not None else _fallback_rng()
    rows = []
    for snapshot in series:
        loads = routing.link_loads(snapshot.vector)
        if noise is not None and not isinstance(noise, NoiselessModel):
            loads = noise.apply(loads, rng)
        rows.append(loads)
    return np.stack(rows)
