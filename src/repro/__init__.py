"""repro — traffic-matrix estimation on a large IP backbone.

A production-oriented reproduction of Gunnar, Johansson & Telkamp,
"Traffic Matrix Estimation on a Large IP Backbone — A Comparison on Real
Data" (ACM IMC 2004).  The library provides:

* a backbone topology and MPLS/CSPF routing substrate
  (:mod:`repro.topology`, :mod:`repro.routing`);
* traffic-matrix data structures and synthetic demand generators calibrated
  to the paper's data analysis (:mod:`repro.traffic`);
* an SNMP/LSP measurement-collection simulation and NetFlow-style
  aggregation (:mod:`repro.measurement`);
* every estimation method the paper compares — gravity, Kruithof, entropy,
  Bayesian, Vardi, Cao, fanout, worst-case bounds, tomography plus direct
  measurements (:mod:`repro.estimation`);
* the evaluation framework (MRE metric, figure/table generators)
  (:mod:`repro.evaluation`) and reference scenarios
  (:mod:`repro.datasets`);
* a traffic-engineering planning subsystem — failure what-ifs with
  incremental reroute, load projection, and method-comparison failure
  sweeps (:mod:`repro.planning`).

Quickstart::

    from repro.datasets import europe_scenario
    from repro.estimation import EntropyEstimator
    from repro.evaluation import mean_relative_error

    scenario = europe_scenario()
    problem = scenario.snapshot_problem()
    estimate = EntropyEstimator(regularization=1000.0).estimate(problem)
    print(mean_relative_error(estimate.estimate, scenario.busy_mean_matrix()))
"""

from repro.errors import (
    EstimationError,
    MeasurementError,
    PlanningError,
    ReproError,
    RoutingError,
    SolverError,
    TopologyError,
    TrafficError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "TopologyError",
    "RoutingError",
    "TrafficError",
    "MeasurementError",
    "EstimationError",
    "PlanningError",
    "SolverError",
]
