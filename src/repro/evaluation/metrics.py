"""Error metrics for traffic-matrix estimates.

The paper's headline metric is the **mean relative error (MRE)** over the
large demands (Equation 8): the average of ``|s_hat_i - s_i| / s_i`` taken
over the demands whose true value exceeds a threshold chosen such that the
retained demands carry approximately 90 % of the total traffic.  The
rationale is traffic engineering: only the large demands matter for link
utilisations, and relative accuracy on them is what load balancing and
failure analysis need.

Besides the MRE this module provides the threshold rule itself, per-demand
relative errors, the root-mean-square error, and a rank-correlation metric
backing the paper's remark that "most estimation methods are very accurate
in ranking the size of demands".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.stats

from repro.errors import EstimationError
from repro.topology.elements import NodePair
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "top_demand_threshold",
    "relative_errors",
    "mean_relative_error",
    "root_mean_square_error",
    "demand_ranking_correlation",
]


def _check_alignment(estimate: TrafficMatrix, truth: TrafficMatrix) -> None:
    if estimate.pairs != truth.pairs:
        raise EstimationError("estimate and truth use different pair orderings")


def top_demand_threshold(truth: TrafficMatrix, traffic_fraction: float = 0.9) -> float:
    """Threshold such that demands above it carry ``traffic_fraction`` of traffic.

    This is the paper's rule for choosing which demands enter the MRE; with
    the default 0.9 the retained demands carry approximately 90 % of the
    total traffic (29 demands in the paper's European network, 155 in the
    American one).
    """
    return truth.threshold_for_traffic_fraction(traffic_fraction)


def relative_errors(
    estimate: TrafficMatrix,
    truth: TrafficMatrix,
    threshold: float = 0.0,
) -> dict[NodePair, float]:
    """Per-demand relative errors ``|s_hat - s| / s`` for demands above ``threshold``.

    Demands whose true value is zero are skipped (their relative error is
    undefined), matching the paper's restriction to large demands.
    """
    _check_alignment(estimate, truth)
    errors: dict[NodePair, float] = {}
    for pair, true_value in truth:
        if true_value <= threshold or true_value <= 0:
            continue
        errors[pair] = abs(estimate.demand(pair) - true_value) / true_value
    return errors


def mean_relative_error(
    estimate: TrafficMatrix,
    truth: TrafficMatrix,
    traffic_fraction: float = 0.9,
    threshold: Optional[float] = None,
) -> float:
    """The paper's MRE metric (Equation 8).

    Parameters
    ----------
    estimate, truth:
        Estimated and true traffic matrices over the same pairs.
    traffic_fraction:
        Fraction of total traffic the retained demands must carry (used to
        derive the threshold when ``threshold`` is not given explicitly).
    threshold:
        Explicit demand threshold ``s_T``; overrides ``traffic_fraction``.

    Raises
    ------
    EstimationError
        If no demand exceeds the threshold.
    """
    _check_alignment(estimate, truth)
    if threshold is None:
        threshold = top_demand_threshold(truth, traffic_fraction)
        # The threshold value itself belongs to the retained set ("larger
        # than s_T" in the paper includes the demand defining the 90% mark),
        # so move it just below.
        threshold = float(np.nextafter(threshold, 0.0))
    errors = relative_errors(estimate, truth, threshold=threshold)
    if not errors:
        raise EstimationError("no demands exceed the MRE threshold")
    return float(np.mean(list(errors.values())))


def root_mean_square_error(estimate: TrafficMatrix, truth: TrafficMatrix) -> float:
    """Plain RMSE over all demands (absolute, not relative)."""
    _check_alignment(estimate, truth)
    difference = estimate.vector - truth.vector
    return float(np.sqrt(np.mean(difference**2)))


def demand_ranking_correlation(estimate: TrafficMatrix, truth: TrafficMatrix) -> float:
    """Spearman rank correlation between estimated and true demand sizes.

    Values near 1 confirm the paper's observation that even methods with a
    mediocre MRE rank the demands almost perfectly, which is what makes the
    "measure the largest estimated demands" strategy viable.
    """
    _check_alignment(estimate, truth)
    if len(truth.pairs) < 2:
        raise EstimationError("ranking correlation needs at least two demands")
    correlation = scipy.stats.spearmanr(estimate.vector, truth.vector).statistic
    return float(correlation)
