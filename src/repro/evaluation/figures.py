"""Data-series generators for every figure of the paper.

Each function regenerates the *data* behind one figure (the library does not
plot; the benchmark harness prints the series and EXPERIMENTS.md records
them).  The naming follows the paper:

========  ==========================================================
Figure    Function
========  ==========================================================
Fig. 1    :func:`total_traffic_over_time`
Fig. 2    :func:`cumulative_demand_distribution`
Fig. 3    :func:`spatial_distribution`
Fig. 4/5  :func:`fanout_stability`
Fig. 6    :func:`mean_variance_relation`
Fig. 7    :func:`gravity_scatter`
Fig. 8/9  :func:`worst_case_bound_scatter`
Fig. 10   :func:`fanout_estimation_scatter`
Fig. 11   :func:`fanout_mre_vs_window`
Fig. 12   :func:`vardi_synthetic_mre_vs_window`
Fig. 13   :func:`regularization_sweep`
Fig. 14   :func:`regularized_scatter`
Fig. 15   :func:`prior_comparison_sweep`
Fig. 16   :func:`direct_measurement_curve`
========  ==========================================================
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.scenarios import Scenario
from repro.errors import EstimationError
from repro.estimation.base import EstimationProblem
from repro.estimation.bayesian import BayesianEstimator
from repro.estimation.entropy import EntropyEstimator
from repro.estimation.fanout import FanoutEstimator
from repro.estimation.gravity import SimpleGravityEstimator
from repro.estimation.partial import greedy_measurement_selection, largest_demand_selection
from repro.estimation.priors import worst_case_bound_prior
from repro.estimation.vardi import VardiEstimator
from repro.estimation.worstcase import worst_case_bounds
from repro.evaluation.metrics import mean_relative_error, top_demand_threshold
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.meanvariance import fit_scaling_law
from repro.traffic.synthetic import poisson_series
from repro.measurement.linkloads import link_load_series

__all__ = [
    "total_traffic_over_time",
    "cumulative_demand_distribution",
    "spatial_distribution",
    "fanout_stability",
    "mean_variance_relation",
    "gravity_scatter",
    "worst_case_bound_scatter",
    "fanout_estimation_scatter",
    "fanout_mre_vs_window",
    "vardi_synthetic_mre_vs_window",
    "regularization_sweep",
    "regularized_scatter",
    "prior_comparison_sweep",
    "direct_measurement_curve",
]


# ----------------------------------------------------------------------
# Data-analysis figures (Section 5.2)
# ----------------------------------------------------------------------
def total_traffic_over_time(scenario: Scenario) -> dict[str, np.ndarray]:
    """Figure 1: normalised total traffic of a scenario over 24 hours."""
    timestamps, normalized = scenario.total_traffic_profile()
    return {"time_seconds": timestamps, "normalized_total_traffic": normalized}


def cumulative_demand_distribution(scenario: Scenario) -> dict[str, np.ndarray]:
    """Figure 2: cumulative traffic share of demands ranked by volume."""
    ranks, cumulative = scenario.busy_mean_matrix().cumulative_distribution()
    return {"rank_fraction": ranks, "traffic_fraction": cumulative}


def spatial_distribution(scenario: Scenario) -> dict[str, np.ndarray]:
    """Figure 3: the dense source/destination demand matrix (heat-map data)."""
    names, dense = scenario.busy_mean_matrix().to_dense()
    return {"node_names": np.array(names), "demand_matrix": dense}


def fanout_stability(scenario: Scenario, num_sources: int = 4) -> dict[str, np.ndarray]:
    """Figures 4-5: demand and fanout trajectories of the largest source PoPs.

    Returns, for the ``num_sources`` largest origins, the per-snapshot
    demands and fanouts of their largest destination, plus aggregate
    coefficients of variation demonstrating that fanouts fluctuate less than
    demands.
    """
    series = scenario.day_series
    mean_matrix = series.mean_matrix()
    origin_totals = mean_matrix.origin_totals()
    largest_origins = sorted(origin_totals, key=origin_totals.get, reverse=True)[:num_sources]

    array = series.as_array()
    fanouts = series.fanout_series()
    pair_index = {pair: idx for idx, pair in enumerate(series.pairs)}

    demand_tracks, fanout_tracks, track_labels = [], [], []
    for origin in largest_origins:
        pairs_from_origin = [pair for pair in series.pairs if pair.origin == origin]
        largest_pair = max(pairs_from_origin, key=mean_matrix.demand)
        idx = pair_index[largest_pair]
        demand_tracks.append(array[:, idx])
        fanout_tracks.append(fanouts[:, idx])
        track_labels.append(str(largest_pair))

    demand_tracks = np.stack(demand_tracks)
    fanout_tracks = np.stack(fanout_tracks)

    def coefficient_of_variation(tracks: np.ndarray) -> np.ndarray:
        means = tracks.mean(axis=1)
        stds = tracks.std(axis=1)
        return np.where(means > 0, stds / means, 0.0)

    return {
        "time_seconds": series.timestamps(),
        "labels": np.array(track_labels),
        "demands": demand_tracks,
        "fanouts": fanout_tracks,
        "demand_cov": coefficient_of_variation(demand_tracks),
        "fanout_cov": coefficient_of_variation(fanout_tracks),
    }


def mean_variance_relation(scenario: Scenario) -> dict[str, np.ndarray | float]:
    """Figure 6: per-demand busy-period means and variances plus the fitted law."""
    busy = scenario.busy_series()
    means = busy.demand_means()
    variances = busy.demand_variances()
    law = fit_scaling_law(means, variances)
    return {
        "demand_means": means,
        "demand_variances": variances,
        "phi": law.phi,
        "c": law.c,
    }


# ----------------------------------------------------------------------
# Estimation figures (Section 5.3)
# ----------------------------------------------------------------------
def gravity_scatter(scenario: Scenario) -> dict[str, np.ndarray | float]:
    """Figure 7: true demands vs. simple-gravity estimates."""
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    estimate = SimpleGravityEstimator().estimate(problem).estimate
    return {
        "actual": truth.vector,
        "estimated": estimate.vector,
        "mre": mean_relative_error(estimate, truth),
    }


def worst_case_bound_scatter(scenario: Scenario) -> dict[str, np.ndarray | float]:
    """Figures 8-9: per-demand worst-case bounds and the midpoint (WCB) prior."""
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    bounds = worst_case_bounds(problem)
    lower = np.array([b.lower for b in bounds])
    upper = np.array([b.upper for b in bounds])
    midpoint = 0.5 * (lower + upper)
    prior_matrix = TrafficMatrix(problem.pairs, midpoint)
    return {
        "actual": truth.vector,
        "lower_bounds": lower,
        "upper_bounds": upper,
        "midpoint": midpoint,
        "num_exact": float(sum(b.is_exact() for b in bounds)),
        "mre": mean_relative_error(prior_matrix, truth),
    }


def fanout_estimation_scatter(
    scenario: Scenario, window_lengths: Sequence[int] = (1, 3, 10)
) -> dict[int, dict[str, np.ndarray]]:
    """Figure 10: window-average demands vs. fanout estimates per window length."""
    results: dict[int, dict[str, np.ndarray]] = {}
    for window in window_lengths:
        problem = scenario.series_problem(window_length=window)
        truth = scenario.busy_series().window(0, window).mean_matrix()
        estimate = FanoutEstimator(window_length=window).estimate(problem).estimate
        results[int(window)] = {
            "actual_average": truth.vector,
            "estimated": estimate.vector,
            "mre": np.array(mean_relative_error(estimate, truth)),
        }
    return results


def fanout_mre_vs_window(
    scenario: Scenario, window_lengths: Sequence[int] = (1, 2, 3, 5, 10, 20, 30, 40)
) -> dict[str, np.ndarray]:
    """Figure 11: fanout-estimation MRE as a function of window length."""
    windows, errors = [], []
    for window in window_lengths:
        problem = scenario.series_problem(window_length=window)
        truth = scenario.busy_series().window(0, window).mean_matrix()
        estimate = FanoutEstimator(window_length=window).estimate(problem).estimate
        windows.append(int(window))
        errors.append(mean_relative_error(estimate, truth))
    return {"window_lengths": np.array(windows), "mre": np.array(errors)}


def vardi_synthetic_mre_vs_window(
    scenario: Scenario,
    window_sizes: Sequence[int] = (25, 50, 100, 200, 400, 700, 1000),
    poisson_weight: float = 1.0,
    seed: int = 7,
) -> dict[str, np.ndarray]:
    """Figure 12: Vardi MRE vs. window size on synthetic Poisson traffic.

    The busy-period mean matrix provides the Poisson intensities; independent
    Poisson snapshots are drawn and the Vardi estimator is run on windows of
    increasing size, exactly reproducing the paper's synthetic study of how
    slowly the covariance estimate converges.
    """
    truth = scenario.busy_mean_matrix()
    longest = max(window_sizes)
    synthetic = poisson_series(truth, longest, seed=seed)
    loads = link_load_series(scenario.routing, synthetic)
    errors = []
    for window in window_sizes:
        problem = EstimationProblem(
            routing=scenario.routing,
            link_load_series=loads[:window],
        )
        estimate = VardiEstimator(poisson_weight=poisson_weight).estimate(problem).estimate
        errors.append(mean_relative_error(estimate, truth))
    return {"window_sizes": np.array(list(window_sizes)), "mre": np.array(errors)}


def regularization_sweep(
    scenario: Scenario,
    regularizations: Optional[Sequence[float]] = None,
    prior: str = "gravity",
) -> dict[str, np.ndarray]:
    """Figure 13: Bayesian and entropy MRE as a function of the regularisation parameter."""
    if regularizations is None:
        regularizations = np.logspace(-5, 5, 11)
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    bayesian_errors, entropy_errors = [], []
    for value in regularizations:
        bayes = BayesianEstimator(regularization=float(value), prior=prior).estimate(problem)
        entropy = EntropyEstimator(regularization=float(value), prior=prior).estimate(problem)
        bayesian_errors.append(mean_relative_error(bayes.estimate, truth))
        entropy_errors.append(mean_relative_error(entropy.estimate, truth))
    return {
        "regularization": np.asarray(list(regularizations), dtype=float),
        "bayesian_mre": np.array(bayesian_errors),
        "entropy_mre": np.array(entropy_errors),
    }


def regularized_scatter(
    scenario: Scenario, regularization: float = 1000.0, prior: str = "gravity"
) -> dict[str, np.ndarray]:
    """Figure 14: true vs. estimated demands for Bayesian and entropy estimation."""
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    bayes = BayesianEstimator(regularization=regularization, prior=prior).estimate(problem)
    entropy = EntropyEstimator(regularization=regularization, prior=prior).estimate(problem)
    return {
        "actual": truth.vector,
        "bayesian": bayes.vector,
        "entropy": entropy.vector,
        "bayesian_mre": np.array(mean_relative_error(bayes.estimate, truth)),
        "entropy_mre": np.array(mean_relative_error(entropy.estimate, truth)),
    }


def prior_comparison_sweep(
    scenario: Scenario,
    regularizations: Optional[Sequence[float]] = None,
) -> dict[str, np.ndarray]:
    """Figure 15: Bayesian MRE vs. regularisation for gravity and WCB priors."""
    if regularizations is None:
        regularizations = np.logspace(-5, 5, 11)
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    wcb_prior = worst_case_bound_prior(problem)
    gravity_errors, wcb_errors = [], []
    for value in regularizations:
        gravity_result = BayesianEstimator(regularization=float(value), prior="gravity").estimate(problem)
        wcb_result = BayesianEstimator(regularization=float(value), prior=wcb_prior).estimate(problem)
        gravity_errors.append(mean_relative_error(gravity_result.estimate, truth))
        wcb_errors.append(mean_relative_error(wcb_result.estimate, truth))
    return {
        "regularization": np.asarray(list(regularizations), dtype=float),
        "gravity_prior_mre": np.array(gravity_errors),
        "wcb_prior_mre": np.array(wcb_errors),
    }


def direct_measurement_curve(
    scenario: Scenario,
    max_measurements: int = 10,
    strategy: str = "greedy",
    regularization: float = 1000.0,
) -> dict[str, np.ndarray]:
    """Figure 16: entropy-method MRE vs. number of directly measured demands.

    ``strategy`` is ``"greedy"`` (the paper's exhaustive search) or
    ``"largest"`` (measure the largest estimated demands first).
    """
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    estimator = EntropyEstimator(regularization=regularization, prior="gravity")
    threshold = top_demand_threshold(truth)

    def metric(estimate: TrafficMatrix) -> float:
        return mean_relative_error(estimate, truth, threshold=float(np.nextafter(threshold, 0.0)))

    baseline = metric(estimator.estimate(problem).estimate)
    if strategy == "greedy":
        history = greedy_measurement_selection(
            problem, truth, estimator, metric, max_measurements
        )
    elif strategy == "largest":
        history = largest_demand_selection(problem, truth, estimator, metric, max_measurements)
    else:
        raise EstimationError(f"unknown measurement-selection strategy {strategy!r}")
    counts = np.arange(0, len(history) + 1)
    errors = np.array([baseline] + [error for _, error in history])
    selected = np.array([str(pair) for pair, _ in history])
    return {"num_measured": counts, "mre": errors, "selected_pairs": selected}
