"""Experiment runners for the paper's tables.

* :func:`vardi_table` — Table 1: Vardi MRE for ``sigma^{-2} in {0.01, 1}``
  on the busy-period series (K = 50 samples);
* :func:`method_comparison` / :func:`summary_table` — Table 2: the best MRE
  achieved by every method on a scenario;
* :func:`robustness_sweep` / :func:`robustness_table` — noise-robustness
  study: the MRE of every registered method as a function of SNMP jitter
  and UDP loss, on measured-data scenarios built with
  :meth:`~repro.datasets.scenarios.Scenario.measured`;
* :class:`ExperimentRecord` — a small result container used by the
  benchmark harness and by EXPERIMENTS.md generation.

The runners are data-driven: a :class:`MethodSpec` names an estimator from
the registry (:mod:`repro.estimation.registry`), its constructor
parameters, and the data it consumes (snapshot or series window), so a new
estimation method — or a new experiment layout — composes by building a
spec list instead of editing the runner.  :func:`default_method_specs`
reproduces the paper's Table 2 configuration.  The runners consume the
scenario's ``snapshot_problem()`` / ``series_problem()`` accessors, so they
work unchanged on both consistent and measured scenarios.

Every runner takes an ``n_jobs`` parameter: the scenario problems are
built **once** in the parent process and the independent units of work —
method specs grouped into dependency waves for :func:`run_method_specs`,
``(scenario, jitter, loss)`` grid cells for :func:`robustness_sweep` —
are fanned out over a process pool.  ``n_jobs=1`` (the default) runs the
exact serial loop; parallel runs return records identical to it, in the
same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro.datasets.scenarios import Scenario
from repro.errors import EstimationError, SolverError
from repro.estimation.registry import get_estimator
from repro.evaluation.metrics import mean_relative_error
from repro.parallel import (
    effective_jobs,
    release_payload,
    resolve_payload,
    run_supervised_tasks,
    share_payload,
)
from repro.resilience.report import FailureReason
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "ExperimentRecord",
    "MethodSpec",
    "SpecEstimate",
    "default_method_specs",
    "estimate_method_specs",
    "run_method_specs",
    "vardi_table",
    "method_comparison",
    "summary_table",
    "RobustnessRecord",
    "robustness_sweep",
    "robustness_table",
]


@dataclass(frozen=True)
class ExperimentRecord:
    """One (scenario, method) MRE measurement.

    Attributes
    ----------
    scenario:
        Scenario name (``"europe"`` / ``"america"`` / ``"abilene"`` / ...).
    method:
        Method label as it appears in the paper's Table 2.
    mre:
        Mean relative error achieved (``NaN`` when the method was skipped).
    parameters:
        Free-form parameter description (regularisation value, window, ...).
    failure:
        Structured reason the method was skipped (``None`` when it ran);
        only populated under ``skip_errors``.
    degradation:
        The :class:`~repro.resilience.report.DegradationReport` dict the
        estimator attached to its diagnostics (supervised/sharded methods),
        ``None`` for a clean run.
    """

    scenario: str
    method: str
    mre: float
    parameters: dict[str, float] = field(default_factory=dict)
    failure: Optional[FailureReason] = None
    degradation: Optional[dict] = None

    @property
    def skipped(self) -> bool:
        """Whether the method could not run."""
        return self.failure is not None


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one experiment row.

    Attributes
    ----------
    label:
        Row label of the record (e.g. ``"Entropy w. gravity prior"``).
    estimator:
        Registry name of the estimation method.
    params:
        Constructor parameters forwarded to
        :func:`repro.estimation.registry.get_estimator`.
    data:
        ``"snapshot"`` — estimate the busy-period mean from one consistent
        snapshot; ``"series"`` — estimate from a link-load series window.
    window:
        Series window length (``data="series"`` only; clamped to the busy
        period).
    prior_from:
        Label of an earlier spec whose estimate vector is passed as this
        estimator's ``prior`` parameter (e.g. the Bayesian method re-using
        the already-computed WCB prior instead of solving the LPs twice).
    """

    label: str
    estimator: str
    params: Mapping[str, Any] = field(default_factory=dict)
    data: str = "snapshot"
    window: Optional[int] = None
    prior_from: Optional[str] = None

    def __post_init__(self) -> None:
        if self.data not in ("snapshot", "series"):
            raise EstimationError(f"unknown method-spec data kind {self.data!r}")
        if self.data == "series" and self.window is not None and self.window < 1:
            raise EstimationError("series window must be at least 1")


def default_method_specs(
    regularization: float = 1000.0,
    small_regularization: float = 0.01,
    fanout_window: int = 10,
    vardi_window: int = 50,
    include_vardi: bool = True,
) -> tuple[MethodSpec, ...]:
    """The paper's Table 2 configuration as a spec tuple.

    The parameter defaults follow the paper: the regularised methods use a
    large regularisation value (1000), the WCB prior is evaluated both alone
    and inside the Bayesian method, the fanout method uses a window of 10
    snapshots, and Vardi uses the 50-sample busy period with
    ``sigma^{-2} = 0.01`` (its better setting in Table 1).
    """
    specs = [
        MethodSpec(label="Worst-case bound prior", estimator="worst-case-bounds"),
        MethodSpec(label="Simple gravity prior", estimator="gravity"),
        MethodSpec(
            label="Entropy w. gravity prior",
            estimator="entropy",
            params={"regularization": regularization, "prior": "gravity"},
        ),
        MethodSpec(
            label="Bayes w. gravity prior",
            estimator="bayesian",
            params={"regularization": regularization, "prior": "gravity"},
        ),
        MethodSpec(
            label="Bayes w. WCB prior",
            estimator="bayesian",
            params={"regularization": regularization},
            prior_from="Worst-case bound prior",
        ),
        MethodSpec(
            label="Fanout",
            estimator="fanout",
            params={"window_length": fanout_window},
            data="series",
            window=fanout_window,
        ),
    ]
    if include_vardi:
        specs.append(
            MethodSpec(
                label="Vardi",
                estimator="vardi",
                params={"poisson_weight": small_regularization},
                data="series",
                window=vardi_window,
            )
        )
    return tuple(specs)


def _recorded_parameters(spec: MethodSpec, window: Optional[int]) -> dict[str, float]:
    """Numeric parameters worth keeping in the experiment record."""
    parameters = {
        key: float(value)
        for key, value in spec.params.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    if window is not None:
        parameters["window"] = float(window)
    return parameters


def _spec_window(spec: MethodSpec, scenario: Scenario) -> Optional[int]:
    if spec.data == "snapshot":
        return None
    return min(spec.window or scenario.busy_length, scenario.busy_length)


def _build_estimator(spec: MethodSpec, prior: Optional[np.ndarray]):
    """Construct a spec's estimator, injecting the resolved prior (if any)."""
    params = dict(spec.params)
    if prior is not None:
        params["prior"] = prior
    return get_estimator(spec.estimator, **params)


def _evaluate_spec(spec: MethodSpec, problem: Any, prior: Optional[np.ndarray]) -> np.ndarray:
    """Instantiate and run one spec; module-level so the pool can pickle it."""
    return _build_estimator(spec, prior).estimate(problem).vector


@dataclass(frozen=True)
class _SpecOutcome:
    """Internal result of one guarded spec evaluation (picklable).

    ``vector`` is ``None`` exactly when ``failure`` is set; ``degradation``
    carries the estimator's own degradation-report dict when the method ran
    but had to fall back internally (supervised/sharded estimators).
    """

    vector: Optional[np.ndarray]
    failure: Optional[FailureReason] = None
    degradation: Optional[dict] = None


def _evaluate_spec_guarded(
    spec: MethodSpec, problem: Any, prior: Optional[np.ndarray], skip_errors: bool
) -> _SpecOutcome:
    """One spec evaluation inside an ``experiment.spec`` stage span."""
    with telemetry.span("experiment.spec", spec=spec.label):
        return _evaluate_spec_impl(spec, problem, prior, skip_errors)


def _evaluate_spec_impl(
    spec: MethodSpec, problem: Any, prior: Optional[np.ndarray], skip_errors: bool
) -> _SpecOutcome:
    """One spec evaluation as a structured :class:`_SpecOutcome`.

    With ``skip_errors`` an estimation or solver failure becomes an outcome
    carrying a :class:`~repro.resilience.report.FailureReason` (exception
    type, message, spec, stage) instead of propagating, so sweeps can
    record *why* the method was skipped; without it the exception passes
    through unchanged (the historical contract of
    :func:`run_method_specs`).  A ``TypeError`` is only absorbed at
    construction time (params that do not fit the estimator's signature,
    the same rule ``Scenario.sweep`` applies); one raised *during*
    estimation is a bug and always propagates.
    """
    if not skip_errors:
        result = _build_estimator(spec, prior).estimate(problem)
        return _SpecOutcome(
            vector=result.vector,
            degradation=result.diagnostics.get("degradation"),
        )
    try:
        estimator = _build_estimator(spec, prior)
    except (EstimationError, TypeError) as exc:
        return _SpecOutcome(
            vector=None,
            failure=FailureReason.from_exception(
                exc, spec=spec.label, stage="construct"
            ),
        )
    try:
        result = estimator.estimate(problem)
    except (EstimationError, SolverError) as exc:
        return _SpecOutcome(
            vector=None,
            failure=FailureReason.from_exception(
                exc, spec=spec.label, stage="estimate"
            ),
        )
    return _SpecOutcome(
        vector=result.vector,
        degradation=result.diagnostics.get("degradation"),
    )


def _evaluate_spec_pooled(
    spec: MethodSpec, problems_ref: Any, problem_key: Any, prior: Optional[np.ndarray],
    skip_errors: bool,
) -> _SpecOutcome:
    """Pool entry point: the shared problems arrive as a shared-payload ref.

    The problems (each carrying its routing matrix) are registered once via
    :func:`repro.parallel.share_payload`: fork workers inherit them without
    pickling anything, spawn workers receive them once per worker through
    the executor initializer — never once per spec.
    """
    problems = resolve_payload(problems_ref)
    return _evaluate_spec_guarded(spec, problems[problem_key], prior, skip_errors)


@dataclass(frozen=True)
class SpecEstimate:
    """Estimate of one method spec together with the truth it is scored against.

    Attributes
    ----------
    spec:
        The evaluated :class:`MethodSpec`.
    estimate:
        The estimated traffic matrix, or ``None`` when the spec was skipped.
    truth:
        The ground truth matching the spec's data kind (busy-period mean for
        snapshot specs, window mean for series specs).
    window:
        Effective series window, ``None`` for snapshot specs.
    error:
        Human-readable reason the spec was skipped (empty when it ran);
        kept alongside ``failure`` for backward compatibility.
    failure:
        Structured :class:`~repro.resilience.report.FailureReason`
        (exception type, message, spec label, pipeline stage), ``None``
        when the spec ran.
    degradation:
        The degradation-report dict the estimator attached to its
        diagnostics (supervised/sharded methods), ``None`` for a clean run.
    """

    spec: MethodSpec
    estimate: Optional[TrafficMatrix]
    truth: TrafficMatrix
    window: Optional[int]
    error: str = ""
    failure: Optional[FailureReason] = None
    degradation: Optional[dict] = None

    @property
    def label(self) -> str:
        """Row label of the spec."""
        return self.spec.label

    @property
    def skipped(self) -> bool:
        """Whether the spec could not run."""
        return self.estimate is None


def estimate_method_specs(
    scenario: Scenario,
    specs: Sequence[MethodSpec],
    n_jobs: Optional[int] = 1,
    skip_errors: bool = False,
    task_timeout: Optional[float] = None,
    max_resubmissions: int = 1,
) -> list[SpecEstimate]:
    """Evaluate method specs into estimate matrices (the shared spec engine).

    This is the machinery behind :func:`run_method_specs` and the planning
    layer's :func:`repro.planning.sweep.failure_sweep`: snapshot specs share
    one consistent snapshot problem, series specs share one series problem
    per distinct window, and ``prior_from`` references resolve against
    earlier specs in the list.

    With ``n_jobs > 1`` (or ``None`` for all cores) the shared problems are
    still built exactly once, and the specs are evaluated concurrently in
    dependency waves: every spec whose ``prior_from`` estimate is already
    available runs in the current wave, so independent specs never wait on
    each other.  Each wave runs through
    :func:`repro.parallel.run_supervised_tasks`, so a worker crash or a
    task exceeding ``task_timeout`` seconds is resubmitted (up to
    ``max_resubmissions`` times) and finally re-executed serially instead
    of aborting the batch.  The results — values and order — are identical
    to the serial run.

    With ``skip_errors`` a failing spec yields a ``SpecEstimate`` whose
    ``estimate`` is ``None`` and whose ``failure`` carries the structured
    reason (specs whose prior source failed are skipped the same way, with
    ``stage="prior"``) instead of raising.
    """
    with telemetry.span(
        "experiment.specs", scenario=scenario.name, num_specs=len(specs)
    ):
        return _estimate_method_specs_impl(
            scenario, specs, n_jobs, skip_errors, task_timeout, max_resubmissions
        )


def _estimate_method_specs_impl(
    scenario: Scenario,
    specs: Sequence[MethodSpec],
    n_jobs: Optional[int],
    skip_errors: bool,
    task_timeout: Optional[float],
    max_resubmissions: int,
) -> list[SpecEstimate]:
    labels = [spec.label for spec in specs]
    prior_source: dict[int, int] = {}
    for position, spec in enumerate(specs):
        if spec.prior_from is None:
            continue
        earlier = [p for p in range(position) if labels[p] == spec.prior_from]
        if not earlier:
            raise EstimationError(
                f"spec {spec.label!r} references {spec.prior_from!r}, "
                "which has not run yet"
            )
        # The serial loop resolves a label to its most recent earlier run.
        prior_source[position] = earlier[-1]

    snapshot_truth = scenario.busy_mean_matrix()
    snapshot_problem = None
    series_cache: dict[int, tuple[Any, Any]] = {}

    def resolve_data(spec: MethodSpec) -> tuple[Any, Any, Optional[int]]:
        nonlocal snapshot_problem
        if spec.data == "snapshot":
            if snapshot_problem is None:
                # The default problem is built from the scenario's busy-period
                # data (measured scenarios substitute the polled counters);
                # the truth stays the true busy-period mean either way.
                snapshot_problem = scenario.snapshot_problem()
            return snapshot_problem, snapshot_truth, None
        window = _spec_window(spec, scenario)
        if window not in series_cache:
            series_cache[window] = (
                scenario.series_problem(window_length=window),
                scenario.busy_series().window(0, window).mean_matrix(),
            )
        problem, truth = series_cache[window]
        return problem, truth, window

    def problem_key(spec: MethodSpec) -> tuple[str, Optional[int]]:
        return (spec.data, _spec_window(spec, scenario))

    def skipped_prior(position: int) -> _SpecOutcome:
        source = prior_source[position]
        source_failure = results[source].failure
        return _SpecOutcome(
            vector=None,
            failure=FailureReason(
                exception="PriorUnavailable",
                message=(
                    f"prior spec {specs[position].prior_from!r} was skipped: "
                    f"{source_failure.message if source_failure else 'no estimate'}"
                ),
                spec=specs[position].label,
                stage="prior",
            ),
        )

    results: dict[int, _SpecOutcome] = {}
    jobs = effective_jobs(n_jobs, len(specs), error=EstimationError)
    if jobs == 1:
        for position, spec in enumerate(specs):
            problem, _, _ = resolve_data(spec)
            prior = None
            if position in prior_source:
                prior = results[prior_source[position]].vector
                if prior is None:
                    results[position] = skipped_prior(position)
                    continue
            results[position] = _evaluate_spec_guarded(spec, problem, prior, skip_errors)
    else:
        # The shared problems travel as one payload reference: fork workers
        # inherit them copy-on-write, spawn workers receive them once per
        # worker; waves then submit only the spec, a problem key and the
        # prior vector.
        shared_problems = {problem_key(spec): resolve_data(spec)[0] for spec in specs}
        problems_ref = share_payload(shared_problems)
        pending = list(range(len(specs)))
        try:
            while pending:
                wave = [
                    position
                    for position in pending
                    if prior_source.get(position, -1) in results
                    or position not in prior_source
                ]
                runnable: list[int] = []
                wave_priors: dict[int, Optional[np.ndarray]] = {}
                for position in wave:
                    prior = None
                    if position in prior_source:
                        prior = results[prior_source[position]].vector
                        if prior is None:
                            results[position] = skipped_prior(position)
                            continue
                    wave_priors[position] = prior
                    runnable.append(position)
                if runnable:
                    wave_results, _pool_report = run_supervised_tasks(
                        _evaluate_spec_pooled,
                        [
                            (
                                specs[position],
                                problems_ref,
                                problem_key(specs[position]),
                                wave_priors[position],
                                skip_errors,
                            )
                            for position in runnable
                        ],
                        jobs=jobs,
                        timeout=task_timeout,
                        max_resubmissions=max_resubmissions,
                    )
                    for position, outcome in zip(runnable, wave_results):
                        results[position] = outcome
                pending = [position for position in pending if position not in wave]
        finally:
            release_payload(problems_ref)

    estimates: list[SpecEstimate] = []
    for position, spec in enumerate(specs):
        problem, truth, window = resolve_data(spec)
        outcome = results[position]
        estimates.append(
            SpecEstimate(
                spec=spec,
                estimate=(
                    None
                    if outcome.vector is None
                    else TrafficMatrix(problem.pairs, outcome.vector)
                ),
                truth=truth,
                window=window,
                error=outcome.failure.describe() if outcome.failure else "",
                failure=outcome.failure,
                degradation=outcome.degradation,
            )
        )
    return estimates


def run_method_specs(
    scenario: Scenario,
    specs: Sequence[MethodSpec],
    n_jobs: Optional[int] = 1,
    skip_errors: bool = False,
    task_timeout: Optional[float] = None,
) -> list[ExperimentRecord]:
    """Run every method spec on ``scenario`` and record its MRE.

    Thin scoring wrapper over :func:`estimate_method_specs` (see there for
    the data-sharing and ``n_jobs`` wave semantics); the records — values
    and order — are identical between serial and parallel runs.  With
    ``skip_errors`` a failing spec becomes a record with ``NaN`` MRE and a
    structured ``failure`` instead of raising.
    """
    records: list[ExperimentRecord] = []
    for result in estimate_method_specs(
        scenario,
        specs,
        n_jobs=n_jobs,
        skip_errors=skip_errors,
        task_timeout=task_timeout,
    ):
        records.append(
            ExperimentRecord(
                scenario=scenario.name,
                method=result.label,
                mre=(
                    float("nan")
                    if result.skipped
                    else mean_relative_error(result.estimate, result.truth)
                ),
                parameters=_recorded_parameters(result.spec, result.window),
                failure=result.failure,
                degradation=result.degradation,
            )
        )
    return records


def vardi_table(
    scenario: Scenario,
    poisson_weights: Sequence[float] = (0.01, 1.0),
    window_length: int = 50,
    n_jobs: Optional[int] = 1,
) -> list[ExperimentRecord]:
    """Table 1: Vardi MRE for the given ``sigma^{-2}`` values on a K-sample window."""
    window_length = min(window_length, scenario.busy_length)
    specs = [
        MethodSpec(
            label="Vardi",
            estimator="vardi",
            params={"poisson_weight": float(weight)},
            data="series",
            window=window_length,
        )
        for weight in poisson_weights
    ]
    return run_method_specs(scenario, specs, n_jobs=n_jobs)


def method_comparison(
    scenario: Scenario,
    regularization: float = 1000.0,
    small_regularization: float = 0.01,
    fanout_window: int = 10,
    vardi_window: int = 50,
    include_vardi: bool = True,
    specs: Optional[Sequence[MethodSpec]] = None,
    n_jobs: Optional[int] = 1,
) -> list[ExperimentRecord]:
    """Table 2: best-effort MRE of every method on one scenario.

    With the default ``specs`` this reproduces the paper's Table 2 (see
    :func:`default_method_specs`); custom spec lists run any registered
    method mix without touching this runner.  ``n_jobs`` fans the specs out
    over a process pool (see :func:`run_method_specs`).
    """
    if specs is None:
        specs = default_method_specs(
            regularization=regularization,
            small_regularization=small_regularization,
            fanout_window=min(fanout_window, scenario.busy_length),
            vardi_window=min(vardi_window, scenario.busy_length),
            include_vardi=include_vardi,
        )
    return run_method_specs(scenario, specs, n_jobs=n_jobs)


def summary_table(records: Sequence[ExperimentRecord]) -> dict[str, dict[str, float]]:
    """Arrange experiment records as ``{method: {scenario: mre}}`` (Table 2 layout)."""
    table: dict[str, dict[str, float]] = {}
    for record in records:
        table.setdefault(record.method, {})[record.scenario] = record.mre
    return table


@dataclass(frozen=True)
class RobustnessRecord:
    """MRE of one method on one scenario at one measurement-noise level.

    Attributes
    ----------
    scenario:
        Scenario name.
    method:
        Registry name of the estimation method.
    jitter_std_seconds:
        SNMP response-jitter standard deviation of the collection run.
    loss_probability:
        Per-poll UDP loss probability of the collection run.
    mre:
        Mean relative error of the method's mean estimate against the true
        busy-window mean (``NaN`` when the method was skipped).
    error:
        Why the method was skipped (empty when it ran).
    failure:
        Structured skip reason (``None`` when the method ran).
    degradation:
        Degradation-report dict from the method's diagnostics
        (supervised/sharded methods), ``None`` for a clean run.
    """

    scenario: str
    method: str
    jitter_std_seconds: float
    loss_probability: float
    mre: float
    error: str = ""
    failure: Optional[FailureReason] = None
    degradation: Optional[dict] = None

    @property
    def skipped(self) -> bool:
        """Whether the method could not run at this noise level."""
        return bool(self.error)


def _robustness_cell(
    scenario: Scenario,
    jitter: float,
    loss: float,
    methods: Optional[Sequence[Union[str, tuple[str, Mapping]]]],
    window_length: Optional[int],
    num_pollers: int,
    seed: Optional[int],
    skip_errors: bool,
    fault_plan: Optional[Any] = None,
    counter_bits: int = 64,
) -> list[RobustnessRecord]:
    """One ``(scenario, jitter, loss)`` grid cell, as its own unit of work.

    Module-level so a process pool can pickle it; the serial loop calls it
    directly, which is what makes parallel and serial runs byte-identical.
    """
    with telemetry.span(
        "robustness.cell", scenario=scenario.name, jitter=float(jitter), loss=float(loss)
    ):
        return _robustness_cell_impl(
            scenario,
            jitter,
            loss,
            methods,
            window_length,
            num_pollers,
            seed,
            skip_errors,
            fault_plan,
            counter_bits,
        )


def _robustness_cell_impl(
    scenario: Scenario,
    jitter: float,
    loss: float,
    methods: Optional[Sequence[Union[str, tuple[str, Mapping]]]],
    window_length: Optional[int],
    num_pollers: int,
    seed: Optional[int],
    skip_errors: bool,
    fault_plan: Optional[Any],
    counter_bits: int,
) -> list[RobustnessRecord]:
    measured = scenario.measured(
        jitter_std_seconds=float(jitter),
        loss_probability=float(loss),
        num_pollers=num_pollers,
        seed=seed,
        fault_plan=fault_plan,
        counter_bits=counter_bits,
    )
    return [
        RobustnessRecord(
            scenario=scenario.name,
            method=sweep_record.method,
            jitter_std_seconds=float(jitter),
            loss_probability=float(loss),
            mre=sweep_record.mre,
            error=sweep_record.error,
            failure=sweep_record.failure,
            degradation=sweep_record.degradation,
        )
        for sweep_record in measured.sweep(
            methods=methods,
            window_length=window_length,
            skip_errors=skip_errors,
        )
    ]


def robustness_sweep(
    scenarios: Union[Scenario, Sequence[Scenario]],
    jitter_values: Sequence[float] = (0.0, 2.0, 10.0),
    loss_values: Sequence[float] = (0.0, 0.02, 0.1),
    methods: Optional[Sequence[Union[str, tuple[str, Mapping]]]] = None,
    window_length: Optional[int] = None,
    num_pollers: int = 3,
    seed: Optional[int] = 0,
    skip_errors: bool = True,
    n_jobs: Optional[int] = 1,
    fault_plan: Optional[Any] = None,
    counter_bits: int = 64,
    task_timeout: Optional[float] = None,
    max_resubmissions: int = 1,
) -> list[RobustnessRecord]:
    """Score estimation methods on measured data across noise levels.

    For every scenario and every ``(jitter, loss)`` combination this builds
    a measured-data view with :meth:`~repro.datasets.scenarios.Scenario.measured`
    — running the full SNMP collection pipeline over the day series — and
    sweeps the requested methods (default: every registered estimator) over
    the measured busy window, scoring each against the *true* series.  The
    result quantifies how gracefully each method degrades as the link-load
    data becomes inconsistent, the sensitivity study the paper leaves open.

    Parameters
    ----------
    scenarios:
        One scenario or a sequence of them (e.g. europe / america / abilene).
    jitter_values, loss_values:
        The measurement-noise grid (the full cross product is evaluated;
        jitter in seconds of response-time standard deviation, loss as the
        per-poll UDP loss probability).
    methods, window_length, skip_errors:
        Forwarded to :meth:`~repro.datasets.scenarios.Scenario.sweep`.
    num_pollers, seed:
        Forwarded to the collection pipeline; the same seed is reused at
        every noise level so that grid cells differ only in the noise knobs.
    n_jobs:
        Worker processes for the grid cells (``1`` = the serial loop,
        ``None`` = all cores).  Every cell is independent — same seed, own
        collection run — so the parallel records are identical to the
        serial ones, in the same grid order.
    fault_plan, counter_bits:
        Forwarded to :meth:`~repro.datasets.scenarios.Scenario.measured`:
        a :class:`~repro.resilience.faults.FaultPlan` corrupts every cell's
        collection run the same deterministic way, and ``counter_bits=32``
        collects through wrapping Counter32 counters.
    task_timeout, max_resubmissions:
        Pool supervision knobs (see
        :func:`repro.parallel.run_supervised_tasks`): per-cell timeout in
        seconds and resubmission budget before the parent re-runs a cell
        serially.
    """
    if isinstance(scenarios, Scenario):
        scenarios = [scenarios]
    cells = [
        (scenario, float(jitter), float(loss))
        for scenario in scenarios
        for jitter in jitter_values
        for loss in loss_values
    ]
    jobs = effective_jobs(n_jobs, len(cells), error=EstimationError)
    with telemetry.span("robustness.sweep", cells=len(cells), jobs=jobs):
        cell_records, _pool_report = run_supervised_tasks(
            _robustness_cell,
            [
                (
                    scenario,
                    jitter,
                    loss,
                    methods,
                    window_length,
                    num_pollers,
                    seed,
                    skip_errors,
                    fault_plan,
                    counter_bits,
                )
                for scenario, jitter, loss in cells
            ],
            jobs=jobs,
            timeout=task_timeout,
            max_resubmissions=max_resubmissions,
        )
    return [record for cell in cell_records for record in cell]


def robustness_table(
    records: Sequence[RobustnessRecord],
) -> dict[str, dict[str, dict[tuple[float, float], float]]]:
    """Arrange robustness records as ``{scenario: {method: {(jitter, loss): mre}}}``."""
    table: dict[str, dict[str, dict[tuple[float, float], float]]] = {}
    for record in records:
        table.setdefault(record.scenario, {}).setdefault(record.method, {})[
            (record.jitter_std_seconds, record.loss_probability)
        ] = record.mre
    return table
