"""Experiment runners for the paper's tables.

* :func:`vardi_table` — Table 1: Vardi MRE for ``sigma^{-2} in {0.01, 1}``
  on the busy-period series (K = 50 samples);
* :func:`method_comparison` / :func:`summary_table` — Table 2: the best MRE
  achieved by every method on a scenario;
* :class:`ExperimentRecord` — a small result container used by the
  benchmark harness and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.datasets.scenarios import Scenario
from repro.estimation.base import Estimator
from repro.estimation.bayesian import BayesianEstimator
from repro.estimation.entropy import EntropyEstimator
from repro.estimation.fanout import FanoutEstimator
from repro.estimation.gravity import SimpleGravityEstimator
from repro.estimation.priors import worst_case_bound_prior
from repro.estimation.vardi import VardiEstimator
from repro.estimation.worstcase import WorstCaseBoundsEstimator
from repro.evaluation.metrics import mean_relative_error

__all__ = ["ExperimentRecord", "vardi_table", "method_comparison", "summary_table"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One (scenario, method) MRE measurement.

    Attributes
    ----------
    scenario:
        Scenario name (``"europe"`` / ``"america"``).
    method:
        Method label as it appears in the paper's Table 2.
    mre:
        Mean relative error achieved.
    parameters:
        Free-form parameter description (regularisation value, window, ...).
    """

    scenario: str
    method: str
    mre: float
    parameters: dict[str, float] = field(default_factory=dict)


def vardi_table(
    scenario: Scenario,
    poisson_weights: Sequence[float] = (0.01, 1.0),
    window_length: int = 50,
) -> list[ExperimentRecord]:
    """Table 1: Vardi MRE for the given ``sigma^{-2}`` values on a K-sample window."""
    window_length = min(window_length, scenario.busy_length)
    problem = scenario.series_problem(window_length=window_length)
    truth = scenario.busy_series().window(0, window_length).mean_matrix()
    records = []
    for weight in poisson_weights:
        estimate = VardiEstimator(poisson_weight=float(weight)).estimate(problem).estimate
        records.append(
            ExperimentRecord(
                scenario=scenario.name,
                method="Vardi",
                mre=mean_relative_error(estimate, truth),
                parameters={"poisson_weight": float(weight), "window": float(window_length)},
            )
        )
    return records


def method_comparison(
    scenario: Scenario,
    regularization: float = 1000.0,
    small_regularization: float = 0.01,
    fanout_window: int = 10,
    vardi_window: int = 50,
    include_vardi: bool = True,
) -> list[ExperimentRecord]:
    """Table 2: best-effort MRE of every method on one scenario.

    The parameter defaults follow the paper: the regularised methods use a
    large regularisation value (1000), the WCB prior is evaluated both alone
    and inside the Bayesian method, the fanout method uses a window of 10
    snapshots, and Vardi uses the 50-sample busy period with
    ``sigma^{-2} = 0.01`` (its better setting in Table 1).
    """
    truth = scenario.busy_mean_matrix()
    snapshot_problem = scenario.snapshot_problem(truth)
    records: list[ExperimentRecord] = []

    def record(method: str, estimate, **parameters: float) -> None:
        records.append(
            ExperimentRecord(
                scenario=scenario.name,
                method=method,
                mre=mean_relative_error(estimate, truth),
                parameters=parameters,
            )
        )

    wcb_estimator = WorstCaseBoundsEstimator()
    wcb_result = wcb_estimator.estimate(snapshot_problem)
    record("Worst-case bound prior", wcb_result.estimate)
    wcb_prior = wcb_result.vector

    gravity = SimpleGravityEstimator().estimate(snapshot_problem)
    record("Simple gravity prior", gravity.estimate)

    entropy = EntropyEstimator(regularization=regularization, prior="gravity").estimate(
        snapshot_problem
    )
    record("Entropy w. gravity prior", entropy.estimate, regularization=regularization)

    bayes_gravity = BayesianEstimator(regularization=regularization, prior="gravity").estimate(
        snapshot_problem
    )
    record("Bayes w. gravity prior", bayes_gravity.estimate, regularization=regularization)

    bayes_wcb = BayesianEstimator(regularization=regularization, prior=wcb_prior).estimate(
        snapshot_problem
    )
    record("Bayes w. WCB prior", bayes_wcb.estimate, regularization=regularization)

    fanout_window = min(fanout_window, scenario.busy_length)
    fanout_problem = scenario.series_problem(window_length=fanout_window)
    fanout_truth = scenario.busy_series().window(0, fanout_window).mean_matrix()
    fanout = FanoutEstimator(window_length=fanout_window).estimate(fanout_problem)
    records.append(
        ExperimentRecord(
            scenario=scenario.name,
            method="Fanout",
            mre=mean_relative_error(fanout.estimate, fanout_truth),
            parameters={"window": float(fanout_window)},
        )
    )

    if include_vardi:
        vardi_window = min(vardi_window, scenario.busy_length)
        vardi_problem = scenario.series_problem(window_length=vardi_window)
        vardi_truth = scenario.busy_series().window(0, vardi_window).mean_matrix()
        vardi = VardiEstimator(poisson_weight=small_regularization).estimate(vardi_problem)
        records.append(
            ExperimentRecord(
                scenario=scenario.name,
                method="Vardi",
                mre=mean_relative_error(vardi.estimate, vardi_truth),
                parameters={"poisson_weight": small_regularization, "window": float(vardi_window)},
            )
        )
    return records


def summary_table(records: Sequence[ExperimentRecord]) -> dict[str, dict[str, float]]:
    """Arrange experiment records as ``{method: {scenario: mre}}`` (Table 2 layout)."""
    table: dict[str, dict[str, float]] = {}
    for record in records:
        table.setdefault(record.method, {})[record.scenario] = record.mre
    return table
