"""Evaluation framework: metrics, figure data generators and table runners.

* :mod:`~repro.evaluation.metrics` — the MRE (Equation 8), its demand
  threshold rule, RMSE and ranking correlation;
* :mod:`~repro.evaluation.figures` — one data-series generator per figure of
  the paper;
* :mod:`~repro.evaluation.experiments` — Table 1 / Table 2 runners, the
  measurement-noise robustness sweep, and the record containers used by the
  benchmark harness.
"""

from repro.evaluation.experiments import (
    ExperimentRecord,
    MethodSpec,
    RobustnessRecord,
    SpecEstimate,
    default_method_specs,
    estimate_method_specs,
    method_comparison,
    robustness_sweep,
    robustness_table,
    run_method_specs,
    summary_table,
    vardi_table,
)
from repro.evaluation.metrics import (
    demand_ranking_correlation,
    mean_relative_error,
    relative_errors,
    root_mean_square_error,
    top_demand_threshold,
)

__all__ = [
    "mean_relative_error",
    "relative_errors",
    "root_mean_square_error",
    "demand_ranking_correlation",
    "top_demand_threshold",
    "ExperimentRecord",
    "MethodSpec",
    "SpecEstimate",
    "default_method_specs",
    "estimate_method_specs",
    "run_method_specs",
    "vardi_table",
    "method_comparison",
    "summary_table",
    "RobustnessRecord",
    "robustness_sweep",
    "robustness_table",
]
