"""Exception hierarchy for the ``repro`` traffic-matrix estimation library.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.  More
specific subclasses communicate *which* subsystem rejected the input: the
topology model, the routing substrate, the traffic/measurement generators,
the numerical solvers or the estimation methods themselves.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TopologyError(ReproError):
    """Raised when a network topology is malformed or inconsistent.

    Examples include duplicate node or link identifiers, links referencing
    unknown nodes, non-positive capacities, or attempts to extract a region
    that contains no nodes.
    """


class RoutingError(ReproError):
    """Raised when routing cannot be computed.

    Typical causes are a disconnected topology (no path between a source and
    destination that must communicate), a CSPF request that cannot be placed
    because no path has the required free bandwidth, or an attempt to build a
    routing matrix from paths that traverse unknown links.
    """


class TrafficError(ReproError):
    """Raised when traffic-matrix data is invalid.

    Examples include negative demands, a traffic matrix whose shape does not
    match the node set of the network, or a time series whose snapshots have
    inconsistent dimensions.
    """


class MeasurementError(ReproError):
    """Raised when measured data (link loads, SNMP samples) is inconsistent.

    Examples include a link-load vector whose length does not match the
    routing matrix, or a polling schedule with a non-positive interval.
    """


class EstimationError(ReproError):
    """Raised when an estimation method receives invalid input or fails.

    Examples include dimension mismatches between the routing matrix, the
    link-load vector and the prior, non-positive regularisation parameters,
    or an optimisation subproblem that does not converge.
    """


class PlanningError(ReproError):
    """Raised when a traffic-engineering planning query is invalid.

    Examples include failure cases referencing unknown links or nodes, a
    load projection whose traffic matrix does not match the routing matrix's
    pair ordering, or a failure sweep asked to score a method that produced
    no estimate.
    """


class StreamingError(ReproError):
    """Raised by the streaming estimation daemon on invalid input or state.

    Examples include poll rounds whose object set does not match the
    daemon's configuration, a checkpoint whose version or fingerprint does
    not match the restoring process, or an attempt to resume a stream at a
    round the checkpoint has already consumed.
    """


class SolverError(ReproError):
    """Raised by the numerical substrate when an optimisation problem fails.

    This covers infeasible linear programs, iteration limits being exceeded
    in the projected-gradient solvers, and singular equality constraints in
    the quadratic-programming solver.
    """


class BudgetExceededError(SolverError):
    """Raised when a cooperative :class:`repro.resilience.SolverBudget` runs out.

    Solver loops call :func:`repro.resilience.budget_tick` once per
    iteration; when the innermost active budget has exhausted its wall-clock
    or iteration allowance the tick raises this error, which the
    :class:`~repro.resilience.SupervisedEstimator` treats like any other
    solver failure (retry, then fall back down the chain).

    The structured accounting rides along so degradation records are
    actionable: ``elapsed_seconds`` and ``ticks`` say how much the attempt
    consumed, ``max_seconds`` / ``max_iterations`` echo the configured
    limits (``None`` for an unbounded dimension).  The message carries the
    same numbers, so the detail survives pickling across process pools
    (exception pickling keeps only ``args``).
    """

    def __init__(
        self,
        message: str = "solver budget exceeded",
        *,
        elapsed_seconds: "float | None" = None,
        ticks: "int | None" = None,
        max_seconds: "float | None" = None,
        max_iterations: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds
        self.ticks = ticks
        self.max_seconds = max_seconds
        self.max_iterations = max_iterations

    def budget_details(self) -> dict[str, "float | int | None"]:
        """The structured accounting as a dict (for reports and spans)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "ticks": self.ticks,
            "max_seconds": self.max_seconds,
            "max_iterations": self.max_iterations,
        }
