"""Cooperative solver budgets.

A :class:`SolverBudget` bounds how long an estimation attempt may run —
wall-clock seconds, iterations, or both — without threads, signals or
subprocess machinery.  The budget is *cooperative*: the inner solver loops
(the entropy Newton solve, the FISTA projected gradient, the IPF scaling
loops) call :func:`budget_tick` once per iteration, and the tick raises
:class:`~repro.errors.BudgetExceededError` when the innermost active budget
is spent.  When no budget is active the tick is a cheap no-op, so the
solvers pay nothing outside supervised runs.

Budgets nest on a thread-local stack; the innermost one wins.  That lets a
:class:`~repro.resilience.SupervisedEstimator` give each fallback attempt
its own allowance even when the caller already runs under a wider budget.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import BudgetExceededError
from repro.telemetry.metrics import record_iterations
from repro.telemetry.spans import _STATE as _TELEMETRY

__all__ = ["SolverBudget", "current_budget", "budget_tick"]


class _BudgetStack(threading.local):
    def __init__(self) -> None:
        self.stack: list["SolverBudget"] = []


_ACTIVE = _BudgetStack()


class SolverBudget:
    """Context manager bounding a solver run by time and/or iterations.

    Parameters
    ----------
    max_seconds:
        Wall-clock allowance measured with ``time.monotonic``; ``None``
        means unbounded.
    max_iterations:
        Total :func:`budget_tick` counts allowed across every solver loop
        that runs under this budget; ``None`` means unbounded.
    """

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
    ) -> None:
        if max_seconds is not None and max_seconds <= 0:
            raise ValueError("max_seconds must be positive (or None)")
        if max_iterations is not None and max_iterations <= 0:
            raise ValueError("max_iterations must be positive (or None)")
        self.max_seconds = max_seconds
        self.max_iterations = max_iterations
        self.ticks = 0
        self._started: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "SolverBudget":
        self._started = time.monotonic()
        self.ticks = 0
        _ACTIVE.stack.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        stack = _ACTIVE.stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate out-of-order exits rather than corrupting the stack
            try:
                stack.remove(self)
            except ValueError:
                pass

    # -- accounting -----------------------------------------------------

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return time.monotonic() - self._started

    def remaining_seconds(self) -> Optional[float]:
        if self.max_seconds is None:
            return None
        return self.max_seconds - self.elapsed()

    def exhausted_reason(self) -> Optional[str]:
        """Why the budget is spent, or ``None`` while allowance remains."""
        if self.max_iterations is not None and self.ticks >= self.max_iterations:
            return f"iteration budget exhausted ({self.ticks} >= {self.max_iterations})"
        if self.max_seconds is not None and self.elapsed() >= self.max_seconds:
            return (
                f"time budget exhausted ({self.elapsed():.3f}s >= "
                f"{self.max_seconds:.3f}s)"
            )
        return None

    def tick(self, count: int = 1) -> None:
        self.ticks += count
        reason = self.exhausted_reason()
        if reason is not None:
            elapsed = self.elapsed()
            # The *message* (which lands in DegradationReport details and
            # must stay identical between serial and parallel runs) only
            # mentions wall-clock for time trips, where the trip itself is
            # already timing-dependent; iteration trips keep a fully
            # deterministic message.  The structured attributes always
            # carry the measured elapsed seconds for in-process consumers.
            consumed = f"consumed {self.ticks} ticks"
            if reason.startswith("time budget"):
                consumed = f"consumed {self.ticks} ticks in {elapsed:.3f}s"
            limits = (
                f"max_seconds={self.max_seconds!r}, "
                f"max_iterations={self.max_iterations!r}"
            )
            raise BudgetExceededError(
                f"solver budget exceeded: {reason}; {consumed} (limits: {limits})",
                elapsed_seconds=elapsed,
                ticks=self.ticks,
                max_seconds=self.max_seconds,
                max_iterations=self.max_iterations,
            )


def current_budget() -> Optional[SolverBudget]:
    """The innermost active budget on this thread, or ``None``."""
    stack = _ACTIVE.stack
    return stack[-1] if stack else None


def budget_tick(count: int = 1) -> None:
    """Charge ``count`` iterations against the innermost active budget.

    A no-op when no budget is active, so unsupervised solver runs pay only
    an attribute lookup and a truthiness check per iteration.

    The tick call sites double as the telemetry layer's iteration probes:
    when telemetry is enabled each tick also feeds the
    ``solver.iterations`` counter and the innermost open span, so traces
    show how many iterations every solve burned without a second set of
    hooks in the hot loops.
    """
    stack = _ACTIVE.stack
    if stack:
        stack[-1].tick(count)
    if _TELEMETRY.enabled:
        record_iterations(count)
