"""Seeded, composable fault injection for the measurement and pool layers.

A :class:`FaultPlan` is a seed plus an ordered tuple of fault events.  The
measurement events rewrite a :class:`~repro.measurement.snmp.PollMatrix`
*after* the clean schedule ran — exactly where the real failure modes live
(the UDP datagram is lost, the router reboots, the 32-bit counter wraps,
the collector's clock drifts) — so the same seeded plan reproduces the same
corrupted archive on every run.  The optional :class:`WorkerFaultPlan`
injects crash/hang behaviour into ``repro.parallel`` pool workers.

The measurement layer *duck-types* plans (it calls ``apply_to_polls`` /
``for_poller`` and never imports this module), so resilience stays a leaf
package and the import graph stays acyclic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # typing only; runtime stays import-light
    from repro.measurement.snmp import PollMatrix

__all__ = [
    "FaultPlan",
    "PollLossBurst",
    "CounterReset",
    "Counter32Wrap",
    "ClockSkew",
    "StuckCounter",
    "CollectorOutage",
    "WorkerFaultPlan",
]


def _row_slice(start_round: int, num_rounds: int, total_rounds: int) -> slice:
    start = max(0, min(int(start_round), total_rounds))
    stop = max(start, min(start + int(num_rounds), total_rounds))
    return slice(start, stop)


def _columns(
    polls: "PollMatrix", objects: Optional[tuple[str, ...]]
) -> np.ndarray:
    """Column indices for ``objects``; ``None`` means every column.

    Names the poll matrix does not track are silently skipped — a collector
    splits objects across pollers, so a plan naming all faulty links applies
    cleanly to each poller's subset.
    """
    if objects is None:
        return np.arange(polls.num_objects)
    present = {name: col for col, name in enumerate(polls.object_names)}
    return np.array(
        [present[name] for name in objects if name in present], dtype=int
    )


class _Arrays:
    """Mutable scratch copies of a poll matrix's arrays while events apply."""

    def __init__(self, polls: "PollMatrix") -> None:
        self.source = polls
        self.response_times = polls.response_times.copy()
        self.counters = polls.counters.copy()
        self.lost = polls.lost.copy()
        self.counter_bits = polls.counter_bits

    def finish(self) -> "PollMatrix":
        return dataclasses.replace(
            self.source,
            response_times=self.response_times,
            counters=self.counters,
            lost=self.lost,
            counter_bits=self.counter_bits,
        )


@dataclass(frozen=True)
class PollLossBurst:
    """A burst of UDP poll loss: rounds ``[start, start + num)`` go dark.

    ``fraction`` < 1 loses each (round, object) poll independently with that
    probability, drawn from the plan's seeded generator; ``objects = None``
    means every object the poller tracks.
    """

    start_round: int
    num_rounds: int
    fraction: float = 1.0
    objects: Optional[tuple[str, ...]] = None

    def apply(self, arrays: _Arrays, rng: np.random.Generator) -> None:
        rows = _row_slice(self.start_round, self.num_rounds, arrays.lost.shape[0])
        cols = _columns(arrays.source, self.objects)
        if cols.size == 0 or rows.start == rows.stop:
            return
        if self.fraction >= 1.0:
            arrays.lost[rows, cols] = True
        else:
            shape = (rows.stop - rows.start, cols.size)
            arrays.lost[rows, cols] |= rng.random(shape) < self.fraction


@dataclass(frozen=True)
class CounterReset:
    """A router reboot: counters restart from zero at ``round_index``.

    Every later round keeps its true increments, shifted down — exactly what
    a reloaded line card reports.
    """

    round_index: int
    objects: Optional[tuple[str, ...]] = None

    def apply(self, arrays: _Arrays, rng: np.random.Generator) -> None:
        total = arrays.counters.shape[0]
        row = max(0, min(int(self.round_index), total - 1))
        cols = _columns(arrays.source, self.objects)
        if cols.size == 0:
            return
        # uint64 subtraction wraps, reproducing the reboot-to-zero restart.
        arrays.counters[row:, cols] = (
            arrays.counters[row:, cols] - arrays.counters[row, cols]
        )


@dataclass(frozen=True)
class Counter32Wrap:
    """Downgrade the archive to 32-bit counters (legacy ifInOctets).

    Counter values are reduced modulo 2**32 and the matrix is tagged
    ``counter_bits = 32`` so :func:`~repro.measurement.snmp.rates_from_poll_matrix`
    applies wrap-aware deltas.
    """

    objects: Optional[tuple[str, ...]] = None

    def apply(self, arrays: _Arrays, rng: np.random.Generator) -> None:
        cols = _columns(arrays.source, self.objects)
        if cols.size == 0:
            return
        arrays.counters[:, cols] %= np.uint64(2**32)
        arrays.counter_bits = 32


@dataclass(frozen=True)
class ClockSkew:
    """The poller's clock drifts by ``offset_seconds`` from ``start_round`` on."""

    offset_seconds: float
    start_round: int = 0
    objects: Optional[tuple[str, ...]] = None

    def apply(self, arrays: _Arrays, rng: np.random.Generator) -> None:
        total = arrays.response_times.shape[0]
        row = max(0, min(int(self.start_round), total))
        cols = _columns(arrays.source, self.objects)
        if cols.size == 0:
            return
        arrays.response_times[row:, cols] += float(self.offset_seconds)


@dataclass(frozen=True)
class StuckCounter:
    """A counter freezes at its last value for ``num_rounds`` rounds.

    During the window deltas read as zero (phantom silence); the first round
    after the window reports the accumulated catch-up burst.
    """

    start_round: int
    num_rounds: int
    objects: Optional[tuple[str, ...]] = None

    def apply(self, arrays: _Arrays, rng: np.random.Generator) -> None:
        rows = _row_slice(self.start_round, self.num_rounds, arrays.counters.shape[0])
        cols = _columns(arrays.source, self.objects)
        if cols.size == 0 or rows.start == rows.stop:
            return
        arrays.counters[rows, cols] = arrays.counters[rows.start, cols]


@dataclass(frozen=True)
class CollectorOutage:
    """One poller of a :class:`~repro.measurement.collector.DistributedCollector`
    goes down for ``num_rounds`` rounds: every object it polls reads lost.

    Resolved by :meth:`FaultPlan.for_poller` into a full
    :class:`PollLossBurst` on the affected poller; inert when a plan is
    applied to a standalone poll matrix.
    """

    poller_index: int
    start_round: int
    num_rounds: int

    def apply(self, arrays: _Arrays, rng: np.random.Generator) -> None:
        return  # only meaningful through FaultPlan.for_poller


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic crash/hang behaviour for pool workers.

    ``crash_tasks`` / ``hang_tasks`` are task indices; a listed task crashes
    (``os._exit``) or hangs (``sleep(hang_seconds)``) while the submission
    round number is below ``crash_rounds`` / ``hang_rounds``.  With the
    default of 1 the fault fires only on the first attempt, so bounded
    resubmission recovers; raise the round counts to force the serial
    re-execution path.  Faults never fire in the parent process.
    """

    crash_tasks: tuple[int, ...] = ()
    hang_tasks: tuple[int, ...] = ()
    hang_seconds: float = 30.0
    crash_rounds: int = 1
    hang_rounds: int = 1

    def fires(self, task_index: int, round_number: int) -> Optional[str]:
        if task_index in self.crash_tasks and round_number < self.crash_rounds:
            return "crash"
        if task_index in self.hang_tasks and round_number < self.hang_rounds:
            return "hang"
        return None


MeasurementFault = Union[
    PollLossBurst, CounterReset, Counter32Wrap, ClockSkew, StuckCounter,
    CollectorOutage,
]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of faults, reproducible on every run.

    Attributes
    ----------
    seed:
        Seeds the generator used by probabilistic events; combined with the
        per-application ``salt`` (the collector passes each poller's index)
        so distinct pollers draw distinct but reproducible streams.
    events:
        Measurement fault events, applied in order.
    worker:
        Optional :class:`WorkerFaultPlan` for the pool layer; install it
        with :func:`repro.parallel.install_worker_faults`.
    """

    seed: int = 0
    events: tuple[MeasurementFault, ...] = field(default_factory=tuple)
    worker: Optional[WorkerFaultPlan] = None

    def apply_to_polls(self, polls: "PollMatrix", salt: int = 0) -> "PollMatrix":
        """Return ``polls`` with every measurement event applied in order."""
        if not self.events:
            return polls
        rng = np.random.default_rng((self.seed, salt))
        arrays = _Arrays(polls)
        for event in self.events:
            event.apply(arrays, rng)
        return arrays.finish()

    def for_poller(self, poller_index: int) -> "FaultPlan":
        """The plan as seen by one poller of a distributed collector.

        :class:`CollectorOutage` events for this poller become full
        :class:`PollLossBurst` events; outages of other pollers are dropped.
        """
        events: list[MeasurementFault] = []
        for event in self.events:
            if isinstance(event, CollectorOutage):
                if event.poller_index == poller_index:
                    events.append(
                        PollLossBurst(
                            start_round=event.start_round,
                            num_rounds=event.num_rounds,
                        )
                    )
            else:
                events.append(event)
        return dataclasses.replace(self, events=tuple(events))

    def describe(self) -> str:
        names = ", ".join(type(event).__name__ for event in self.events) or "no events"
        suffix = " + worker faults" if self.worker is not None else ""
        return f"FaultPlan(seed={self.seed}: {names}{suffix})"


def fault_plan(
    *events: MeasurementFault,
    seed: int = 0,
    worker: Optional[WorkerFaultPlan] = None,
) -> FaultPlan:
    """Convenience constructor: ``fault_plan(PollLossBurst(...), seed=3)``."""
    return FaultPlan(seed=seed, events=tuple(events), worker=worker)
