"""Fault injection and graceful degradation for the estimation pipeline.

Three pieces, designed to compose:

* :mod:`repro.resilience.faults` — seeded :class:`FaultPlan`\\ s that
  corrupt poll matrices the way real collection infrastructure fails
  (loss bursts, counter resets, Counter32 wraps, clock skew, stuck
  counters, collector outages) plus :class:`WorkerFaultPlan` crash/hang
  injection for pool workers;
* :mod:`repro.resilience.budget` — cooperative :class:`SolverBudget`\\ s
  ticked inside the solver hot loops;
* :mod:`repro.resilience.supervisor` — the registry-integrated
  :class:`SupervisedEstimator` with retries, budgets and fallback chains,
  reporting every degradation through a :class:`DegradationReport`.

The measurement and pool layers *duck-type* plans rather than importing
this package, so resilience stays a leaf in the import graph.
:class:`SupervisedEstimator` is exported lazily (PEP 562) because it pulls
in the estimation package.
"""

from __future__ import annotations

from repro.resilience.budget import SolverBudget, budget_tick, current_budget
from repro.resilience.faults import (
    ClockSkew,
    CollectorOutage,
    Counter32Wrap,
    CounterReset,
    FaultPlan,
    PollLossBurst,
    StuckCounter,
    WorkerFaultPlan,
    fault_plan,
)
from repro.resilience.report import (
    DegradationEvent,
    DegradationReport,
    FailureReason,
)

__all__ = [
    "SolverBudget",
    "budget_tick",
    "current_budget",
    "FaultPlan",
    "fault_plan",
    "PollLossBurst",
    "CounterReset",
    "Counter32Wrap",
    "ClockSkew",
    "StuckCounter",
    "CollectorOutage",
    "WorkerFaultPlan",
    "FailureReason",
    "DegradationEvent",
    "DegradationReport",
    "SupervisedEstimator",
]


def __getattr__(name: str):
    if name == "SupervisedEstimator":
        from repro.resilience.supervisor import SupervisedEstimator

        return SupervisedEstimator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
