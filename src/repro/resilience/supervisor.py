"""Supervised estimation: budgets, retries and declared fallback chains.

:class:`SupervisedEstimator` wraps any registered estimation method with
the failure policy a production deployment needs spelled out:

* a cooperative :class:`~repro.resilience.budget.SolverBudget` bounding
  each attempt by wall-clock time and/or solver iterations (the entropy
  Newton loop, the FISTA projected gradient and the IPF scaling loops all
  tick the budget);
* bounded retry of the primary method with deterministically perturbed
  warm starts;
* a declared fallback chain (e.g. ``entropy → tomogravity → gravity``)
  walked until some method returns an estimate.

Whatever succeeds is returned under the supervisor's own method name with
a structured :class:`~repro.resilience.report.DegradationReport` in the
diagnostics, so a degraded result *says so* instead of dying or lying.
The report is computed deterministically inside the estimation call, which
keeps serial and parallel experiment records identical.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from typing import ContextManager, Mapping, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.errors import BudgetExceededError, EstimationError, SolverError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.registry import get_estimator, register
from repro.resilience.budget import SolverBudget
from repro.resilience.report import (
    DegradationEvent,
    DegradationReport,
    FailureReason,
)

__all__ = ["SupervisedEstimator"]


@register()
class SupervisedEstimator(Estimator):
    """Run a primary method under supervision, falling back down a chain.

    Parameters
    ----------
    primary:
        Registry name of the method whose estimate is wanted.
    fallbacks:
        Registry names tried in order when the primary (and its retries)
        fail.  The defaults end in ``"gravity"``, which needs no solver and
        therefore cannot time out.
    primary_params / fallback_params:
        Constructor keyword arguments for the primary, and a
        ``name -> kwargs`` mapping for fallbacks.
    max_seconds / max_iterations:
        Per-attempt :class:`~repro.resilience.budget.SolverBudget`
        allowance; ``None`` leaves that axis unbounded (no budget at all
        when both are ``None``).
    retries:
        Extra attempts of the *primary* after its first failure, each with
        a deterministically perturbed warm start (methods without
        ``set_warm_start`` simply retry unperturbed).
    retry_seed:
        Seeds the warm-start perturbations, so retry behaviour is
        reproducible and identical across serial and parallel runs.
    require_convergence:
        Treat a result whose diagnostics report ``converged: False``
        as a failure (retry, then fall back) instead of returning it.
    inject_failures:
        Chaos knob: force the first N attempts to fail with a deterministic
        :class:`~repro.errors.EstimationError` before the method even runs.
        Used by the fault-injection suite to exercise the whole chain.
    """

    name = "supervised"

    def __init__(
        self,
        primary: str = "tomogravity",
        fallbacks: Sequence[str] = ("gravity",),
        primary_params: Optional[Mapping[str, object]] = None,
        fallback_params: Optional[Mapping[str, Mapping[str, object]]] = None,
        max_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        retries: int = 1,
        retry_seed: int = 0,
        require_convergence: bool = False,
        inject_failures: int = 0,
    ) -> None:
        if retries < 0:
            raise EstimationError("retries must be non-negative")
        if inject_failures < 0:
            raise EstimationError("inject_failures must be non-negative")
        self.primary = str(primary)
        self.fallbacks = tuple(fallbacks)
        self.primary_params = dict(primary_params or {})
        self.fallback_params = {
            name: dict(params) for name, params in (fallback_params or {}).items()
        }
        self.max_seconds = max_seconds
        self.max_iterations = max_iterations
        self.retries = int(retries)
        self.retry_seed = int(retry_seed)
        self.require_convergence = bool(require_convergence)
        self.inject_failures = int(inject_failures)

    # ------------------------------------------------------------------
    def _budget(self) -> ContextManager:
        if self.max_seconds is None and self.max_iterations is None:
            return nullcontext()
        return SolverBudget(
            max_seconds=self.max_seconds, max_iterations=self.max_iterations
        )

    def _perturbed_start(
        self, problem: EstimationProblem, attempt: int
    ) -> np.ndarray:
        """A deterministic warm start for retry ``attempt`` (1-based)."""
        rng = np.random.default_rng((self.retry_seed, attempt))
        scale = float(np.sum(problem.snapshot)) / max(problem.num_pairs, 1)
        scale = max(scale, 1e-9)
        return rng.uniform(0.5, 1.5, size=problem.num_pairs) * scale

    def _run(
        self, problem: EstimationProblem, series: bool
    ) -> tuple[object, DegradationReport]:
        steps: list[tuple[str, dict, int]] = [
            (self.primary, self.primary_params, self.retries)
        ]
        steps.extend(
            (name, self.fallback_params.get(name, {}), 0) for name in self.fallbacks
        )

        events: list[DegradationEvent] = []
        attempts = 0
        for name, params, retries in steps:
            if name != self.primary:
                # Hop onto the next fallback of the declared chain.
                telemetry.counter_inc("supervisor.chain_hops")
                telemetry.add_event("supervisor.chain_hop", method=name)
            try:
                estimator = get_estimator(name, **params)
            except (EstimationError, TypeError) as exc:
                attempts += 1
                telemetry.counter_inc("supervisor.attempts")
                telemetry.counter_inc("supervisor.construct_failures")
                telemetry.add_event("supervisor.construct_failure", method=name)
                reason = FailureReason.from_exception(exc, spec=name, stage="construct")
                events.append(
                    DegradationEvent(
                        stage="construct",
                        kind=reason.exception,
                        detail=reason.describe(),
                    )
                )
                continue
            for attempt in range(retries + 1):
                attempts += 1
                telemetry.counter_inc("supervisor.attempts")
                if attempt > 0:
                    setter = getattr(estimator, "set_warm_start", None)
                    if setter is not None:
                        setter(self._perturbed_start(problem, attempt))
                    telemetry.counter_inc("supervisor.retries")
                    telemetry.add_event("supervisor.retry", method=name, attempt=attempt)
                    events.append(
                        DegradationEvent(
                            stage="retry",
                            kind="perturbed-warm-start",
                            detail=f"{name}: retry {attempt} of {retries}",
                        )
                    )
                try:
                    if attempts <= self.inject_failures:
                        raise EstimationError(
                            f"injected failure on attempt {attempts}"
                        )
                    with self._budget():
                        result = (
                            estimator.estimate_series(problem)
                            if series
                            else estimator.estimate(problem)
                        )
                    converged = result.diagnostics.get(
                        "converged", result.diagnostics.get("solver_converged")
                    )
                    if self.require_convergence and converged is False:
                        raise EstimationError(
                            f"method {name!r} reported converged=False"
                        )
                except (EstimationError, SolverError) as exc:
                    stage = (
                        "budget" if isinstance(exc, BudgetExceededError) else "estimate"
                    )
                    reason = FailureReason.from_exception(exc, spec=name, stage=stage)
                    detail = reason.describe()
                    if isinstance(exc, BudgetExceededError):
                        # The exception message already carries the
                        # structured accounting (ticks, limits, and elapsed
                        # seconds for time trips); wall-clock is kept out of
                        # iteration-trip details so serial and parallel
                        # degradation records stay identical.
                        telemetry.counter_inc("supervisor.budget_trips")
                        telemetry.add_event(
                            "supervisor.budget_trip",
                            method=name,
                            **{
                                key: value
                                for key, value in exc.budget_details().items()
                                if value is not None
                            },
                        )
                    events.append(
                        DegradationEvent(
                            stage=stage, kind=reason.exception, detail=detail
                        )
                    )
                    continue
                if name != self.primary:
                    telemetry.counter_inc("supervisor.fallbacks")
                    telemetry.add_event("supervisor.fallback", used=name)
                telemetry.histogram_observe("supervisor.attempts_per_call", attempts)
                report = DegradationReport(
                    requested=self.primary,
                    used=name,
                    attempts=attempts,
                    events=tuple(events),
                )
                return result, report

        summary = "; ".join(event.detail for event in events) or "no attempts ran"
        raise EstimationError(
            f"supervised estimation failed after {attempts} attempts "
            f"(primary {self.primary!r}, fallbacks {list(self.fallbacks)}): {summary}"
        )

    def _finish_diagnostics(self, result, report: DegradationReport) -> dict:
        if report.degraded:
            warnings.warn(
                f"supervised estimation degraded: {report.describe()}",
                RuntimeWarning,
                stacklevel=3,
            )
        diagnostics = dict(result.diagnostics)
        diagnostics["degradation"] = report.to_dict()
        return diagnostics

    # ------------------------------------------------------------------
    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Run the supervised chain on a snapshot problem."""
        result, report = self._run(problem, series=False)
        return EstimationResult(
            estimate=result.estimate,
            method=self.name,
            diagnostics=self._finish_diagnostics(result, report),
        )

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Run the supervised chain on a series problem."""
        result, report = self._run(problem, series=True)
        return SeriesEstimationResult(
            estimates=result.estimates,
            pairs=result.pairs,
            method=self.name,
            diagnostics=self._finish_diagnostics(result, report),
        )
