"""Structured failure and degradation reporting.

These records replace the bare ``None`` estimates and silently-swallowed
exceptions that used to be the repo's only failure signal.  They are plain
frozen dataclasses of strings/ints so they pickle cheaply through pool
tasks and compare by value — which is what keeps serial and parallel runs
producing *identical* records even when things go wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["FailureReason", "DegradationEvent", "DegradationReport"]


@dataclass(frozen=True)
class FailureReason:
    """Why one attempt (a spec, a shard, a fallback step) failed.

    Attributes
    ----------
    exception:
        The exception class name (``"EstimationError"``), not the instance —
        instances do not reliably compare equal across pickling.
    message:
        ``str(exc)`` of the failure.
    spec:
        Human-readable identifier of what failed: a method-spec repr, a
        shard's region pair, a fallback step name.
    stage:
        Pipeline stage that observed the failure (``"construct"``,
        ``"estimate"``, ``"shard"``, ``"budget"`` ...).
    """

    exception: str
    message: str
    spec: str = ""
    stage: str = "estimate"

    @classmethod
    def from_exception(
        cls, exc: BaseException, spec: str = "", stage: str = "estimate"
    ) -> "FailureReason":
        return cls(
            exception=type(exc).__name__,
            message=str(exc),
            spec=spec,
            stage=stage,
        )

    def describe(self) -> str:
        prefix = f"{self.spec}: " if self.spec else ""
        return f"{prefix}{self.exception}: {self.message}"


@dataclass(frozen=True)
class DegradationEvent:
    """One thing that went wrong (or was worked around) during a run."""

    stage: str
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class DegradationReport:
    """What a supervised run actually did versus what was asked.

    ``requested`` names the primary method, ``used`` the method whose
    estimate was returned; they differ exactly when a fallback ran.
    ``attempts`` counts every estimation attempt, including retries.
    ``events`` records each failure/fallback in order.
    """

    requested: str
    used: str
    attempts: int = 1
    events: tuple[DegradationEvent, ...] = field(default_factory=tuple)

    @property
    def degraded(self) -> bool:
        return self.used != self.requested or bool(self.events)

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict form for estimator diagnostics (picklable, == by value)."""
        return {
            "requested": self.requested,
            "used": self.used,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "events": [
                {"stage": e.stage, "kind": e.kind, "detail": e.detail}
                for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DegradationReport":
        return cls(
            requested=str(data["requested"]),
            used=str(data["used"]),
            attempts=int(data.get("attempts", 1)),
            events=tuple(
                DegradationEvent(
                    stage=str(e.get("stage", "")),
                    kind=str(e.get("kind", "")),
                    detail=str(e.get("detail", "")),
                )
                for e in data.get("events", ())
            ),
        )

    def describe(self) -> str:
        if not self.degraded:
            return f"{self.used}: clean run"
        parts = [f"requested={self.requested}", f"used={self.used}"]
        parts.extend(f"{e.stage}/{e.kind}: {e.detail}" for e in self.events)
        return "; ".join(parts)


def degradation_from_diagnostics(
    diagnostics: dict[str, Any],
) -> Optional[DegradationReport]:
    """Recover a report from estimator diagnostics, if one was recorded."""
    data = diagnostics.get("degradation")
    if not isinstance(data, dict):
        return None
    return DegradationReport.from_dict(data)
