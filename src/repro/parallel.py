"""Shared helpers for the process-pool execution layers.

The parallel engines — the LP bounds batch
(:mod:`repro.optimize.linear_program`), the experiment runners
(:mod:`repro.evaluation.experiments`) and the planning failure sweep
(:mod:`repro.planning.sweep`) — resolve their ``n_jobs`` parameter with the
same policy, kept here so the engines cannot drift: ``None`` means every
core, the count is clamped to both the number of independent tasks and the
number of CPUs actually present, and anything below 1 is an error (raised
as the caller's own exception type).

The CPU clamp matters: spawning worker processes on a single-core box (or
asking for more workers than cores for CPU-bound work) pays interpreter
start-up and pickling for zero concurrency — the BENCH_PR3 record showed a
parallel run *slower* than serial at ``cpu_count: 1`` for exactly this
reason.  Every engine skips pool creation entirely whenever the resolved
job count is 1, so tiny batches and single-core machines always take the
plain serial loop.
"""

from __future__ import annotations

import os
from typing import Optional, Type

__all__ = ["effective_jobs"]


def effective_jobs(
    n_jobs: Optional[int],
    num_tasks: int,
    error: Type[Exception] = ValueError,
) -> int:
    """Worker-process count for ``num_tasks`` independent units of work.

    Returns 1 — meaning *run serially, create no pool* — when there is at
    most one task or at most one CPU; otherwise the requested ``n_jobs``
    clamped to ``min(num_tasks, cpu_count)``.
    """
    if num_tasks <= 1:
        return 1
    cpus = os.cpu_count() or 1
    if n_jobs is None:
        n_jobs = cpus
    if n_jobs < 1:
        raise error("n_jobs must be at least 1 (or None for auto)")
    return min(int(n_jobs), num_tasks, cpus)
