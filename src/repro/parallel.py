"""Shared helpers for the process-pool execution layers.

The parallel engines — the LP bounds batch
(:mod:`repro.optimize.linear_program`), the experiment runners
(:mod:`repro.evaluation.experiments`), the planning failure sweep
(:mod:`repro.planning.sweep`) and the sharded estimator
(:mod:`repro.estimation.sharded`) — resolve their ``n_jobs`` parameter with
the same policy, kept here so the engines cannot drift: ``None`` means every
core, the count is clamped to both the number of independent tasks and the
number of CPUs actually present, and anything below 1 is an error (raised
as the caller's own exception type).

The CPU clamp matters: spawning worker processes on a single-core box (or
asking for more workers than cores for CPU-bound work) pays interpreter
start-up and pickling for zero concurrency — the BENCH_PR3 record showed a
parallel run *slower* than serial at ``cpu_count: 1`` for exactly this
reason.  Every engine skips pool creation entirely whenever the resolved
job count is 1, so tiny batches and single-core machines always take the
plain serial loop.

The second half of this module is the **shared-payload** machinery: a way
to hand large read-only objects (routing matrices, what-if engines, method
estimates) to pool workers without pickling them into every task — and,
on fork-capable platforms, without pickling them at all.  A payload is
registered once in the parent with :func:`share_payload`, which returns a
tiny :class:`PayloadRef` token.  Tasks ship the token; workers call
:func:`resolve_payload` to get the object back:

* with the ``fork`` start method (Linux default) the child process
  inherits the parent's payload registry through copy-on-write memory, so
  the object is never serialised;
* with ``spawn``/``forkserver`` the :func:`payload_executor` initializer
  re-registers the payloads in each worker — one pickle per worker, never
  per task, matching the initializer pattern the engines used before.

Either way the worker operates on an exact copy of the parent object, so
serial and parallel runs produce identical records.  To keep that true by
construction, :func:`resolve_payload` hands payloads out *read-only*: every
ndarray in the resolved object comes back as a ``writeable=False`` view, so
a worker that tries to mutate shared state raises immediately instead of
corrupting copy-on-write pages.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Type

import numpy as np

from repro import telemetry

__all__ = [
    "effective_jobs",
    "PayloadRef",
    "share_payload",
    "resolve_payload",
    "release_payload",
    "payload_executor",
    "PoolTaskEvent",
    "PoolReport",
    "run_supervised_tasks",
    "install_worker_faults",
    "clear_worker_faults",
]


def effective_jobs(
    n_jobs: Optional[int],
    num_tasks: int,
    error: Type[Exception] = ValueError,
) -> int:
    """Worker-process count for ``num_tasks`` independent units of work.

    Returns 1 — meaning *run serially, create no pool* — when there is at
    most one task or at most one CPU; otherwise the requested ``n_jobs``
    clamped to ``min(num_tasks, cpu_count)``.
    """
    if num_tasks <= 1:
        return 1
    cpus = os.cpu_count() or 1
    if n_jobs is None:
        n_jobs = cpus
    if n_jobs < 1:
        raise error("n_jobs must be at least 1 (or None for auto)")
    return min(int(n_jobs), num_tasks, cpus)


# ----------------------------------------------------------------------
# shared payloads
# ----------------------------------------------------------------------

#: Parent-side (and, after fork, worker-side) payload registry.  Fork
#: children see it through copy-on-write inheritance; spawn workers get it
#: refilled by the :func:`payload_executor` initializer.
_PAYLOADS: dict[int, Any] = {}
_TOKEN_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class PayloadRef:
    """Cheap, picklable handle to an object registered with :func:`share_payload`.

    The reference is just an integer token; passing it through a pool task
    costs a few bytes regardless of how large the payload is.
    """

    token: int


def share_payload(obj: Any) -> PayloadRef:
    """Register ``obj`` for zero-copy access from pool workers.

    Returns a :class:`PayloadRef` to ship in task arguments.  Call
    :func:`release_payload` when the pool work is done so the parent does
    not pin the object for the rest of the process lifetime.
    """
    token = next(_TOKEN_COUNTER)
    _PAYLOADS[token] = obj
    return PayloadRef(token)


def _read_only_view(obj: Any) -> Any:
    """A non-writable alias of ``obj``'s arrays (recursing into containers).

    ndarrays are returned as ``writeable=False`` views sharing the original
    buffer — no copy, but any in-place write in a worker raises instead of
    silently corrupting copy-on-write pages (fork) or diverging per-worker
    state (spawn).  Tuples, lists and dicts are rebuilt around converted
    elements; anything else passes through unchanged (mutating an arbitrary
    payload object is caught statically by reprolint's pool-safety rule).
    """
    if isinstance(obj, np.ndarray):
        view = obj.view()
        view.setflags(write=False)
        return view
    if isinstance(obj, tuple):
        return tuple(_read_only_view(item) for item in obj)
    if isinstance(obj, list):
        return [_read_only_view(item) for item in obj]
    if isinstance(obj, dict):
        return {key: _read_only_view(value) for key, value in obj.items()}
    return obj


def resolve_payload(ref: Any) -> Any:
    """Return the object behind ``ref``; non-references pass through unchanged.

    Passing values through makes call sites polymorphic: a helper that
    accepts either a payload reference or the object itself can resolve
    unconditionally.

    Resolved payloads are handed out as **read-only views**: any ndarray in
    the payload (including inside tuples/lists/dicts) comes back with
    ``writeable=False``, so a worker that tries to mutate shared state
    fails loudly with ``ValueError`` instead of silently breaking the
    serial==parallel record invariant.  The parent's original arrays stay
    writable.  Workers that need scratch space must copy first
    (``np.array(view)`` / ``view.copy()``).
    """
    if not isinstance(ref, PayloadRef):
        return ref
    try:
        payload = _PAYLOADS[ref.token]
    except KeyError:
        raise RuntimeError(
            f"payload {ref.token} is not registered in this process; "
            "create the pool with payload_executor() after share_payload(), "
            "or resolve in the parent process"
        ) from None
    return _read_only_view(payload)


def release_payload(ref: PayloadRef) -> None:
    """Drop a shared payload from the registry (idempotent)."""
    _PAYLOADS.pop(ref.token, None)


def _payload_initializer(payloads: dict[int, Any]) -> None:
    """Spawn-mode worker initializer: refill the registry once per worker."""
    _PAYLOADS.update(payloads)


def payload_executor(max_workers: int) -> ProcessPoolExecutor:
    """A :class:`~concurrent.futures.ProcessPoolExecutor` that sees shared payloads.

    On platforms whose default start method is ``fork`` the workers inherit
    the registry through copy-on-write memory and nothing is pickled.
    Elsewhere the current registry is shipped to each worker exactly once
    via the pool initializer — the same per-worker (not per-task) cost the
    engines paid with their bespoke initializers before this helper
    existed.
    """
    method = multiprocessing.get_start_method(allow_none=False)
    if method == "fork":
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)
    return ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_payload_initializer,
        initargs=(dict(_PAYLOADS),),
    )


# ----------------------------------------------------------------------
# worker fault injection (chaos testing)
# ----------------------------------------------------------------------

#: Reserved payload slot for the installed worker fault plan.  Real payload
#: tokens start at 1 (see ``_TOKEN_COUNTER``), so slot 0 can never collide,
#: and riding in the payload registry means the plan reaches workers through
#: the exact same fork/spawn channel as every other payload.
_WORKER_FAULTS_TOKEN = 0


def install_worker_faults(plan: Any) -> None:
    """Install a :class:`repro.resilience.WorkerFaultPlan` for pool workers.

    The plan is duck-typed: anything with a ``fires(task_index,
    round_number)`` method returning ``"crash"``, ``"hang"`` or ``None``
    (and a ``hang_seconds`` attribute) works.  Faults only ever fire inside
    pool worker processes — the parent running a task serially is immune,
    so the serial re-execution safety net always succeeds.

    Install *before* creating pools; pair with :func:`clear_worker_faults`.
    """
    _PAYLOADS[_WORKER_FAULTS_TOKEN] = plan


def clear_worker_faults() -> None:
    """Remove any installed worker fault plan (idempotent)."""
    _PAYLOADS.pop(_WORKER_FAULTS_TOKEN, None)


def _maybe_worker_fault(task_index: int, round_number: int) -> None:
    """Fire the installed fault for this task, if any — workers only."""
    plan = _PAYLOADS.get(_WORKER_FAULTS_TOKEN)
    if plan is None:
        return
    if multiprocessing.parent_process() is None:
        return  # parent process: serial fallback must never fault
    action = plan.fires(task_index, round_number)
    if action == "crash":
        os._exit(70)  # hard kill, like an OOM-killed or segfaulted worker
    elif action == "hang":
        time.sleep(float(getattr(plan, "hang_seconds", 30.0)))


@dataclass(frozen=True)
class _TaskEnvelope:
    """A task result plus the telemetry recorded while computing it.

    Workers wrap their return value in an envelope whenever the parent ran
    with telemetry enabled; the parent unwraps it, re-parents the shipped
    spans under the submitting span and folds the metrics into its own
    registry.  Task *results* never contain telemetry — the envelope is
    pool-transport only, so serial and parallel runs keep producing
    identical records.
    """

    result: Any
    spans: tuple
    metrics: dict


#: Set after the first telemetry-carrying task so fork-inherited parent
#: spans/metrics are dropped exactly once per worker process.
_WORKER_TELEMETRY_PRIMED = False


def _prime_worker_telemetry() -> None:
    global _WORKER_TELEMETRY_PRIMED
    if not _WORKER_TELEMETRY_PRIMED:
        telemetry.enable()
        telemetry.reset_telemetry()
        _WORKER_TELEMETRY_PRIMED = True


def _run_supervised_task(
    worker: Callable[..., Any],
    task_index: int,
    round_number: int,
    args: tuple,
    with_telemetry: bool = False,
) -> Any:
    """Module-level pool target: apply injected faults, then run the task."""
    _maybe_worker_fault(task_index, round_number)
    if not with_telemetry:
        return worker(*args)
    _prime_worker_telemetry()
    with telemetry.capture() as records:
        with telemetry.span("pool.task", task_index=task_index, round=round_number):
            result = worker(*args)
    return _TaskEnvelope(result=result, spans=tuple(records), metrics=telemetry.drain_metrics())


# ----------------------------------------------------------------------
# supervised pool execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoolTaskEvent:
    """One pool-level incident during :func:`run_supervised_tasks`.

    ``kind`` is ``"broken-pool"`` (a worker died), ``"timeout"`` (a task
    exceeded the per-task allowance), ``"resubmitted"`` (the affected tasks
    went back to a fresh pool) or ``"serial-rerun"`` (the parent re-ran
    them itself).
    """

    kind: str
    round_number: int
    task_indices: tuple[int, ...]
    detail: str = ""


@dataclass(frozen=True)
class PoolReport:
    """Out-of-band account of what the pool layer had to work around.

    Pool incidents are *infrastructure* degradation, not properties of the
    computed records — a serial run has no pool and must produce identical
    records — so they are reported here (and as ``RuntimeWarning``s) rather
    than written into task results.  ``remote_spans`` counts the telemetry
    span records shipped back from worker processes and re-parented into
    the parent's trace (0 when telemetry was disabled or the run was
    serial).
    """

    events: tuple[PoolTaskEvent, ...] = field(default_factory=tuple)
    remote_spans: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def describe(self) -> str:
        if not self.events:
            return "pool: clean run"
        return "; ".join(
            f"{event.kind} (round {event.round_number}, "
            f"tasks {list(event.task_indices)}): {event.detail}"
            for event in self.events
        )


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a broken or hung pool without waiting on its workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass


def run_supervised_tasks(
    worker: Callable[..., Any],
    task_args: Sequence[tuple],
    *,
    jobs: int,
    timeout: Optional[float] = None,
    max_resubmissions: int = 1,
) -> tuple[list, PoolReport]:
    """Run independent tasks with pool-failure supervision.

    ``worker(*task_args[i])`` runs for every ``i`` — in the parent when
    ``jobs <= 1``, otherwise on a :func:`payload_executor` pool.  The pool
    path survives infrastructure failures that would normally abort the
    whole batch:

    * a task exceeding ``timeout`` seconds (``None`` disables the check),
    * a worker process dying (``BrokenProcessPool``).

    Affected tasks are resubmitted to a fresh pool up to
    ``max_resubmissions`` times; whatever still fails is re-executed
    *serially in the parent*, which cannot crash-fault (injected worker
    faults never fire outside pool workers) and has no timeout.  Exceptions
    raised by the task function itself propagate unchanged, exactly as in a
    serial run.

    Returns ``(results, report)`` with results in task order.  Pool-level
    incidents are recorded on the :class:`PoolReport` and emitted as
    ``RuntimeWarning``s; they are deliberately kept out of the task results
    so serial and parallel runs produce identical records.

    When telemetry is enabled in the parent, workers record their spans
    per task and ship them back inside a :class:`_TaskEnvelope`; this
    function re-parents the remote roots under the surrounding
    ``pool.run`` span, stamps each ``pool.task`` root with its measured
    queue wait, and feeds the ``pool.queue_wait_seconds`` /
    ``pool.execute_seconds`` histograms — so one exported trace shows
    queue-wait, per-worker execution and the parent timeline together.
    """
    task_args = [tuple(args) for args in task_args]
    results: list = [None] * len(task_args)
    if jobs <= 1 or len(task_args) <= 1:
        for index, args in enumerate(task_args):
            results[index] = worker(*args)
        return results, PoolReport()

    with_telemetry = telemetry.is_enabled()
    remote_spans = 0
    submit_walls: dict[int, float] = {}

    def _unwrap(index: int, value: Any, parent_id: Optional[str]) -> Any:
        nonlocal remote_spans
        if not isinstance(value, _TaskEnvelope):
            return value
        remote_spans += len(value.spans)
        roots = telemetry.attach_spans(value.spans, parent_id=parent_id)
        telemetry.merge_metrics(value.metrics)
        submitted = submit_walls.get(index)
        for root in roots:
            if root.name != "pool.task":
                continue
            if submitted is not None:
                queue_wait = max(0.0, root.start_wall - submitted)
                root.attributes["queue_wait_seconds"] = queue_wait
                telemetry.histogram_observe("pool.queue_wait_seconds", queue_wait)
            telemetry.histogram_observe("pool.execute_seconds", root.duration)
        return value.result

    events: list[PoolTaskEvent] = []
    pending = list(range(len(task_args)))
    with telemetry.span("pool.run", tasks=len(task_args), jobs=jobs) as pool_span:
        pool_span_id = getattr(pool_span, "span_id", None)
        for round_number in range(max_resubmissions + 1):
            if not pending:
                break
            if round_number > 0:
                events.append(
                    PoolTaskEvent(
                        kind="resubmitted",
                        round_number=round_number,
                        task_indices=tuple(pending),
                        detail=f"fresh pool, attempt {round_number + 1}",
                    )
                )
            pool = payload_executor(min(jobs, len(pending)))
            futures = {}
            for index in pending:
                if with_telemetry:
                    submit_walls[index] = telemetry.clock()
                futures[index] = pool.submit(
                    _run_supervised_task,
                    worker,
                    index,
                    round_number,
                    task_args[index],
                    with_telemetry,
                )
            failed: list[int] = []
            pool_broken = False
            for index in pending:
                if pool_broken:
                    # After a pool break every unfinished future fails fast;
                    # harvest the ones that completed before the crash.
                    future = futures[index]
                    if future.done() and future.exception() is None:
                        results[index] = _unwrap(index, future.result(), pool_span_id)
                    else:
                        failed.append(index)
                    continue
                try:
                    results[index] = _unwrap(
                        index, futures[index].result(timeout=timeout), pool_span_id
                    )
                except _FuturesTimeout:
                    failed.append(index)
                    events.append(
                        PoolTaskEvent(
                            kind="timeout",
                            round_number=round_number,
                            task_indices=(index,),
                            detail=f"task exceeded {timeout}s",
                        )
                    )
                except BrokenProcessPool as exc:
                    pool_broken = True
                    failed.append(index)
                    events.append(
                        PoolTaskEvent(
                            kind="broken-pool",
                            round_number=round_number,
                            task_indices=(index,),
                            detail=str(exc) or "worker process died",
                        )
                    )
            if failed or pool_broken:
                _abandon_pool(pool)
            else:
                pool.shutdown(wait=True)
            pending = failed

        if pending:
            events.append(
                PoolTaskEvent(
                    kind="serial-rerun",
                    round_number=max_resubmissions + 1,
                    task_indices=tuple(pending),
                    detail="re-executed in the parent process",
                )
            )
            for index in pending:
                # Parent-side re-execution: spans record inline under the
                # pool.run span, no envelope needed.
                results[index] = worker(*task_args[index])
        pool_span.set_attributes(remote_spans=remote_spans)

    report = PoolReport(events=tuple(events), remote_spans=remote_spans)
    if report.degraded:
        warnings.warn(
            f"pool degradation: {report.describe()}",
            RuntimeWarning,
            stacklevel=2,
        )
    return results, report
