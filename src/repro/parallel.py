"""Shared helpers for the process-pool execution layers.

Both parallel engines — the LP bounds batch
(:mod:`repro.optimize.linear_program`) and the experiment runners
(:mod:`repro.evaluation.experiments`) — resolve their ``n_jobs`` parameter
with the same policy, kept here so the two cannot drift: ``None`` means
every core, the count is clamped to the number of independent tasks, and
anything below 1 is an error (raised as the caller's own exception type).
"""

from __future__ import annotations

import os
from typing import Optional, Type

__all__ = ["effective_jobs"]


def effective_jobs(
    n_jobs: Optional[int],
    num_tasks: int,
    error: Type[Exception] = ValueError,
) -> int:
    """Worker-process count for ``num_tasks`` independent units of work."""
    if num_tasks <= 1:
        return 1
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise error("n_jobs must be at least 1 (or None for auto)")
    return min(int(n_jobs), num_tasks)
