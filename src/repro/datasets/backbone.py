"""Reference scenarios: the Europe-like and America-like evaluation data sets.

The paper extracts two subnetworks from Global Crossing's backbone and
measures a 24-hour, five-minute-resolution traffic matrix on each.  The real
data is proprietary; these builders create synthetic stand-ins whose

* topology sizes match (12 PoPs / 72 links, 25 PoPs / 284 links),
* total traffic follows region-appropriate diurnal profiles whose busy
  periods partially overlap around 18:00 GMT,
* demand distributions are heavily concentrated (top 20 % of demands carry
  about 80 % of traffic),
* gravity-model fit differs between the regions: mild affinity distortion in
  Europe (gravity is a reasonable prior), strong distortion in America
  (gravity underestimates the large demands), and
* five-minute fluctuations follow the generalised mean-variance scaling law
  with exponents close to the fitted values of the paper.

Every builder is deterministic for a given seed, so the benchmarks are
reproducible run to run.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.scenarios import Scenario
from repro.routing.routing_matrix import build_routing_matrix
from repro.topology.generators import (
    abilene_backbone,
    american_backbone,
    european_backbone,
    random_backbone,
)
from repro.traffic.diurnal import american_profile, european_profile, flat_profile
from repro.traffic.meanvariance import ScalingLaw
from repro.traffic.synthetic import SyntheticTrafficConfig, SyntheticTrafficModel, base_demand_matrix

__all__ = [
    "europe_scenario",
    "america_scenario",
    "abilene_scenario",
    "small_scenario",
    "large_scenario",
    "DEFAULT_SEED",
]

#: Seed used by the benchmarks when none is supplied.
DEFAULT_SEED = 2004


def europe_scenario(seed: int = DEFAULT_SEED, busy_length: int = 50) -> Scenario:
    """Build the Europe-like scenario (12 PoPs, 132 demands, 72 links).

    The gravity distortion is mild (sigma = 0.45) so the gravity model is a
    reasonable prior, and the scaling-law exponent is close to the 1.6 the
    paper fits for its European demands.
    """
    network = european_backbone(seed=seed)
    config = SyntheticTrafficConfig(
        total_traffic_mbps=12_000.0,
        gravity_distortion=0.45,
        scaling_law=ScalingLaw(phi=0.8, c=1.6),
        fanout_jitter=0.03,
        origin_phase_spread_hours=0.75,
    )
    base = base_demand_matrix(network, config, seed=seed)
    model = SyntheticTrafficModel(
        network, base, profile=european_profile(), config=config, seed=seed + 1
    )
    day = model.generate_day()
    routing = build_routing_matrix(network)
    return Scenario(
        name="europe", network=network, routing=routing, day_series=day, busy_length=busy_length
    )


def america_scenario(seed: int = DEFAULT_SEED, busy_length: int = 50) -> Scenario:
    """Build the America-like scenario (25 PoPs, 600 demands, 284 links).

    The gravity distortion is strong (sigma = 1.3), reproducing the paper's
    observation that PoPs have a few dominating destinations that differ
    from PoP to PoP, so the simple gravity model underestimates the large
    demands badly.
    """
    network = american_backbone(seed=seed)
    config = SyntheticTrafficConfig(
        total_traffic_mbps=35_000.0,
        gravity_distortion=1.3,
        scaling_law=ScalingLaw(phi=2.4, c=1.5),
        fanout_jitter=0.04,
        origin_phase_spread_hours=1.5,
    )
    base = base_demand_matrix(network, config, seed=seed + 10)
    model = SyntheticTrafficModel(
        network, base, profile=american_profile(), config=config, seed=seed + 11
    )
    day = model.generate_day()
    routing = build_routing_matrix(network)
    return Scenario(
        name="america", network=network, routing=routing, day_series=day, busy_length=busy_length
    )


def abilene_scenario(seed: int = DEFAULT_SEED, busy_length: int = 50) -> Scenario:
    """Build the Abilene scenario (11 PoPs, 110 demands, 28 links).

    Unlike the synthetic stand-ins for the proprietary Global Crossing
    subnetworks, the topology here is the *real* 2004 Abilene research
    backbone (fourteen bidirectional OC-192 trunks); only the traffic is
    synthetic.  The network is much sparser than the other two scenarios
    (average degree ~2.5 versus 6+), which makes the estimation problem
    more under-determined per link and exercises the scenario-diversity
    code paths of the runners and sweeps.
    """
    network = abilene_backbone()
    config = SyntheticTrafficConfig(
        total_traffic_mbps=8_000.0,
        gravity_distortion=0.8,
        scaling_law=ScalingLaw(phi=1.2, c=1.5),
        fanout_jitter=0.03,
        origin_phase_spread_hours=1.0,
    )
    base = base_demand_matrix(network, config, seed=seed + 30)
    model = SyntheticTrafficModel(
        network, base, profile=american_profile(), config=config, seed=seed + 31
    )
    day = model.generate_day()
    routing = build_routing_matrix(network)
    return Scenario(
        name="abilene", network=network, routing=routing, day_series=day, busy_length=busy_length
    )


def small_scenario(
    seed: int = DEFAULT_SEED,
    num_nodes: int = 6,
    busy_length: int = 20,
    num_samples: Optional[int] = None,
    gravity_distortion: float = 0.6,
) -> Scenario:
    """Build a small random scenario for unit tests and quick experiments.

    Parameters
    ----------
    seed:
        Random seed.
    num_nodes:
        Number of PoPs (default 6, giving 30 demands).
    busy_length:
        Busy-window length.
    num_samples:
        Length of the generated day; defaults to a full 288-sample day, but
        tests can request a shorter series to keep fixtures fast.
    gravity_distortion:
        How strongly the spatial structure deviates from the gravity
        assumption (see :class:`~repro.traffic.synthetic.SyntheticTrafficConfig`).
    """
    network = random_backbone(num_nodes, avg_degree=3.0, seed=seed, name=f"small-{num_nodes}")
    config = SyntheticTrafficConfig(
        total_traffic_mbps=2_000.0,
        gravity_distortion=gravity_distortion,
        scaling_law=ScalingLaw(phi=1.0, c=1.4),
        fanout_jitter=0.03,
        origin_phase_spread_hours=0.5,
    )
    base = base_demand_matrix(network, config, seed=seed + 20)
    model = SyntheticTrafficModel(
        network, base, profile=flat_profile(), config=config, seed=seed + 21
    )
    if num_samples is None:
        day = model.generate_day()
    else:
        day = model.generate_series(num_samples, start_time_seconds=0.0)
    busy_length = min(busy_length, len(day))
    routing = build_routing_matrix(network)
    return Scenario(
        name=f"small-{num_nodes}",
        network=network,
        routing=routing,
        day_series=day,
        busy_length=busy_length,
    )


def large_scenario(
    num_nodes: int,
    seed: int = DEFAULT_SEED,
    busy_length: int = 24,
    num_samples: int = 48,
    avg_degree: float = 3.0,
    total_traffic_mbps: Optional[float] = None,
    num_regions: Optional[int] = None,
) -> Scenario:
    """Build a large random-backbone scenario for scaling studies.

    The paper's networks stop at 25 PoPs; this builder is the workload the
    large-topology fast paths (batched all-pairs routing, sparse estimator
    hot paths) are benchmarked on.  It combines
    :func:`~repro.topology.generators.random_backbone` — Zipf-like
    populations, ring + random chords, strongly connected — with the same
    synthetic diurnal traffic machinery as the named scenarios, sized so
    that a 200-node mesh (39 800 demands) still generates in seconds:

    * the day series covers the hours around the evening peak at a
      five-minute resolution (``num_samples`` snapshots, default four
      hours) rather than a full 288-sample day;
    * the routing matrix is auto-selected to the sparse CSR backend (a
      backbone's density falls like ``mean path length / num_links``, well
      under 2 % at this scale).

    Parameters
    ----------
    num_nodes:
        Number of PoPs (the estimation problem has ``N * (N - 1)`` pairs).
    seed:
        Deterministic seed for topology and traffic.
    busy_length:
        Busy-window length for the estimation problems.
    num_samples:
        Snapshots in the generated series (five-minute spacing).
    avg_degree:
        Target average undirected degree of the topology.
    total_traffic_mbps:
        Total busy-hour traffic; defaults to 600 Mbit/s per PoP, keeping
        per-link utilisation in a realistic band as the mesh grows.
    num_regions:
        Stamp the topology with this many automatically partitioned region
        labels (for hierarchical estimation); ``None`` leaves the nodes
        unlabelled — the sharded estimator then partitions on the fly.
    """
    network = random_backbone(
        num_nodes,
        avg_degree=avg_degree,
        seed=seed,
        name=f"large-{num_nodes}",
        num_regions=num_regions,
    )
    if total_traffic_mbps is None:
        total_traffic_mbps = 600.0 * num_nodes
    config = SyntheticTrafficConfig(
        total_traffic_mbps=float(total_traffic_mbps),
        gravity_distortion=0.7,
        scaling_law=ScalingLaw(phi=1.0, c=1.5),
        fanout_jitter=0.03,
        origin_phase_spread_hours=0.75,
    )
    base = base_demand_matrix(network, config, seed=seed + 40)
    model = SyntheticTrafficModel(
        network, base, profile=american_profile(), config=config, seed=seed + 41
    )
    day = model.generate_series(num_samples, start_time_seconds=16.0 * 3600)
    busy_length = min(busy_length, len(day))
    routing = build_routing_matrix(network)
    return Scenario(
        name=f"large-{num_nodes}",
        network=network,
        routing=routing,
        day_series=day,
        busy_length=busy_length,
    )
