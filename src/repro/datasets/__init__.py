"""Reference data sets: Europe-like, America-like and small test scenarios.

The real Global Crossing measurements are proprietary; these deterministic
synthetic scenarios match the statistics the paper reports (see the module
documentation of :mod:`repro.datasets.backbone` and DESIGN.md for the full
substitution argument).
"""

from repro.datasets.backbone import DEFAULT_SEED, america_scenario, europe_scenario, small_scenario
from repro.datasets.scenarios import Scenario

__all__ = [
    "Scenario",
    "europe_scenario",
    "america_scenario",
    "small_scenario",
    "DEFAULT_SEED",
]
