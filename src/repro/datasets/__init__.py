"""Reference data sets: Europe-like, America-like, Abilene and small test scenarios.

The real Global Crossing measurements are proprietary; these deterministic
synthetic scenarios match the statistics the paper reports (see the module
documentation of :mod:`repro.datasets.backbone` and DESIGN.md for the full
substitution argument).  The Abilene scenario uses the real (public) 2004
Internet2 topology with synthetic traffic, adding a third, structurally
different network to the evaluation mix.
"""

from repro.datasets.backbone import (
    DEFAULT_SEED,
    abilene_scenario,
    america_scenario,
    europe_scenario,
    large_scenario,
    small_scenario,
)
from repro.datasets.scenarios import MeasuredScenario, Scenario, SweepRecord

__all__ = [
    "Scenario",
    "MeasuredScenario",
    "SweepRecord",
    "europe_scenario",
    "america_scenario",
    "abilene_scenario",
    "small_scenario",
    "large_scenario",
    "DEFAULT_SEED",
]
