"""Scenario objects bundling a network, its routing and a day of traffic.

A :class:`Scenario` is the unit every benchmark and example works with: it
ties together

* the topology (:class:`~repro.topology.network.Network`),
* the routing matrix built by the CSPF/IGP simulator,
* a 24-hour, five-minute-resolution traffic-matrix series, and
* the busy-period window used for estimation (the paper uses 250 minutes =
  50 samples).

From these it derives the observable quantities the estimators are allowed
to see — link-load snapshots and series, edge-node totals — packaged as
:class:`~repro.estimation.base.EstimationProblem` objects, and the ground
truth they are scored against.  :meth:`Scenario.sweep` scores every
registered estimation method (or a chosen subset) over the series using the
batched ``estimate_series`` path.

Two data modes feed the estimators:

* the **consistent** mode (plain :class:`Scenario`) computes link loads as
  ``t = R s`` from the true demands — the paper's Section 5.1.4 evaluation
  data set, free of measurement error by construction;
* the **measured** mode (:class:`MeasuredScenario`, built with
  :meth:`Scenario.measured`) runs the full SNMP collection pipeline of
  Section 5.1.2 — distributed pollers, response jitter, UDP loss,
  interval-adjusted rates — over the day series and builds the estimation
  problems from the *measured* LSP matrix and *measured* link loads, while
  the sweep still scores against the true series.  With zero jitter and
  zero loss the measured problems coincide with the consistent ones (up to
  counter byte quantisation), which the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro.errors import EstimationError, SolverError, TrafficError
from repro.estimation.base import EstimationProblem, SeriesEstimationResult
from repro.measurement.collector import DistributedCollector
from repro.measurement.linkloads import link_load_series
from repro.measurement.snmp import RateDiagnostics
from repro.resilience.report import FailureReason
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.network import Network
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = ["Scenario", "MeasuredScenario", "SweepRecord"]


@dataclass(frozen=True)
class SweepRecord:
    """Score of one estimation method over a scenario's series.

    Attributes
    ----------
    method:
        Registry name of the method.
    mre:
        Mean relative error of the mean estimate against the window-mean
        truth (the paper's headline metric), or ``NaN`` when skipped.
    per_snapshot_mre:
        MRE of each snapshot's estimate against that snapshot's truth.
    error:
        Human-readable skip reason (empty when the method ran); kept
        alongside ``failure`` for backward compatibility.
    failure:
        Structured :class:`~repro.resilience.report.FailureReason`
        (exception type, message, method, stage), ``None`` when it ran.
    degradation:
        The degradation-report dict the method attached to its diagnostics
        (supervised/sharded estimators), ``None`` for a clean run.
    """

    method: str
    mre: float
    per_snapshot_mre: np.ndarray
    error: str = ""
    failure: Optional[FailureReason] = None
    degradation: Optional[dict] = None

    @property
    def skipped(self) -> bool:
        """Whether the method could not run on this scenario's data."""
        return bool(self.error)


@dataclass
class Scenario:
    """A network plus a measured day of traffic, ready for estimation studies.

    Attributes
    ----------
    name:
        Scenario identifier (e.g. ``"europe"``).
    network:
        The backbone topology.
    routing:
        Routing matrix over the network's canonical pair order.
    day_series:
        24 hours of five-minute traffic matrices (the "measured" LSP data).
    busy_length:
        Number of snapshots in the busy-period window (the paper's 50).
    """

    name: str
    network: Network
    routing: RoutingMatrix
    day_series: TrafficMatrixSeries
    busy_length: int = 50
    _busy_series: Optional[TrafficMatrixSeries] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.routing.pairs != self.day_series.pairs:
            raise TrafficError("routing matrix and traffic series use different pair orderings")
        if self.busy_length < 2:
            raise TrafficError("busy_length must be at least 2")
        if self.busy_length > len(self.day_series):
            raise TrafficError("busy_length exceeds the length of the day series")

    # ------------------------------------------------------------------
    # traffic views
    # ------------------------------------------------------------------
    def busy_window_start(self) -> int:
        """Start index of the busy period within the day series."""
        return self.day_series.busy_window_start(self.busy_length)

    def busy_series(self) -> TrafficMatrixSeries:
        """The busy-period window: the ``busy_length`` busiest consecutive snapshots."""
        if self._busy_series is None:
            self._busy_series = self.day_series.busy_window(self.busy_length)
        return self._busy_series

    def busy_mean_matrix(self) -> TrafficMatrix:
        """Mean traffic matrix over the busy period (the estimation ground truth)."""
        return self.busy_series().mean_matrix()

    def busy_snapshot(self, index: int = 0) -> TrafficMatrix:
        """A single snapshot from the busy period."""
        return self.busy_series()[index]

    # ------------------------------------------------------------------
    # observable data / estimation problems
    # ------------------------------------------------------------------
    def _edge_totals(self, matrix: TrafficMatrix) -> tuple[dict[str, float], dict[str, float]]:
        return matrix.origin_totals(), matrix.destination_totals()

    def snapshot_problem(self, matrix: Optional[TrafficMatrix] = None) -> EstimationProblem:
        """Estimation problem for a single consistent snapshot.

        The default snapshot is the busy-period mean matrix, matching the
        paper's evaluation of the snapshot methods on the busy hour.  Link
        loads are computed as ``t = R s`` (the consistent data set of
        Section 5.1.4), and the edge totals of the same matrix are exposed
        as the observable ``t_e(n)`` / ``t_x(m)``.
        """
        matrix = matrix if matrix is not None else self.busy_mean_matrix()
        origin_totals, destination_totals = self._edge_totals(matrix)
        return EstimationProblem(
            routing=self.routing,
            link_loads=self.routing.link_loads(matrix.vector),
            origin_totals=origin_totals,
            destination_totals=destination_totals,
        )

    def _series_problem_from(
        self, series: TrafficMatrixSeries, loads: np.ndarray
    ) -> EstimationProblem:
        """Build a series problem from a demand series and its link loads.

        ``loads`` is the ``(K, L)`` link-load series the estimators observe;
        the consistent mode computes it as ``t = R s``, the measured mode
        passes the link counters collected by the SNMP pipeline.  Edge
        totals are derived from ``series`` (they are observable from the
        access links in both modes), vectorised from the demand array.
        """
        demands = series.as_array()  # (K, P)
        origins = tuple(dict.fromkeys(pair.origin for pair in series.pairs))
        destinations = tuple(dict.fromkeys(pair.destination for pair in series.pairs))
        origin_index = {name: idx for idx, name in enumerate(origins)}
        destination_index = {name: idx for idx, name in enumerate(destinations)}
        origin_cols = np.array([origin_index[pair.origin] for pair in series.pairs])
        destination_cols = np.array(
            [destination_index[pair.destination] for pair in series.pairs]
        )
        origin_series = np.zeros((len(series), len(origins)))
        np.add.at(origin_series.T, origin_cols, demands.T)
        destination_series = np.zeros((len(series), len(destinations)))
        np.add.at(destination_series.T, destination_cols, demands.T)
        mean_matrix = series.mean_matrix()
        origin_totals, destination_totals = self._edge_totals(mean_matrix)
        return EstimationProblem(
            routing=self.routing,
            link_loads=loads.mean(axis=0),
            link_load_series=loads,
            origin_totals=origin_totals,
            destination_totals=destination_totals,
            origin_totals_series=origin_series,
            origin_names=origins,
            destination_totals_series=destination_series,
            destination_names=destinations,
        )

    def series_problem(
        self,
        series: Optional[TrafficMatrixSeries] = None,
        window_length: Optional[int] = None,
    ) -> EstimationProblem:
        """Estimation problem exposing a link-load time series.

        Used by the time-series estimators (fanout, Vardi) and by the
        batched ``estimate_series`` path.  The series defaults to the busy
        period; ``window_length`` truncates it.  Per-snapshot origin ingress
        and destination egress totals are included (both are observable from
        the edge links), with link loads computed as the consistent
        ``t = R s``.
        """
        series = series if series is not None else self.busy_series()
        if window_length is not None:
            series = series.window(0, window_length)
        return self._series_problem_from(series, link_load_series(self.routing, series))

    # ------------------------------------------------------------------
    # measured-data mode
    # ------------------------------------------------------------------
    def measured(
        self,
        jitter_std_seconds: float = 0.0,
        loss_probability: float = 0.0,
        num_pollers: int = 3,
        seed: Optional[int] = None,
        max_interpolated_fraction: float = 1.0,
        fault_plan: Optional[object] = None,
        counter_bits: int = 64,
    ) -> "MeasuredScenario":
        """A view of this scenario whose observables come from SNMP collection.

        The returned :class:`MeasuredScenario` shares this scenario's
        network, routing, day series and busy window, but its estimation
        problems are built from the *measured* LSP matrix and link loads
        produced by a :class:`~repro.measurement.collector.DistributedCollector`
        run with the given jitter, loss and poller count — while the ground
        truth (``busy_series`` and friends) stays the true series, so sweeps
        and method comparisons score estimators on inconsistent data against
        the real demands.

        ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan`)
        injects deterministic collection failures — loss bursts, counter
        resets, Counter32 wraps, clock skew, poller outages — on top of
        the statistical jitter/loss model, and ``counter_bits=32`` makes
        the pollers read wrapping Counter32 counters.
        """
        return MeasuredScenario(
            name=self.name,
            network=self.network,
            routing=self.routing,
            day_series=self.day_series,
            busy_length=self.busy_length,
            jitter_std_seconds=jitter_std_seconds,
            loss_probability=loss_probability,
            num_pollers=num_pollers,
            measurement_seed=seed,
            max_interpolated_fraction=max_interpolated_fraction,
            fault_plan=fault_plan,
            counter_bits=counter_bits,
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def planning(self, utilisation_threshold: float = 0.9) -> "WhatIfEngine":
        """A :class:`~repro.planning.whatif.WhatIfEngine` over this network.

        The engine routes the mesh once and answers failure what-ifs
        incrementally; project the scenario's true busy-period mean, any
        estimate, or a grown matrix through its failure cases::

            engine = scenario.planning()
            worst = engine.worst_case(scenario.busy_mean_matrix())

        Method-level planning comparisons live in
        :func:`repro.planning.sweep.failure_sweep`, which consumes the
        scenario directly.
        """
        from repro.planning.whatif import WhatIfEngine

        return WhatIfEngine(self.network, utilisation_threshold=utilisation_threshold)

    # ------------------------------------------------------------------
    # method sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        methods: Optional[Sequence[Union[str, tuple[str, Mapping]]]] = None,
        window_length: Optional[int] = None,
        skip_errors: bool = True,
    ) -> list[SweepRecord]:
        """Score estimation methods over the busy-period series.

        Every method runs through its batched
        :meth:`~repro.estimation.base.Estimator.estimate_series` path on one
        shared series problem and is scored against the per-snapshot ground
        truth, so new methods added to the registry are picked up without
        touching any runner code.

        Parameters
        ----------
        methods:
            Method names (or ``(name, params)`` tuples) to run; defaults to
            every registered estimator.
        window_length:
            Truncate the busy-period series to this many snapshots.
        skip_errors:
            When ``True`` (default), methods that cannot run on this
            scenario's observables (or need constructor arguments) are
            reported as skipped records instead of raising.
        """
        from repro.estimation.registry import available_estimators, get_estimator
        from repro.evaluation.metrics import mean_relative_error

        if methods is None:
            methods = available_estimators()
        problem = self.series_problem(window_length=window_length)
        truth_series = self.busy_series()
        if window_length is not None:
            truth_series = truth_series.window(0, window_length)
        truth_snapshots = [truth_series[k] for k in range(len(truth_series))]
        truth_mean = truth_series.mean_matrix()

        def skip_record(name: str, exc: Exception, stage: str) -> SweepRecord:
            failure = FailureReason.from_exception(exc, spec=name, stage=stage)
            return SweepRecord(
                method=name,
                mre=float("nan"),
                per_snapshot_mre=np.array([]),
                error=str(exc),
                failure=failure,
            )

        records: list[SweepRecord] = []
        with telemetry.span("scenario.sweep", scenario=self.name, methods=len(methods)):
            records.extend(
                self._sweep_entry(
                    entry, problem, truth_snapshots, truth_mean, skip_errors, skip_record
                )
                for entry in methods
            )
        return [record for record in records if record is not None]

    def _sweep_entry(
        self,
        entry: "Union[str, tuple[str, Mapping]]",
        problem: EstimationProblem,
        truth_snapshots: "list[TrafficMatrix]",
        truth_mean: TrafficMatrix,
        skip_errors: bool,
        skip_record: "Callable[[str, Exception, str], SweepRecord]",
    ) -> Optional[SweepRecord]:
        """Score one method entry of :meth:`sweep` (split out for tracing)."""
        from repro.estimation.registry import get_estimator
        from repro.evaluation.metrics import mean_relative_error

        name, params = entry if isinstance(entry, tuple) else (entry, {})
        try:
            # TypeError here means the params do not fit the estimator's
            # constructor signature; past this point it would be a bug.
            estimator = get_estimator(name, **dict(params))
        except (EstimationError, TypeError) as exc:
            if not skip_errors:
                raise
            return skip_record(name, exc, stage="construct")
        try:
            result: SeriesEstimationResult = estimator.estimate_series(problem)
            per_snapshot = np.array(
                [
                    mean_relative_error(result.matrix(k), truth_snapshots[k])
                    for k in range(len(result))
                ]
            )
            mre = mean_relative_error(result.mean_matrix(), truth_mean)
        except (EstimationError, SolverError) as exc:
            if not skip_errors:
                raise
            return skip_record(name, exc, stage="estimate")
        return SweepRecord(
            method=name,
            mre=mre,
            per_snapshot_mre=per_snapshot,
            degradation=result.diagnostics.get("degradation"),
        )

    # ------------------------------------------------------------------
    # descriptive statistics used by the data-analysis figures
    # ------------------------------------------------------------------
    def total_traffic_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps_seconds, normalised_total_traffic)`` for Figure 1."""
        totals = self.day_series.total_traffic_series()
        peak = totals.max()
        if peak <= 0:
            raise TrafficError("scenario has no traffic")
        return self.day_series.timestamps(), totals / peak

    def describe(self) -> dict[str, float]:
        """Headline scenario numbers (PoPs, links, demands, traffic volume)."""
        busy = self.busy_mean_matrix()
        return {
            "num_pops": float(self.network.num_nodes),
            "num_links": float(self.network.num_links),
            "num_pairs": float(self.network.num_pairs),
            "busy_total_traffic": busy.total,
            "routing_rank": float(self.routing.rank()),
        }


@dataclass
class MeasuredScenario(Scenario):
    """A scenario whose observables come from the SNMP measurement pipeline.

    Built with :meth:`Scenario.measured`.  The true ``day_series`` remains
    the ground truth (``busy_series``, ``busy_mean_matrix`` and the sweep
    scoring are untouched), but :meth:`snapshot_problem` and
    :meth:`series_problem` hand the estimators the *measured* data instead
    of the consistent ``t = R s`` loads: link loads come from the polled
    link counters, and edge totals from the measured LSP matrix.  Jitter,
    UDP loss and the interval-length rate adjustment make the measured data
    inconsistent in exactly the way Section 5.1.2 of the paper describes.

    Attributes
    ----------
    jitter_std_seconds, loss_probability, num_pollers, measurement_seed,
    max_interpolated_fraction, fault_plan, counter_bits:
        Forwarded to the underlying
        :class:`~repro.measurement.collector.DistributedCollector`.
    """

    jitter_std_seconds: float = 0.0
    loss_probability: float = 0.0
    num_pollers: int = 3
    measurement_seed: Optional[int] = None
    max_interpolated_fraction: float = 1.0
    fault_plan: Optional[object] = None
    counter_bits: int = 64
    _collector: Optional[DistributedCollector] = field(default=None, repr=False)
    _measured_day: Optional[TrafficMatrixSeries] = field(default=None, repr=False)
    _measured_loads: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # collection (lazy: runs once, on first access to measured data)
    # ------------------------------------------------------------------
    @property
    def collector(self) -> DistributedCollector:
        """The collector, running the day-long collection on first access."""
        if self._collector is None:
            with telemetry.span(
                "measurement.collect",
                scenario=self.name,
                jitter=self.jitter_std_seconds,
                loss=self.loss_probability,
            ):
                collector = DistributedCollector(
                    self.routing,
                    num_pollers=self.num_pollers,
                    interval_seconds=self.day_series.interval_seconds,
                    jitter_std_seconds=self.jitter_std_seconds,
                    loss_probability=self.loss_probability,
                    seed=self.measurement_seed,
                    max_interpolated_fraction=self.max_interpolated_fraction,
                    fault_plan=self.fault_plan,
                    counter_bits=self.counter_bits,
                )
                collector.collect(self.day_series)
            self._collector = collector
        return self._collector

    def measured_day_series(self) -> TrafficMatrixSeries:
        """The full measured LSP traffic-matrix series (one day)."""
        if self._measured_day is None:
            self._measured_day = self.collector.measured_traffic_series()
        return self._measured_day

    def measured_link_load_series(self) -> np.ndarray:
        """The full measured link-load series, shape ``(K_day, L)``."""
        if self._measured_loads is None:
            self._measured_loads = self.collector.measured_link_loads()
        return self._measured_loads

    def measurement_diagnostics(self) -> RateDiagnostics:
        """Lost/degenerate/interpolated sample accounting of the collection."""
        return self.collector.collection_diagnostics()

    def measured_busy_series(self) -> TrafficMatrixSeries:
        """The measured LSP series over the *true* busy window.

        The evaluation protocol fixes the window from the ground truth so
        that measured and consistent runs score the same interval.
        """
        return self.measured_day_series().window(self.busy_window_start(), self.busy_length)

    def _measured_busy_loads(self, length: Optional[int] = None) -> np.ndarray:
        start = self.busy_window_start()
        length = self.busy_length if length is None else length
        return self.measured_link_load_series()[start : start + length]

    # ------------------------------------------------------------------
    # observable data (measured instead of consistent)
    # ------------------------------------------------------------------
    def snapshot_problem(self, matrix: Optional[TrafficMatrix] = None) -> EstimationProblem:
        """Estimation problem built from measured busy-period data.

        Link loads are the busy-window mean of the *measured* link counters
        and the edge totals come from the measured LSP matrix.  Passing an
        explicit ``matrix`` falls back to the consistent computation on that
        matrix (the measured pipeline has no data for hypothetical
        snapshots).
        """
        if matrix is not None:
            return super().snapshot_problem(matrix)
        measured_mean = self.measured_busy_series().mean_matrix()
        origin_totals, destination_totals = self._edge_totals(measured_mean)
        return EstimationProblem(
            routing=self.routing,
            link_loads=self._measured_busy_loads().mean(axis=0),
            origin_totals=origin_totals,
            destination_totals=destination_totals,
        )

    def series_problem(
        self,
        series: Optional[TrafficMatrixSeries] = None,
        window_length: Optional[int] = None,
    ) -> EstimationProblem:
        """Series problem over the busy window, from measured data.

        The link-load series is the measured link counters (not
        ``t = R s``), and per-snapshot edge totals come from the measured
        LSP matrix.  Passing an explicit ``series`` falls back to the
        consistent computation on that series.
        """
        if series is not None:
            return super().series_problem(series=series, window_length=window_length)
        length = self.busy_length
        if window_length is not None:
            if not 0 < window_length <= self.busy_length:
                raise TrafficError(
                    f"window [0, {window_length}) outside series of length {self.busy_length}"
                )
            length = window_length
        measured_series = self.measured_busy_series().window(0, length)
        return self._series_problem_from(measured_series, self._measured_busy_loads(length))
