"""Scenario objects bundling a network, its routing and a day of traffic.

A :class:`Scenario` is the unit every benchmark and example works with: it
ties together

* the topology (:class:`~repro.topology.network.Network`),
* the routing matrix built by the CSPF/IGP simulator,
* a 24-hour, five-minute-resolution traffic-matrix series, and
* the busy-period window used for estimation (the paper uses 250 minutes =
  50 samples).

From these it derives the observable quantities the estimators are allowed
to see — link-load snapshots and series, edge-node totals — packaged as
:class:`~repro.estimation.base.EstimationProblem` objects, and the ground
truth they are scored against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import TrafficError
from repro.estimation.base import EstimationProblem
from repro.measurement.linkloads import link_load_series
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.network import Network
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """A network plus a measured day of traffic, ready for estimation studies.

    Attributes
    ----------
    name:
        Scenario identifier (e.g. ``"europe"``).
    network:
        The backbone topology.
    routing:
        Routing matrix over the network's canonical pair order.
    day_series:
        24 hours of five-minute traffic matrices (the "measured" LSP data).
    busy_length:
        Number of snapshots in the busy-period window (the paper's 50).
    """

    name: str
    network: Network
    routing: RoutingMatrix
    day_series: TrafficMatrixSeries
    busy_length: int = 50
    _busy_series: Optional[TrafficMatrixSeries] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.routing.pairs != self.day_series.pairs:
            raise TrafficError("routing matrix and traffic series use different pair orderings")
        if self.busy_length < 2:
            raise TrafficError("busy_length must be at least 2")
        if self.busy_length > len(self.day_series):
            raise TrafficError("busy_length exceeds the length of the day series")

    # ------------------------------------------------------------------
    # traffic views
    # ------------------------------------------------------------------
    def busy_series(self) -> TrafficMatrixSeries:
        """The busy-period window: the ``busy_length`` busiest consecutive snapshots."""
        if self._busy_series is None:
            self._busy_series = self.day_series.busy_window(self.busy_length)
        return self._busy_series

    def busy_mean_matrix(self) -> TrafficMatrix:
        """Mean traffic matrix over the busy period (the estimation ground truth)."""
        return self.busy_series().mean_matrix()

    def busy_snapshot(self, index: int = 0) -> TrafficMatrix:
        """A single snapshot from the busy period."""
        return self.busy_series()[index]

    # ------------------------------------------------------------------
    # observable data / estimation problems
    # ------------------------------------------------------------------
    def _edge_totals(self, matrix: TrafficMatrix) -> tuple[dict[str, float], dict[str, float]]:
        return matrix.origin_totals(), matrix.destination_totals()

    def snapshot_problem(self, matrix: Optional[TrafficMatrix] = None) -> EstimationProblem:
        """Estimation problem for a single consistent snapshot.

        The default snapshot is the busy-period mean matrix, matching the
        paper's evaluation of the snapshot methods on the busy hour.  Link
        loads are computed as ``t = R s`` (the consistent data set of
        Section 5.1.4), and the edge totals of the same matrix are exposed
        as the observable ``t_e(n)`` / ``t_x(m)``.
        """
        matrix = matrix if matrix is not None else self.busy_mean_matrix()
        origin_totals, destination_totals = self._edge_totals(matrix)
        return EstimationProblem(
            routing=self.routing,
            link_loads=self.routing.link_loads(matrix.vector),
            origin_totals=origin_totals,
            destination_totals=destination_totals,
        )

    def series_problem(
        self,
        series: Optional[TrafficMatrixSeries] = None,
        window_length: Optional[int] = None,
    ) -> EstimationProblem:
        """Estimation problem exposing a link-load time series.

        Used by the fanout and Vardi estimators.  The series defaults to the
        busy period; ``window_length`` truncates it.  Per-snapshot origin
        ingress totals are included (they are observable from access links).
        """
        series = series if series is not None else self.busy_series()
        if window_length is not None:
            series = series.window(0, window_length)
        loads = link_load_series(self.routing, series)
        origins = tuple(dict.fromkeys(pair.origin for pair in series.pairs))
        totals = np.zeros((len(series), len(origins)))
        for k, snapshot in enumerate(series):
            origin_totals = snapshot.origin_totals()
            totals[k] = [origin_totals.get(origin, 0.0) for origin in origins]
        mean_matrix = series.mean_matrix()
        origin_totals, destination_totals = self._edge_totals(mean_matrix)
        return EstimationProblem(
            routing=self.routing,
            link_loads=loads.mean(axis=0),
            link_load_series=loads,
            origin_totals=origin_totals,
            destination_totals=destination_totals,
            origin_totals_series=totals,
            origin_names=origins,
        )

    # ------------------------------------------------------------------
    # descriptive statistics used by the data-analysis figures
    # ------------------------------------------------------------------
    def total_traffic_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps_seconds, normalised_total_traffic)`` for Figure 1."""
        totals = self.day_series.total_traffic_series()
        peak = totals.max()
        if peak <= 0:
            raise TrafficError("scenario has no traffic")
        return self.day_series.timestamps(), totals / peak

    def describe(self) -> dict[str, float]:
        """Headline scenario numbers (PoPs, links, demands, traffic volume)."""
        busy = self.busy_mean_matrix()
        return {
            "num_pops": float(self.network.num_nodes),
            "num_links": float(self.network.num_links),
            "num_pairs": float(self.network.num_pairs),
            "busy_total_traffic": busy.total,
            "routing_rank": float(self.routing.rank()),
        }
