"""Scenario objects bundling a network, its routing and a day of traffic.

A :class:`Scenario` is the unit every benchmark and example works with: it
ties together

* the topology (:class:`~repro.topology.network.Network`),
* the routing matrix built by the CSPF/IGP simulator,
* a 24-hour, five-minute-resolution traffic-matrix series, and
* the busy-period window used for estimation (the paper uses 250 minutes =
  50 samples).

From these it derives the observable quantities the estimators are allowed
to see — link-load snapshots and series, edge-node totals — packaged as
:class:`~repro.estimation.base.EstimationProblem` objects, and the ground
truth they are scored against.  :meth:`Scenario.sweep` scores every
registered estimation method (or a chosen subset) over the series using the
batched ``estimate_series`` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import EstimationError, SolverError, TrafficError
from repro.estimation.base import EstimationProblem, SeriesEstimationResult
from repro.measurement.linkloads import link_load_series
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.network import Network
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = ["Scenario", "SweepRecord"]


@dataclass(frozen=True)
class SweepRecord:
    """Score of one estimation method over a scenario's series.

    Attributes
    ----------
    method:
        Registry name of the method.
    mre:
        Mean relative error of the mean estimate against the window-mean
        truth (the paper's headline metric), or ``NaN`` when skipped.
    per_snapshot_mre:
        MRE of each snapshot's estimate against that snapshot's truth.
    error:
        Why the method was skipped (empty when it ran).
    """

    method: str
    mre: float
    per_snapshot_mre: np.ndarray
    error: str = ""

    @property
    def skipped(self) -> bool:
        """Whether the method could not run on this scenario's data."""
        return bool(self.error)


@dataclass
class Scenario:
    """A network plus a measured day of traffic, ready for estimation studies.

    Attributes
    ----------
    name:
        Scenario identifier (e.g. ``"europe"``).
    network:
        The backbone topology.
    routing:
        Routing matrix over the network's canonical pair order.
    day_series:
        24 hours of five-minute traffic matrices (the "measured" LSP data).
    busy_length:
        Number of snapshots in the busy-period window (the paper's 50).
    """

    name: str
    network: Network
    routing: RoutingMatrix
    day_series: TrafficMatrixSeries
    busy_length: int = 50
    _busy_series: Optional[TrafficMatrixSeries] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.routing.pairs != self.day_series.pairs:
            raise TrafficError("routing matrix and traffic series use different pair orderings")
        if self.busy_length < 2:
            raise TrafficError("busy_length must be at least 2")
        if self.busy_length > len(self.day_series):
            raise TrafficError("busy_length exceeds the length of the day series")

    # ------------------------------------------------------------------
    # traffic views
    # ------------------------------------------------------------------
    def busy_series(self) -> TrafficMatrixSeries:
        """The busy-period window: the ``busy_length`` busiest consecutive snapshots."""
        if self._busy_series is None:
            self._busy_series = self.day_series.busy_window(self.busy_length)
        return self._busy_series

    def busy_mean_matrix(self) -> TrafficMatrix:
        """Mean traffic matrix over the busy period (the estimation ground truth)."""
        return self.busy_series().mean_matrix()

    def busy_snapshot(self, index: int = 0) -> TrafficMatrix:
        """A single snapshot from the busy period."""
        return self.busy_series()[index]

    # ------------------------------------------------------------------
    # observable data / estimation problems
    # ------------------------------------------------------------------
    def _edge_totals(self, matrix: TrafficMatrix) -> tuple[dict[str, float], dict[str, float]]:
        return matrix.origin_totals(), matrix.destination_totals()

    def snapshot_problem(self, matrix: Optional[TrafficMatrix] = None) -> EstimationProblem:
        """Estimation problem for a single consistent snapshot.

        The default snapshot is the busy-period mean matrix, matching the
        paper's evaluation of the snapshot methods on the busy hour.  Link
        loads are computed as ``t = R s`` (the consistent data set of
        Section 5.1.4), and the edge totals of the same matrix are exposed
        as the observable ``t_e(n)`` / ``t_x(m)``.
        """
        matrix = matrix if matrix is not None else self.busy_mean_matrix()
        origin_totals, destination_totals = self._edge_totals(matrix)
        return EstimationProblem(
            routing=self.routing,
            link_loads=self.routing.link_loads(matrix.vector),
            origin_totals=origin_totals,
            destination_totals=destination_totals,
        )

    def series_problem(
        self,
        series: Optional[TrafficMatrixSeries] = None,
        window_length: Optional[int] = None,
    ) -> EstimationProblem:
        """Estimation problem exposing a link-load time series.

        Used by the time-series estimators (fanout, Vardi) and by the
        batched ``estimate_series`` path.  The series defaults to the busy
        period; ``window_length`` truncates it.  Per-snapshot origin ingress
        and destination egress totals are included (both are observable from
        the edge links), all computed vectorised from the demand array.
        """
        series = series if series is not None else self.busy_series()
        if window_length is not None:
            series = series.window(0, window_length)
        loads = link_load_series(self.routing, series)
        demands = series.as_array()  # (K, P)
        origins = tuple(dict.fromkeys(pair.origin for pair in series.pairs))
        destinations = tuple(dict.fromkeys(pair.destination for pair in series.pairs))
        origin_index = {name: idx for idx, name in enumerate(origins)}
        destination_index = {name: idx for idx, name in enumerate(destinations)}
        origin_cols = np.array([origin_index[pair.origin] for pair in series.pairs])
        destination_cols = np.array(
            [destination_index[pair.destination] for pair in series.pairs]
        )
        origin_series = np.zeros((len(series), len(origins)))
        np.add.at(origin_series.T, origin_cols, demands.T)
        destination_series = np.zeros((len(series), len(destinations)))
        np.add.at(destination_series.T, destination_cols, demands.T)
        mean_matrix = series.mean_matrix()
        origin_totals, destination_totals = self._edge_totals(mean_matrix)
        return EstimationProblem(
            routing=self.routing,
            link_loads=loads.mean(axis=0),
            link_load_series=loads,
            origin_totals=origin_totals,
            destination_totals=destination_totals,
            origin_totals_series=origin_series,
            origin_names=origins,
            destination_totals_series=destination_series,
            destination_names=destinations,
        )

    # ------------------------------------------------------------------
    # method sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        methods: Optional[Sequence[Union[str, tuple[str, Mapping]]]] = None,
        window_length: Optional[int] = None,
        skip_errors: bool = True,
    ) -> list[SweepRecord]:
        """Score estimation methods over the busy-period series.

        Every method runs through its batched
        :meth:`~repro.estimation.base.Estimator.estimate_series` path on one
        shared series problem and is scored against the per-snapshot ground
        truth, so new methods added to the registry are picked up without
        touching any runner code.

        Parameters
        ----------
        methods:
            Method names (or ``(name, params)`` tuples) to run; defaults to
            every registered estimator.
        window_length:
            Truncate the busy-period series to this many snapshots.
        skip_errors:
            When ``True`` (default), methods that cannot run on this
            scenario's observables (or need constructor arguments) are
            reported as skipped records instead of raising.
        """
        from repro.estimation.registry import available_estimators, get_estimator
        from repro.evaluation.metrics import mean_relative_error

        if methods is None:
            methods = available_estimators()
        problem = self.series_problem(window_length=window_length)
        truth_series = self.busy_series()
        if window_length is not None:
            truth_series = truth_series.window(0, window_length)
        truth_snapshots = [truth_series[k] for k in range(len(truth_series))]
        truth_mean = truth_series.mean_matrix()

        def skip_record(name: str, exc: Exception) -> SweepRecord:
            return SweepRecord(
                method=name,
                mre=float("nan"),
                per_snapshot_mre=np.array([]),
                error=str(exc),
            )

        records: list[SweepRecord] = []
        for entry in methods:
            name, params = entry if isinstance(entry, tuple) else (entry, {})
            try:
                # TypeError here means the params do not fit the estimator's
                # constructor signature; past this point it would be a bug.
                estimator = get_estimator(name, **dict(params))
            except (EstimationError, TypeError) as exc:
                if not skip_errors:
                    raise
                records.append(skip_record(name, exc))
                continue
            try:
                result: SeriesEstimationResult = estimator.estimate_series(problem)
                per_snapshot = np.array(
                    [
                        mean_relative_error(result.matrix(k), truth_snapshots[k])
                        for k in range(len(result))
                    ]
                )
                mre = mean_relative_error(result.mean_matrix(), truth_mean)
            except (EstimationError, SolverError) as exc:
                if not skip_errors:
                    raise
                records.append(skip_record(name, exc))
                continue
            records.append(
                SweepRecord(method=name, mre=mre, per_snapshot_mre=per_snapshot)
            )
        return records

    # ------------------------------------------------------------------
    # descriptive statistics used by the data-analysis figures
    # ------------------------------------------------------------------
    def total_traffic_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """``(timestamps_seconds, normalised_total_traffic)`` for Figure 1."""
        totals = self.day_series.total_traffic_series()
        peak = totals.max()
        if peak <= 0:
            raise TrafficError("scenario has no traffic")
        return self.day_series.timestamps(), totals / peak

    def describe(self) -> dict[str, float]:
        """Headline scenario numbers (PoPs, links, demands, traffic volume)."""
        busy = self.busy_mean_matrix()
        return {
            "num_pops": float(self.network.num_nodes),
            "num_links": float(self.network.num_links),
            "num_pairs": float(self.network.num_pairs),
            "busy_total_traffic": busy.total,
            "routing_rank": float(self.routing.rank()),
        }
