"""Serialisation of networks, traffic matrices and measurement data.

Operators exchange topologies and traffic matrices as files (the paper's
pipeline exports the Cariden MATE routing simulation as a text file and
loads it into the estimation code).  This module provides a stable JSON
representation for every core object of the library so that scenarios can be
archived, shared and re-loaded without re-running the generators:

* :func:`network_to_dict` / :func:`network_from_dict` — topologies;
* :func:`traffic_matrix_to_dict` / :func:`traffic_matrix_from_dict` — one
  traffic matrix;
* :func:`series_to_dict` / :func:`series_from_dict` — a matrix time series;
* :func:`routing_matrix_to_dict` / :func:`routing_matrix_from_dict` — the
  routing matrix with its link/pair labelling;
* :func:`save_json` / :func:`load_json` — thin file helpers;
* :func:`save_scenario` / :func:`load_scenario` — a whole
  :class:`~repro.datasets.scenarios.Scenario` as one JSON document.

The format is versioned through a ``"format"`` field so future revisions can
stay backward compatible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.datasets.scenarios import Scenario
from repro.errors import ReproError
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import Link, LinkKind, Node, NodePair, NodeRole
from repro.topology.network import Network
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "traffic_matrix_to_dict",
    "traffic_matrix_from_dict",
    "series_to_dict",
    "series_from_dict",
    "routing_matrix_to_dict",
    "routing_matrix_from_dict",
    "save_json",
    "load_json",
    "save_scenario",
    "load_scenario",
]

_FORMAT_NETWORK = "repro.network/1"
_FORMAT_MATRIX = "repro.traffic-matrix/1"
_FORMAT_SERIES = "repro.traffic-series/1"
_FORMAT_ROUTING = "repro.routing-matrix/1"
_FORMAT_SCENARIO = "repro.scenario/1"


def _require_format(data: dict[str, Any], expected: str) -> None:
    found = data.get("format")
    if found != expected:
        raise ReproError(f"unexpected document format {found!r}, expected {expected!r}")


# ----------------------------------------------------------------------
# networks
# ----------------------------------------------------------------------
def network_to_dict(network: Network) -> dict[str, Any]:
    """Serialise a network (nodes, links and their attributes)."""
    return {
        "format": _FORMAT_NETWORK,
        "name": network.name,
        "nodes": [
            {
                "name": node.name,
                "role": node.role.value,
                "region": node.region,
                "population": node.population,
                "city": node.city,
            }
            for node in network.nodes
        ],
        "links": [
            {
                "name": link.name,
                "source": link.source,
                "target": link.target,
                "capacity_mbps": link.capacity_mbps,
                "metric": link.metric,
                "kind": link.kind.value,
            }
            for link in network.links
        ],
    }


def network_from_dict(data: dict[str, Any]) -> Network:
    """Rebuild a network from its serialised form."""
    _require_format(data, _FORMAT_NETWORK)
    network = Network(data["name"])
    for entry in data["nodes"]:
        network.add_node(
            Node(
                name=entry["name"],
                role=NodeRole(entry["role"]),
                region=entry.get("region"),
                population=float(entry.get("population", 1.0)),
                city=entry.get("city"),
            )
        )
    for entry in data["links"]:
        network.add_link(
            Link(
                source=entry["source"],
                target=entry["target"],
                capacity_mbps=float(entry["capacity_mbps"]),
                metric=float(entry["metric"]),
                kind=LinkKind(entry["kind"]),
                name=entry.get("name", ""),
            )
        )
    return network


# ----------------------------------------------------------------------
# traffic matrices and series
# ----------------------------------------------------------------------
def _pairs_to_list(pairs) -> list[list[str]]:
    return [[pair.origin, pair.destination] for pair in pairs]


def _pairs_from_list(entries) -> tuple[NodePair, ...]:
    return tuple(NodePair(origin, destination) for origin, destination in entries)


def traffic_matrix_to_dict(matrix: TrafficMatrix) -> dict[str, Any]:
    """Serialise one traffic matrix (pair ordering plus demand values)."""
    return {
        "format": _FORMAT_MATRIX,
        "pairs": _pairs_to_list(matrix.pairs),
        "values": matrix.vector.tolist(),
    }


def traffic_matrix_from_dict(data: dict[str, Any]) -> TrafficMatrix:
    """Rebuild a traffic matrix from its serialised form."""
    _require_format(data, _FORMAT_MATRIX)
    return TrafficMatrix(_pairs_from_list(data["pairs"]), data["values"])


def series_to_dict(series: TrafficMatrixSeries) -> dict[str, Any]:
    """Serialise a traffic-matrix time series."""
    return {
        "format": _FORMAT_SERIES,
        "pairs": _pairs_to_list(series.pairs),
        "interval_seconds": series.interval_seconds,
        "start_time_seconds": series.start_time_seconds,
        "snapshots": series.as_array().tolist(),
    }


def series_from_dict(data: dict[str, Any]) -> TrafficMatrixSeries:
    """Rebuild a traffic-matrix time series from its serialised form."""
    _require_format(data, _FORMAT_SERIES)
    pairs = _pairs_from_list(data["pairs"])
    snapshots = [TrafficMatrix(pairs, row) for row in data["snapshots"]]
    return TrafficMatrixSeries(
        snapshots,
        interval_seconds=float(data["interval_seconds"]),
        start_time_seconds=float(data["start_time_seconds"]),
    )


# ----------------------------------------------------------------------
# routing matrices
# ----------------------------------------------------------------------
def routing_matrix_to_dict(routing: RoutingMatrix) -> dict[str, Any]:
    """Serialise a routing matrix with its row/column labelling.

    The matrix itself is stored sparsely (row, column, value triplets) since
    backbone routing matrices are mostly zeros.
    """
    rows, cols = np.nonzero(routing.matrix)
    return {
        "format": _FORMAT_ROUTING,
        "link_names": list(routing.link_names),
        "pairs": _pairs_to_list(routing.pairs),
        "entries": [
            [int(r), int(c), float(routing.matrix[r, c])] for r, c in zip(rows, cols)
        ],
    }


def routing_matrix_from_dict(data: dict[str, Any], network: Network | None = None) -> RoutingMatrix:
    """Rebuild a routing matrix from its serialised form."""
    _require_format(data, _FORMAT_ROUTING)
    link_names = data["link_names"]
    pairs = _pairs_from_list(data["pairs"])
    matrix = np.zeros((len(link_names), len(pairs)))
    for row, col, value in data["entries"]:
        matrix[int(row), int(col)] = float(value)
    return RoutingMatrix(matrix, link_names, pairs, network=network)


# ----------------------------------------------------------------------
# files and whole scenarios
# ----------------------------------------------------------------------
def save_json(data: dict[str, Any], path: str | Path) -> Path:
    """Write a serialised document to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(data, handle)
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialised document from ``path``."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such file: {path}")
    with path.open() as handle:
        return json.load(handle)


def save_scenario(scenario: Scenario, path: str | Path) -> Path:
    """Serialise a whole scenario (topology, routing, day series) to one JSON file."""
    document = {
        "format": _FORMAT_SCENARIO,
        "name": scenario.name,
        "busy_length": scenario.busy_length,
        "network": network_to_dict(scenario.network),
        "routing": routing_matrix_to_dict(scenario.routing),
        "day_series": series_to_dict(scenario.day_series),
    }
    return save_json(document, path)


def load_scenario(path: str | Path) -> Scenario:
    """Load a scenario previously written by :func:`save_scenario`."""
    data = load_json(path)
    _require_format(data, _FORMAT_SCENARIO)
    network = network_from_dict(data["network"])
    routing = routing_matrix_from_dict(data["routing"], network=network)
    series = series_from_dict(data["day_series"])
    return Scenario(
        name=data["name"],
        network=network,
        routing=routing,
        day_series=series,
        busy_length=int(data["busy_length"]),
    )
