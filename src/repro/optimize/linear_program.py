"""Linear programming wrapper used by the worst-case-bound estimator.

The worst-case bounds of the paper (Section 4.3.1) solve, for every
origin-destination pair ``p``, the two linear programs

    maximise / minimise ``s_p``  subject to ``R s = t``, ``s >= 0``.

This module wraps SciPy's HiGHS solver behind a small interface that

* accepts the problem in exactly that form,
* normalises infeasibility / unboundedness into
  :class:`~repro.errors.SolverError`, and
* exposes a convenience :func:`bound_variable` that returns both the lower
  and upper bound of one coordinate in a single call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.optimize
import scipy.sparse

from repro.errors import SolverError

__all__ = ["LPResult", "solve_linear_program", "bound_variable"]


@dataclass(frozen=True)
class LPResult:
    """Solution of one linear program.

    Attributes
    ----------
    x:
        Optimal point.
    objective:
        Optimal objective value (in the *original* sense — maximisation
        results are reported as the maximum, not its negation).
    status:
        Human-readable solver status.
    """

    x: np.ndarray
    objective: float
    status: str


def solve_linear_program(
    cost: np.ndarray,
    equality_matrix: Optional[np.ndarray] = None,
    equality_rhs: Optional[np.ndarray] = None,
    upper_bounds: Optional[np.ndarray] = None,
    maximise: bool = False,
) -> LPResult:
    """Solve ``min/max cost @ x`` s.t. ``equality_matrix @ x = equality_rhs``, ``0 <= x <= ub``.

    Parameters
    ----------
    cost:
        Objective coefficients.
    equality_matrix, equality_rhs:
        Equality constraints (may be omitted together).  The matrix may be
        dense or a SciPy sparse matrix; sparse constraints are passed to the
        HiGHS solver without densification.
    upper_bounds:
        Optional per-variable upper bounds (``None`` entries mean unbounded).
    maximise:
        Maximise instead of minimise.

    Raises
    ------
    SolverError
        On infeasible, unbounded or otherwise failed problems.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 1:
        raise SolverError("cost must be a one-dimensional array")
    if (equality_matrix is None) != (equality_rhs is None):
        raise SolverError("equality_matrix and equality_rhs must be given together")
    if equality_matrix is not None:
        if not scipy.sparse.issparse(equality_matrix):
            equality_matrix = np.asarray(equality_matrix, dtype=float)
        equality_rhs = np.asarray(equality_rhs, dtype=float)
        if equality_matrix.shape != (len(equality_rhs), len(cost)):
            raise SolverError(
                f"equality matrix shape {equality_matrix.shape} inconsistent with "
                f"{len(equality_rhs)} constraints and {len(cost)} variables"
            )
    if upper_bounds is None:
        bounds = [(0.0, None)] * len(cost)
    else:
        upper_bounds = np.asarray(upper_bounds, dtype=float)
        if upper_bounds.shape != cost.shape:
            raise SolverError("upper_bounds must match the number of variables")
        bounds = [(0.0, float(ub) if np.isfinite(ub) else None) for ub in upper_bounds]

    sign = -1.0 if maximise else 1.0
    outcome = scipy.optimize.linprog(
        c=sign * cost,
        A_eq=equality_matrix,
        b_eq=equality_rhs,
        bounds=bounds,
        method="highs",
    )
    if not outcome.success:
        raise SolverError(f"linear program failed: {outcome.message}")
    return LPResult(x=np.asarray(outcome.x), objective=float(sign * outcome.fun), status=outcome.message)


def bound_variable(
    index: int,
    equality_matrix: np.ndarray,
    equality_rhs: np.ndarray,
    num_variables: Optional[int] = None,
) -> tuple[float, float]:
    """Lower and upper bound of coordinate ``index`` over ``{x >= 0 : A x = b}``.

    Returns ``(lower, upper)``.  This is exactly the per-demand bound pair of
    the paper's worst-case-bound method.
    """
    equality_matrix = np.asarray(equality_matrix, dtype=float)
    if num_variables is None:
        num_variables = equality_matrix.shape[1]
    if not 0 <= index < num_variables:
        raise SolverError(f"variable index {index} out of range for {num_variables} variables")
    cost = np.zeros(num_variables)
    cost[index] = 1.0
    lower = solve_linear_program(cost, equality_matrix, equality_rhs, maximise=False)
    upper = solve_linear_program(cost, equality_matrix, equality_rhs, maximise=True)
    return lower.objective, upper.objective
