"""Linear programming wrappers and the batched worst-case-bound engine.

The worst-case bounds of the paper (Section 4.3.1) solve, for every
origin-destination pair ``p``, the two linear programs

    maximise / minimise ``s_p``  subject to ``R s = t``, ``s >= 0``.

Solved naively this is two cold-start LPs per pair — the computational
bottleneck the paper itself warns about.  This module provides three layers:

* :func:`solve_linear_program` — one LP through SciPy's HiGHS interface,
  with infeasibility / unboundedness normalised into
  :class:`~repro.errors.SolverError`;
* :func:`bound_variable` — the lower/upper bound pair of one coordinate
  (now a thin wrapper over the batched engine);
* :func:`bound_variables_batch` — the batched engine: the sparse constraint
  model is built **once**, a structural presolve removes every pair whose
  bounds follow without an LP (rank-pinned coordinates of the equality
  system, and combinatorially tight intervals), and the surviving LPs are
  solved either on an incremental HiGHS model that is re-solved from the
  previous optimal basis (objective changes only), or fanned out in chunks
  across a process pool when ``n_jobs`` asks for it.

The presolve reductions are exact:

* **rank pinning** — coordinates on which the null space of ``A`` vanishes
  take the same value at every solution of ``A x = b``; that value is read
  off the minimum-norm solution, no LP needed;
* **combinatorial bounds** — ``a_ip x_p <= b_i`` gives the upper bound
  ``min_i b_i / a_ip`` over the rows traversed, and subtracting every
  competitor's upper bound from a row's right-hand side gives a lower
  bound; both always *contain* the LP bounds, so an interval that is
  already tight lets the pair skip both LPs;
* **zero witnesses** — every LP solution is a feasible point, so any
  coordinate at zero in one certifies that the minimum of that coordinate
  is exactly zero, letting later minimisation LPs be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np
import scipy.optimize
import scipy.sparse

from repro.errors import SolverError
from repro.parallel import effective_jobs

__all__ = [
    "LPResult",
    "BatchBoundsResult",
    "solve_linear_program",
    "bound_variable",
    "bound_variables_batch",
    "presolve_variable_bounds",
]

#: Relative tolerance deciding that a presolved interval is already tight.
_TIGHT_TOLERANCE = 1e-9

#: Null-space magnitude below which a coordinate counts as rank-pinned.
_PIN_TOLERANCE = 1e-10

#: Solution values below this certify "this coordinate can be zero".
_ZERO_WITNESS_TOLERANCE = 1e-11


@dataclass(frozen=True)
class LPResult:
    """Solution of one linear program.

    Attributes
    ----------
    x:
        Optimal point.
    objective:
        Optimal objective value (in the *original* sense — maximisation
        results are reported as the maximum, not its negation).
    status:
        Human-readable solver status.
    """

    x: np.ndarray
    objective: float
    status: str


@dataclass(frozen=True)
class BatchBoundsResult:
    """Lower/upper bounds of a batch of coordinates over ``{x >= 0 : A x = b}``.

    Attributes
    ----------
    indices:
        The variable indices that were bounded, in request order.
    lower, upper:
        Bound arrays aligned with ``indices``.
    num_pinned:
        Coordinates resolved by rank pinning (no LP).
    num_tight:
        Coordinates whose combinatorial interval was already tight (no LP).
    num_lps_solved:
        Linear programs actually handed to the solver.
    num_lower_skipped:
        Minimisation LPs skipped thanks to a zero witness.
    engine:
        ``"highs-incremental"``, ``"linprog"`` or ``"presolve-only"``.
    n_jobs:
        Number of worker processes used (1 = in-process).
    """

    indices: tuple[int, ...]
    lower: np.ndarray
    upper: np.ndarray
    num_pinned: int = 0
    num_tight: int = 0
    num_lps_solved: int = 0
    num_lower_skipped: int = 0
    engine: str = "presolve-only"
    n_jobs: int = 1

    def pairs(self) -> list[tuple[float, float]]:
        """The ``(lower, upper)`` tuples in request order."""
        return [(float(lo), float(up)) for lo, up in zip(self.lower, self.upper)]


def solve_linear_program(
    cost: np.ndarray,
    equality_matrix: Optional[np.ndarray] = None,
    equality_rhs: Optional[np.ndarray] = None,
    upper_bounds: Optional[np.ndarray] = None,
    maximise: bool = False,
) -> LPResult:
    """Solve ``min/max cost @ x`` s.t. ``equality_matrix @ x = equality_rhs``, ``0 <= x <= ub``.

    Parameters
    ----------
    cost:
        Objective coefficients.
    equality_matrix, equality_rhs:
        Equality constraints (may be omitted together).  The matrix may be
        dense or a SciPy sparse matrix; sparse constraints are passed to the
        HiGHS solver without densification.
    upper_bounds:
        Optional per-variable upper bounds (``None`` entries mean unbounded).
    maximise:
        Maximise instead of minimise.

    Raises
    ------
    SolverError
        On infeasible, unbounded or otherwise failed problems.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 1:
        raise SolverError("cost must be a one-dimensional array")
    if (equality_matrix is None) != (equality_rhs is None):
        raise SolverError("equality_matrix and equality_rhs must be given together")
    if equality_matrix is not None:
        if not scipy.sparse.issparse(equality_matrix):
            equality_matrix = np.asarray(equality_matrix, dtype=float)
        equality_rhs = np.asarray(equality_rhs, dtype=float)
        if equality_matrix.shape != (len(equality_rhs), len(cost)):
            raise SolverError(
                f"equality matrix shape {equality_matrix.shape} inconsistent with "
                f"{len(equality_rhs)} constraints and {len(cost)} variables"
            )
    if upper_bounds is None:
        bounds = [(0.0, None)] * len(cost)
    else:
        upper_bounds = np.asarray(upper_bounds, dtype=float)
        if upper_bounds.shape != cost.shape:
            raise SolverError("upper_bounds must match the number of variables")
        bounds = [(0.0, float(ub) if np.isfinite(ub) else None) for ub in upper_bounds]

    sign = -1.0 if maximise else 1.0
    outcome = scipy.optimize.linprog(
        c=sign * cost,
        A_eq=equality_matrix,
        b_eq=equality_rhs,
        bounds=bounds,
        method="highs",
    )
    if not outcome.success:
        raise SolverError(f"linear program failed: {outcome.message}")
    return LPResult(x=np.asarray(outcome.x), objective=float(sign * outcome.fun), status=outcome.message)


# ----------------------------------------------------------------------
# structural presolve
# ----------------------------------------------------------------------
def _as_csr(matrix: Union[np.ndarray, scipy.sparse.spmatrix]) -> scipy.sparse.csr_matrix:
    if scipy.sparse.issparse(matrix):
        return matrix.tocsr()
    return scipy.sparse.csr_matrix(np.asarray(matrix, dtype=float))


def presolve_variable_bounds(
    matrix: Union[np.ndarray, scipy.sparse.spmatrix],
    rhs: np.ndarray,
    propagation_rounds: int = 3,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Structural bounds on every coordinate of ``{x >= 0 : A x = b}``.

    Returns ``(lower, upper, pinned)``:

    * ``upper[p] = min_i b_i / a_ip`` over rows with ``a_ip > 0`` — the
      "minimum traversed link load" bound (``inf`` when no row covers the
      variable);
    * ``lower[p]`` from interval propagation: a row's load minus the upper
      bounds of every competing variable on that row, iterated
      ``propagation_rounds`` times;
    * ``pinned`` marks coordinates on which the null space of ``A``
      vanishes; for those, ``lower == upper`` equals the unique value the
      equality system allows.

    These intervals always **contain** the exact LP bounds, and they are
    valid for any feasible system; infeasibility is *not* detected here.
    """
    csr = _as_csr(matrix)
    rhs = np.asarray(rhs, dtype=float)
    num_rows, num_vars = csr.shape
    if rhs.shape != (num_rows,):
        raise SolverError(f"rhs has shape {rhs.shape}, expected ({num_rows},)")

    coo = csr.tocoo()
    # The combinatorial reasoning below assumes non-negative coefficients
    # (true for routing systems); with mixed signs fall back to the trivial
    # intervals and let the rank analysis do what it can.
    combinatorial = not np.any(coo.data < 0)
    positive = coo.data > 0
    rows, cols, vals = coo.row[positive], coo.col[positive], coo.data[positive]

    upper = np.full(num_vars, np.inf)
    if combinatorial and len(vals):
        np.minimum.at(upper, cols, rhs[rows] / vals)

    lower = np.zeros(num_vars)
    if combinatorial and len(vals):
        covered = np.zeros(num_vars, dtype=bool)
        covered[cols] = True
        for _ in range(max(1, propagation_rounds)):
            finite = np.isfinite(upper)
            capped = np.where(finite, upper, 0.0)
            row_cap = np.zeros(num_rows)
            np.add.at(row_cap, rows, vals * capped[cols])
            row_free_count = np.zeros(num_rows)
            np.add.at(row_free_count, rows, (~finite[cols]).astype(float))
            # b_i - (row cap without p's own contribution), valid only when
            # every *other* variable on the row has a finite upper bound:
            # either the row has no unbounded variable at all, or exactly
            # one and it is p itself.
            candidate = (rhs[rows] - row_cap[rows] + vals * capped[cols]) / vals
            usable = (row_free_count[rows] == 0) | (
                (row_free_count[rows] == 1) & ~finite[cols]
            )
            new_lower = lower.copy()
            np.maximum.at(new_lower, cols[usable], candidate[usable])
            new_lower = np.maximum(new_lower, 0.0)
            # Tighter lower bounds tighten nothing else in this scheme, so
            # one extra round with refreshed uppers is enough to converge.
            if np.allclose(new_lower, lower):
                lower = new_lower
                break
            lower = new_lower
        lower = np.minimum(lower, np.where(np.isfinite(upper), upper, lower))
        lower[~covered] = 0.0

    pinned = _rank_pinned_values(csr, rhs, num_vars)
    if pinned is not None:
        pinned_mask, pinned_values = pinned
        lower = np.where(pinned_mask, pinned_values, lower)
        upper = np.where(pinned_mask, pinned_values, upper)
        return lower, upper, pinned_mask
    return lower, upper, np.zeros(num_vars, dtype=bool)


def _rank_pinned_values(
    csr: scipy.sparse.csr_matrix, rhs: np.ndarray, num_vars: int
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Coordinates fixed by the equality system alone, and their values.

    A coordinate whose component vanishes on the whole null space of ``A``
    takes the same value at *every* solution of ``A x = b``; the value is
    read off the minimum-norm solution.  Returns ``None`` when the dense
    decomposition would be unreasonably large.
    """
    num_rows = csr.shape[0]
    # The SVD is O(min(m,n)^2 * max(m,n)) on the dense matrix; routing
    # systems are small on the row side, so this stays far below one LP.
    if num_rows * num_vars > 4_000_000:
        return None
    dense = csr.toarray()
    try:
        _, singular, vt = np.linalg.svd(dense, full_matrices=True)
    except np.linalg.LinAlgError:
        return None
    tol = (singular.max(initial=0.0)) * max(dense.shape) * np.finfo(float).eps
    rank = int((singular > tol).sum())
    if rank >= num_vars:
        pinned_mask = np.ones(num_vars, dtype=bool)
    else:
        null_basis = vt[rank:]
        pinned_mask = np.abs(null_basis).max(axis=0) < _PIN_TOLERANCE
    if not pinned_mask.any():
        return pinned_mask, np.zeros(num_vars)
    min_norm, *_ = np.linalg.lstsq(dense, rhs, rcond=None)
    values = np.where(pinned_mask, np.maximum(min_norm, 0.0), 0.0)
    return pinned_mask, values


# ----------------------------------------------------------------------
# incremental HiGHS engine
# ----------------------------------------------------------------------
def _load_highs_core():
    """The HiGHS python bindings vendored by SciPy, or ``None``.

    SciPy >= 1.15 ships ``scipy.optimize._highspy`` (the ``highspy``
    sources built against the bundled HiGHS); a standalone ``highspy``
    install works too.  Both expose the incremental model API that lets the
    engine build the constraint matrix once and re-solve from the previous
    optimal basis after an objective change.
    """
    try:
        from scipy.optimize._highspy import _core  # type: ignore[attr-defined]

        if hasattr(_core, "_Highs") or hasattr(_core, "Highs"):
            return _core
    except Exception:  # pragma: no cover - depends on the SciPy build
        pass
    try:  # pragma: no cover - exercised only with a standalone highspy
        import highspy

        return highspy
    except Exception:
        return None


class _IncrementalBoundSolver:
    """One HiGHS model, re-solved per coordinate with a warm basis.

    The constraint matrix and right-hand side are loaded once; bounding a
    coordinate is then two objective flips (`changeColCost` +
    `changeObjectiveSense`), each re-solved by HiGHS from the basis of the
    previous solve — orders of magnitude cheaper than cold-start LPs.
    """

    def __init__(self, csc: scipy.sparse.csc_matrix, rhs: np.ndarray) -> None:
        core = _load_highs_core()
        if core is None:
            raise SolverError("no incremental HiGHS bindings available")
        self._core = core
        highs_cls = getattr(core, "_Highs", None) or getattr(core, "Highs")
        num_rows, num_vars = csc.shape
        lp = core.HighsLp()
        lp.num_col_ = num_vars
        lp.num_row_ = num_rows
        lp.col_cost_ = np.zeros(num_vars)
        lp.col_lower_ = np.zeros(num_vars)
        lp.col_upper_ = np.full(num_vars, core.kHighsInf)
        lp.row_lower_ = np.asarray(rhs, dtype=float)
        lp.row_upper_ = np.asarray(rhs, dtype=float)
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = csc.indptr.astype(np.int32)
        lp.a_matrix_.index_ = csc.indices.astype(np.int32)
        lp.a_matrix_.value_ = csc.data.astype(float)
        self._highs = highs_cls()
        self._highs.setOptionValue("output_flag", False)
        status = self._highs.passModel(lp)
        if status not in (core.HighsStatus.kOk, core.HighsStatus.kWarning):
            raise SolverError(f"HiGHS rejected the bounds model: {status}")

    def solve(self, index: int, maximise: bool) -> tuple[float, np.ndarray]:
        """Optimal value and solution of ``min/max x_index``."""
        core = self._core
        highs = self._highs
        highs.changeColCost(index, 1.0)
        sense = core.ObjSense.kMaximize if maximise else core.ObjSense.kMinimize
        highs.changeObjectiveSense(sense)
        highs.run()
        model_status = highs.getModelStatus()
        if model_status != core.HighsModelStatus.kOptimal:
            highs.changeColCost(index, 0.0)
            raise SolverError(
                f"linear program failed: {highs.modelStatusToString(model_status)}"
            )
        objective = float(highs.getObjectiveValue())
        solution = np.asarray(highs.getSolution().col_value, dtype=float)
        highs.changeColCost(index, 0.0)
        return objective, solution


class _LinprogBoundSolver:
    """Cold-start fallback used when no HiGHS bindings are importable."""

    def __init__(self, csc: scipy.sparse.csc_matrix, rhs: np.ndarray) -> None:
        self._matrix = csc.tocsr()
        self._rhs = np.asarray(rhs, dtype=float)
        self._num_vars = csc.shape[1]

    def solve(self, index: int, maximise: bool) -> tuple[float, np.ndarray]:
        cost = np.zeros(self._num_vars)
        cost[index] = 1.0
        result = solve_linear_program(cost, self._matrix, self._rhs, maximise=maximise)
        return result.objective, result.x


def _make_bound_solver(csc: scipy.sparse.csc_matrix, rhs: np.ndarray):
    """Prefer the incremental engine; fall back to per-LP ``linprog``."""
    try:
        return _IncrementalBoundSolver(csc, rhs), "highs-incremental"
    # The fallback is recorded in the returned engine label, which the
    # batch surfaces in its diagnostics.
    except SolverError:  # reprolint: allow[fault-handling]
        return _LinprogBoundSolver(csc, rhs), "linprog"


def _solve_bound_chunk(
    csc: scipy.sparse.csc_matrix,
    rhs: np.ndarray,
    indices: Sequence[int],
    presolve_lower: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int, int, str]:
    """Bound ``indices`` on one solver instance, sharing zero witnesses.

    Returns ``(lower, upper, num_lps, num_lower_skipped, engine)`` with the
    bound arrays aligned to ``indices``.  The maximisation LP runs first:
    its solution is a feasible point, and every coordinate at zero in a
    feasible point has an exact lower bound of zero — so later minimisation
    LPs whose propagated lower bound is already zero can be skipped.
    """
    solver, engine = _make_bound_solver(csc, rhs)
    zero_witness = np.zeros(csc.shape[1], dtype=bool)
    lower = np.empty(len(indices))
    upper = np.empty(len(indices))
    num_lps = 0
    num_skipped = 0
    for out, index in enumerate(indices):
        up, solution = solver.solve(index, maximise=True)
        num_lps += 1
        zero_witness |= solution <= _ZERO_WITNESS_TOLERANCE
        if presolve_lower[index] <= _ZERO_WITNESS_TOLERANCE and zero_witness[index]:
            lo = 0.0
            num_skipped += 1
        else:
            lo, solution = solver.solve(index, maximise=False)
            num_lps += 1
            zero_witness |= solution <= _ZERO_WITNESS_TOLERANCE
        lower[out] = lo
        upper[out] = up
    return lower, upper, num_lps, num_skipped, engine


# ----------------------------------------------------------------------
# process-pool fan-out
# ----------------------------------------------------------------------
_POOL_MODEL: dict = {}


def _pool_initializer(csc_parts, rhs, presolve_lower) -> None:
    indptr, indices, data, shape = csc_parts
    _POOL_MODEL["csc"] = scipy.sparse.csc_matrix((data, indices, indptr), shape=shape)
    _POOL_MODEL["rhs"] = rhs
    _POOL_MODEL["presolve_lower"] = presolve_lower


def _pool_solve_chunk(chunk: Sequence[int]):
    return _solve_bound_chunk(
        _POOL_MODEL["csc"],
        _POOL_MODEL["rhs"],
        chunk,
        _POOL_MODEL["presolve_lower"],
    )


def bound_variables_batch(
    indices: Sequence[int],
    equality_matrix: Union[np.ndarray, scipy.sparse.spmatrix],
    equality_rhs: np.ndarray,
    n_jobs: Optional[int] = 1,
    presolve: bool = True,
    chunk_size: Optional[int] = None,
) -> BatchBoundsResult:
    """Lower and upper bounds of many coordinates over ``{x >= 0 : A x = b}``.

    The batched replacement for per-coordinate :func:`bound_variable` calls:
    the sparse constraint model is built once, the structural presolve
    (see :func:`presolve_variable_bounds`) resolves rank-pinned and
    combinatorially tight coordinates without any LP, and the surviving LPs
    run on an incremental HiGHS model re-solved from the previous basis —
    in-process for ``n_jobs=1``, or chunked across a process pool.

    Parameters
    ----------
    indices:
        Variable indices to bound (request order is preserved).
    equality_matrix, equality_rhs:
        The constraint system; dense or SciPy sparse.
    n_jobs:
        Worker processes for the surviving LPs.  ``1`` (default) solves
        in-process; ``None`` uses ``os.cpu_count()``.  Each worker builds
        its model once from shared arrays and solves a contiguous chunk.
    presolve:
        Disable to force every requested coordinate through the LPs
        (used by the parity tests).
    chunk_size:
        Pairs per pool task (default: survivors split evenly per worker).

    Raises
    ------
    SolverError
        On invalid input, or when any surviving LP is infeasible/unbounded.
    """
    csr = _as_csr(equality_matrix)
    rhs = np.asarray(equality_rhs, dtype=float)
    num_rows, num_vars = csr.shape
    if rhs.shape != (num_rows,):
        raise SolverError(f"rhs has shape {rhs.shape}, expected ({num_rows},)")
    index_list = [int(i) for i in indices]
    for index in index_list:
        if not 0 <= index < num_vars:
            raise SolverError(f"variable index {index} out of range for {num_vars} variables")
    if not index_list:
        return BatchBoundsResult(indices=(), lower=np.empty(0), upper=np.empty(0))

    lower = np.empty(len(index_list))
    upper = np.empty(len(index_list))
    num_pinned = 0
    num_tight = 0
    surviving: list[int] = []  # positions into index_list
    if presolve:
        pre_lower, pre_upper, pinned = presolve_variable_bounds(csr, rhs)
        scale = max(1.0, float(np.abs(rhs).max(initial=0.0)))
        for pos, index in enumerate(index_list):
            if pinned[index]:
                lower[pos] = upper[pos] = pre_lower[index]
                num_pinned += 1
            elif (
                np.isfinite(pre_upper[index])
                and pre_upper[index] - pre_lower[index] <= _TIGHT_TOLERANCE * scale
            ):
                lower[pos] = pre_lower[index]
                upper[pos] = pre_upper[index]
                num_tight += 1
            else:
                surviving.append(pos)
    else:
        pre_lower = np.zeros(num_vars)
        surviving = list(range(len(index_list)))

    engine = "presolve-only"
    num_lps = 0
    num_skipped = 0
    jobs = effective_jobs(n_jobs, len(surviving), error=SolverError)
    if not surviving and presolve:
        # Every requested coordinate was resolved structurally, so no LP ran
        # to certify feasibility; presolve on an infeasible system produces
        # garbage silently.  One zero-objective LP settles it.
        solve_linear_program(np.zeros(num_vars), csr, rhs)
    if surviving:
        csc = csr.tocsc()
        surviving_indices = [index_list[pos] for pos in surviving]
        if jobs == 1:
            chunk_results = [_solve_bound_chunk(csc, rhs, surviving_indices, pre_lower)]
            chunks = [surviving]
        else:
            from concurrent.futures import ProcessPoolExecutor

            if chunk_size is None:
                chunk_size = max(1, -(-len(surviving) // jobs))
            chunks = [
                surviving[start : start + chunk_size]
                for start in range(0, len(surviving), chunk_size)
            ]
            csc_parts = (csc.indptr, csc.indices, csc.data, csc.shape)
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_pool_initializer,
                initargs=(csc_parts, rhs, pre_lower),
            ) as pool:
                chunk_results = list(
                    pool.map(
                        _pool_solve_chunk,
                        [[index_list[pos] for pos in chunk] for chunk in chunks],
                    )
                )
        for chunk, (chunk_lower, chunk_upper, lps, skipped, chunk_engine) in zip(
            chunks, chunk_results
        ):
            for offset, pos in enumerate(chunk):
                lower[pos] = chunk_lower[offset]
                upper[pos] = chunk_upper[offset]
            num_lps += lps
            num_skipped += skipped
            engine = chunk_engine

    return BatchBoundsResult(
        indices=tuple(index_list),
        lower=lower,
        upper=upper,
        num_pinned=num_pinned,
        num_tight=num_tight,
        num_lps_solved=num_lps,
        num_lower_skipped=num_skipped,
        engine=engine,
        n_jobs=jobs,
    )


def bound_variable(
    index: int,
    equality_matrix: np.ndarray,
    equality_rhs: np.ndarray,
    num_variables: Optional[int] = None,
) -> tuple[float, float]:
    """Lower and upper bound of coordinate ``index`` over ``{x >= 0 : A x = b}``.

    Returns ``(lower, upper)``.  This is exactly the per-demand bound pair
    of the paper's worst-case-bound method, kept as a thin wrapper over
    :func:`bound_variables_batch` — callers bounding more than one
    coordinate should use the batch API directly.
    """
    if num_variables is not None:
        matrix_cols = (
            equality_matrix.shape[1]
            if scipy.sparse.issparse(equality_matrix)
            else np.asarray(equality_matrix, dtype=float).shape[1]
        )
        if matrix_cols != num_variables:
            raise SolverError(
                f"equality matrix has {matrix_cols} columns, expected {num_variables}"
            )
    result = bound_variables_batch([index], equality_matrix, equality_rhs, n_jobs=1)
    return float(result.lower[0]), float(result.upper[0])
