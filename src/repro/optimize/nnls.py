"""Non-negative least squares (NNLS) solvers.

Most estimators in the paper reduce to a least-squares problem with a
non-negativity constraint on the demands:

    minimize ``|| A x - b ||_2^2``  subject to ``x >= 0``.

Two solvers are provided:

* :func:`nnls_active_set` — a thin wrapper around SciPy's Lawson-Hanson
  implementation, exact but cubic in the number of variables;
* :func:`nnls_projected_gradient` — a projected-gradient (FISTA-accelerated)
  solver that scales to the larger American-network problems and to the
  stacked systems built by the regularised estimators.

:func:`nnls` picks a solver automatically based on problem size; all
functions return a :class:`NNLSResult` carrying the solution, the residual
norm and convergence diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.errors import SolverError

__all__ = ["NNLSResult", "nnls_active_set", "nnls_projected_gradient", "nnls"]


@dataclass(frozen=True)
class NNLSResult:
    """Solution of a non-negative least-squares problem.

    Attributes
    ----------
    x:
        The non-negative minimiser.
    residual_norm:
        ``|| A x - b ||_2`` at the solution.
    iterations:
        Number of iterations used (0 for the active-set wrapper).
    converged:
        Whether the stopping tolerance was reached before the iteration cap.
    """

    x: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def _validate(A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    if A.ndim != 2:
        raise SolverError("A must be a two-dimensional array")
    if b.ndim != 1 or b.shape[0] != A.shape[0]:
        raise SolverError(f"b has shape {b.shape}, expected ({A.shape[0]},)")
    return A, b


def nnls_active_set(A: np.ndarray, b: np.ndarray) -> NNLSResult:
    """Exact NNLS via the Lawson-Hanson active-set algorithm (SciPy).

    Suitable for problems with up to a few thousand variables; raises
    :class:`~repro.errors.SolverError` if SciPy reports failure.
    """
    A, b = _validate(A, b)
    try:
        x, residual = scipy.optimize.nnls(A, b)
    except Exception as exc:  # pragma: no cover - scipy failure is exceptional
        raise SolverError(f"active-set NNLS failed: {exc}") from exc
    return NNLSResult(x=x, residual_norm=float(residual), iterations=0, converged=True)


def nnls_projected_gradient(
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    max_iterations: int = 5000,
    tolerance: float = 1e-9,
) -> NNLSResult:
    """NNLS via FISTA (accelerated projected gradient).

    Parameters
    ----------
    A, b:
        Problem data.
    x0:
        Optional starting point (negative entries are clipped).
    max_iterations:
        Iteration cap.
    tolerance:
        Convergence is declared when the relative change of the objective
        between iterations falls below this value.
    """
    A, b = _validate(A, b)
    if max_iterations <= 0:
        raise SolverError("max_iterations must be positive")
    num_vars = A.shape[1]
    x = np.zeros(num_vars) if x0 is None else np.maximum(np.asarray(x0, dtype=float), 0.0)
    if x.shape != (num_vars,):
        raise SolverError(f"x0 has shape {x.shape}, expected ({num_vars},)")

    gram = A.T @ A
    atb = A.T @ b
    # Lipschitz constant of the gradient is the largest eigenvalue of A^T A.
    lipschitz = float(np.linalg.norm(gram, 2)) if num_vars > 0 else 1.0
    if lipschitz <= 0:
        return NNLSResult(x=x, residual_norm=float(np.linalg.norm(b)), iterations=0, converged=True)
    step = 1.0 / lipschitz

    def objective(v: np.ndarray) -> float:
        residual = A @ v - b
        return 0.5 * float(residual @ residual)

    y = x.copy()
    momentum = 1.0
    previous_objective = objective(x)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        gradient = gram @ y - atb
        x_next = np.maximum(y - step * gradient, 0.0)
        momentum_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * momentum**2))
        y = x_next + (momentum - 1.0) / momentum_next * (x_next - x)
        x, momentum = x_next, momentum_next
        current_objective = objective(x)
        denominator = max(abs(previous_objective), 1e-12)
        if abs(previous_objective - current_objective) / denominator < tolerance:
            converged = True
            break
        previous_objective = current_objective
    residual_norm = float(np.linalg.norm(A @ x - b))
    return NNLSResult(x=x, residual_norm=residual_norm, iterations=iterations, converged=converged)


def nnls(
    A: np.ndarray,
    b: np.ndarray,
    prefer: str = "auto",
    max_iterations: int = 5000,
    tolerance: float = 1e-9,
) -> NNLSResult:
    """Solve NNLS with an automatically chosen solver.

    ``prefer`` may be ``"auto"`` (active set for small problems, projected
    gradient otherwise), ``"active-set"`` or ``"projected-gradient"``.
    """
    A, b = _validate(A, b)
    if prefer not in ("auto", "active-set", "projected-gradient"):
        raise SolverError(f"unknown solver preference {prefer!r}")
    if prefer == "active-set":
        return nnls_active_set(A, b)
    if prefer == "projected-gradient":
        return nnls_projected_gradient(A, b, max_iterations=max_iterations, tolerance=tolerance)
    if A.shape[1] <= 800:
        return nnls_active_set(A, b)
    return nnls_projected_gradient(A, b, max_iterations=max_iterations, tolerance=tolerance)
