"""Non-negative least squares (NNLS) solvers.

Most estimators in the paper reduce to a least-squares problem with a
non-negativity constraint on the demands:

    minimize ``|| A x - b ||_2^2``  subject to ``x >= 0``.

Two solvers are provided:

* :func:`nnls_active_set` — a thin wrapper around SciPy's Lawson-Hanson
  implementation, exact but cubic in the number of variables;
* :func:`nnls_projected_gradient` — a projected-gradient (FISTA-accelerated)
  solver that scales to the larger American-network problems and to the
  stacked systems built by the regularised estimators.

:func:`nnls` picks a solver automatically based on problem size; all
functions return a :class:`NNLSResult` carrying the solution, the residual
norm and convergence diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.optimize

from repro.resilience.budget import budget_tick
import scipy.sparse

from repro.errors import SolverError

__all__ = [
    "NNLSResult",
    "nnls_active_set",
    "nnls_projected_gradient",
    "nnls",
    "nnls_normal_equations_batch",
]


@dataclass(frozen=True)
class NNLSResult:
    """Solution of a non-negative least-squares problem.

    Attributes
    ----------
    x:
        The non-negative minimiser.
    residual_norm:
        ``|| A x - b ||_2`` at the solution.
    iterations:
        Number of iterations used (0 for the active-set wrapper).
    converged:
        Whether the stopping tolerance was reached before the iteration cap.
    """

    x: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def _validate(A, b: np.ndarray):
    """Normalise inputs; ``A`` may be dense or a SciPy sparse matrix."""
    if not scipy.sparse.issparse(A):
        A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    if A.ndim != 2:
        raise SolverError("A must be a two-dimensional array")
    if b.ndim != 1 or b.shape[0] != A.shape[0]:
        raise SolverError(f"b has shape {b.shape}, expected ({A.shape[0]},)")
    return A, b


def nnls_active_set(A: np.ndarray, b: np.ndarray) -> NNLSResult:
    """Exact NNLS via the Lawson-Hanson active-set algorithm (SciPy).

    Suitable for problems with up to a few thousand variables; raises
    :class:`~repro.errors.SolverError` if SciPy reports failure.  Sparse
    inputs are densified (the algorithm is inherently dense).
    """
    A, b = _validate(A, b)
    if scipy.sparse.issparse(A):
        A = A.toarray()
    try:
        x, residual = scipy.optimize.nnls(A, b)
    except Exception as exc:  # pragma: no cover - scipy failure is exceptional
        raise SolverError(f"active-set NNLS failed: {exc}") from exc
    return NNLSResult(x=x, residual_norm=float(residual), iterations=0, converged=True)


def nnls_projected_gradient(
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    max_iterations: int = 5000,
    tolerance: float = 1e-9,
) -> NNLSResult:
    """NNLS via FISTA (accelerated projected gradient).

    Parameters
    ----------
    A, b:
        Problem data.
    x0:
        Optional starting point (negative entries are clipped).
    max_iterations:
        Iteration cap.
    tolerance:
        Convergence is declared when the relative change of the objective
        between iterations falls below this value.
    """
    A, b = _validate(A, b)
    if max_iterations <= 0:
        raise SolverError("max_iterations must be positive")
    num_vars = A.shape[1]
    x = np.zeros(num_vars) if x0 is None else np.maximum(np.asarray(x0, dtype=float), 0.0)
    if x.shape != (num_vars,):
        raise SolverError(f"x0 has shape {x.shape}, expected ({num_vars},)")

    gram = A.T @ A
    if scipy.sparse.issparse(gram):
        gram = gram.toarray()
    atb = A.T @ b
    # Lipschitz constant of the gradient is the largest eigenvalue of A^T A.
    lipschitz = float(np.linalg.norm(gram, 2)) if num_vars > 0 else 1.0
    if lipschitz <= 0:
        return NNLSResult(x=x, residual_norm=float(np.linalg.norm(b)), iterations=0, converged=True)
    step = 1.0 / lipschitz

    def objective(v: np.ndarray) -> float:
        residual = A @ v - b
        return 0.5 * float(residual @ residual)

    y = x.copy()
    momentum = 1.0
    previous_objective = objective(x)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        budget_tick()
        gradient = gram @ y - atb
        x_next = np.maximum(y - step * gradient, 0.0)
        momentum_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * momentum**2))
        y = x_next + (momentum - 1.0) / momentum_next * (x_next - x)
        x, momentum = x_next, momentum_next
        current_objective = objective(x)
        denominator = max(abs(previous_objective), 1e-12)
        if abs(previous_objective - current_objective) / denominator < tolerance:
            converged = True
            break
        previous_objective = current_objective
    residual_norm = float(np.linalg.norm(A @ x - b))
    return NNLSResult(x=x, residual_norm=residual_norm, iterations=iterations, converged=converged)


def nnls_normal_equations_batch(
    gram: np.ndarray,
    rhs: np.ndarray,
    max_pivot_rounds: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact NNLS for many right-hand sides sharing one positive-definite Gram.

    Solves, for every column ``b`` of ``rhs``,

        minimise ``x' G x - 2 b' x``  subject to ``x >= 0``

    which is the normal-equations form of ``min ||A x - c||^2, x >= 0`` with
    ``G = A'A`` and ``b = A'c``.  ``G`` must be symmetric positive definite
    (regularised least-squares problems always are): the factorisation work
    is then done **once** — ``G`` is inverted up front — and each column
    only pays for small active-set solves via Kim & Park's block principal
    pivoting, warm-started from its unconstrained solution.  This is the
    factor-once batched path used by
    :meth:`repro.estimation.bayesian.BayesianEstimator.estimate_series`.

    Returns ``(solutions, converged)`` where ``solutions`` has the shape of
    ``rhs`` and ``converged`` flags each column (non-converged columns —
    which should not occur for positive-definite ``G`` — are clipped
    unconstrained solutions).
    """
    gram = np.asarray(gram, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise SolverError("gram must be a square matrix")
    single = rhs.ndim == 1
    if single:
        rhs = rhs[:, None]
    if rhs.ndim != 2 or rhs.shape[0] != gram.shape[0]:
        raise SolverError(f"rhs has shape {rhs.shape}, expected ({gram.shape[0]}, K)")
    if max_pivot_rounds <= 0:
        raise SolverError("max_pivot_rounds must be positive")

    num_vars, num_rhs = rhs.shape
    try:
        factor = scipy.linalg.cho_factor(gram)
    except scipy.linalg.LinAlgError as exc:
        raise SolverError(f"gram matrix is not positive definite: {exc}") from exc
    inverse = scipy.linalg.cho_solve(factor, np.eye(num_vars))
    unconstrained = scipy.linalg.cho_solve(factor, rhs)

    solutions = np.maximum(unconstrained, 0.0)
    converged = np.ones(num_rhs, dtype=bool)
    for col in range(num_rhs):
        z = unconstrained[:, col]
        tolerance = 1e-10 * max(1.0, float(np.abs(z).max(initial=0.0)))
        active = np.flatnonzero(z < -tolerance)
        if not active.size:
            continue  # the constraint is inactive: z is already the solution
        x = z
        lagrange = np.zeros(0)
        best_violations = np.inf
        backup_budget = 3
        solved = False
        for _ in range(max_pivot_rounds):
            budget_tick()
            # Equality-constrained solve (x[active] = 0) from the cached inverse:
            # x = z - G^{-1}[:, A] lambda with G^{-1}[A, A] lambda = z[A]; the
            # gradient is then -lambda on A and zero elsewhere.
            lagrange = np.linalg.solve(inverse[np.ix_(active, active)], z[active])
            x = z - inverse[:, active] @ lagrange
            x[active] = 0.0
            primal_violations = np.flatnonzero(x < -tolerance)
            dual_violations = active[lagrange > tolerance]
            num_violations = primal_violations.size + dual_violations.size
            if num_violations == 0:
                solved = True
                break
            if num_violations < best_violations:
                best_violations = num_violations
                backup_budget = 3
            elif backup_budget > 0:
                backup_budget -= 1
            else:
                # Kim-Park safeguard: exchange only the largest-index violator.
                worst = max(
                    primal_violations.max(initial=-1), dual_violations.max(initial=-1)
                )
                if worst in active:
                    dual_violations = np.array([worst])
                    primal_violations = np.array([], dtype=int)
                else:
                    primal_violations = np.array([worst])
                    dual_violations = np.array([], dtype=int)
            keep = np.setdiff1d(active, dual_violations, assume_unique=True)
            active = np.union1d(keep, primal_violations)
        if solved:
            solutions[:, col] = np.maximum(x, 0.0)
        else:  # pragma: no cover - PD gram always converges
            converged[col] = False
    if single:
        return solutions[:, 0], converged
    return solutions, converged


def nnls(
    A: np.ndarray,
    b: np.ndarray,
    prefer: str = "auto",
    max_iterations: int = 5000,
    tolerance: float = 1e-9,
) -> NNLSResult:
    """Solve NNLS with an automatically chosen solver.

    ``prefer`` may be ``"auto"`` (active set for small problems, projected
    gradient otherwise), ``"active-set"`` or ``"projected-gradient"``.
    """
    A, b = _validate(A, b)
    if prefer not in ("auto", "active-set", "projected-gradient"):
        raise SolverError(f"unknown solver preference {prefer!r}")
    if prefer == "active-set":
        return nnls_active_set(A, b)
    if prefer == "projected-gradient":
        return nnls_projected_gradient(A, b, max_iterations=max_iterations, tolerance=tolerance)
    if A.shape[1] <= 800:
        return nnls_active_set(A, b)
    return nnls_projected_gradient(A, b, max_iterations=max_iterations, tolerance=tolerance)
