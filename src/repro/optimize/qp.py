"""Quadratic programming helpers.

Two quadratic subproblems recur in the estimation methods:

* the **fanout estimation** problem (paper Section 4.2.4) — a least-squares
  fit over a time series of link loads subject to the equality constraints
  "every origin's fanouts sum to one" and non-negativity;
* **regularised least squares** (Bayesian estimation) — an unconstrained
  quadratic plus non-negativity, handled by the NNLS module.

This module provides:

* :func:`equality_constrained_least_squares` — exact KKT solution of
  ``min ||A x - b||^2`` subject to ``E x = f`` (no sign constraint);
* :func:`constrained_nnls` — the same problem with ``x >= 0`` added, solved
  by lifting the equality constraints into the objective with a large
  penalty weight and calling NNLS; the weight is chosen relative to the data
  scale and the residual of the equalities is reported so callers can verify
  they are satisfied to tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.resilience.budget import budget_tick
from repro.optimize.nnls import nnls

__all__ = [
    "ConstrainedLSResult",
    "equality_constrained_least_squares",
    "constrained_nnls",
    "QPResult",
    "nonnegative_quadratic_program",
    "symmetric_spectral_norm",
]


@dataclass(frozen=True)
class ConstrainedLSResult:
    """Solution of a constrained least-squares problem.

    Attributes
    ----------
    x:
        The minimiser.
    residual_norm:
        ``||A x - b||_2`` at the solution.
    equality_violation:
        ``||E x - f||_inf`` at the solution (0 for the exact KKT solver).
    """

    x: np.ndarray
    residual_norm: float
    equality_violation: float


def _validate_problem(
    A: np.ndarray, b: np.ndarray, E: np.ndarray, f: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    E = np.asarray(E, dtype=float)
    f = np.asarray(f, dtype=float)
    if A.ndim != 2 or E.ndim != 2:
        raise SolverError("A and E must be two-dimensional")
    if A.shape[1] != E.shape[1]:
        raise SolverError(
            f"A has {A.shape[1]} columns but E has {E.shape[1]}; they must match"
        )
    if b.shape != (A.shape[0],):
        raise SolverError(f"b has shape {b.shape}, expected ({A.shape[0]},)")
    if f.shape != (E.shape[0],):
        raise SolverError(f"f has shape {f.shape}, expected ({E.shape[0]},)")
    return A, b, E, f


def equality_constrained_least_squares(
    A: np.ndarray, b: np.ndarray, E: np.ndarray, f: np.ndarray
) -> ConstrainedLSResult:
    """Solve ``min ||A x - b||^2`` subject to ``E x = f`` via the KKT system.

    The KKT matrix is solved with a least-squares fallback so that redundant
    equality constraints (common when fanout rows are linearly dependent on
    the routing rows) do not cause a hard failure.
    """
    A, b, E, f = _validate_problem(A, b, E, f)
    num_vars = A.shape[1]
    num_eq = E.shape[0]
    kkt = np.zeros((num_vars + num_eq, num_vars + num_eq))
    kkt[:num_vars, :num_vars] = 2.0 * A.T @ A
    kkt[:num_vars, num_vars:] = E.T
    kkt[num_vars:, :num_vars] = E
    rhs = np.concatenate([2.0 * A.T @ b, f])
    solution, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
    x = solution[:num_vars]
    return ConstrainedLSResult(
        x=x,
        residual_norm=float(np.linalg.norm(A @ x - b)),
        equality_violation=float(np.max(np.abs(E @ x - f))) if num_eq else 0.0,
    )


def constrained_nnls(
    A: np.ndarray,
    b: np.ndarray,
    E: np.ndarray,
    f: np.ndarray,
    penalty_weight: float | None = None,
    solver: str = "auto",
) -> ConstrainedLSResult:
    """Solve ``min ||A x - b||^2`` s.t. ``E x = f`` and ``x >= 0``.

    The equality constraints are enforced through a quadratic penalty: the
    system ``[A; w E] x ~ [b; w f]`` is solved as an NNLS problem with the
    weight ``w`` chosen large relative to the scale of ``A`` (or supplied
    explicitly).  The achieved equality violation is returned so callers can
    check it is negligible for their purposes.

    Parameters
    ----------
    A, b, E, f:
        Problem data.
    penalty_weight:
        Explicit penalty weight; the default is ``1000 *
        max(1, ||A||_F / ||E||_F)``, which keeps the equality residual
        several orders of magnitude below the data residual in practice.
    solver:
        Forwarded to :func:`repro.optimize.nnls.nnls` (``"auto"``,
        ``"active-set"`` or ``"projected-gradient"``).
    """
    A, b, E, f = _validate_problem(A, b, E, f)
    if penalty_weight is None:
        scale_a = float(np.linalg.norm(A)) or 1.0
        scale_e = float(np.linalg.norm(E)) or 1.0
        penalty_weight = 1000.0 * max(1.0, scale_a / scale_e)
    if penalty_weight <= 0:
        raise SolverError("penalty_weight must be positive")
    stacked_matrix = np.vstack([A, penalty_weight * E])
    stacked_rhs = np.concatenate([b, penalty_weight * f])
    result = nnls(stacked_matrix, stacked_rhs, prefer=solver)
    x = result.x
    return ConstrainedLSResult(
        x=x,
        residual_norm=float(np.linalg.norm(A @ x - b)),
        equality_violation=float(np.max(np.abs(E @ x - f))) if E.shape[0] else 0.0,
    )


def symmetric_spectral_norm(
    G: np.ndarray,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
    safety: float = 1.01,
) -> float:
    """Largest eigenvalue magnitude of a symmetric matrix, by power iteration.

    ``np.linalg.norm(G, 2)`` runs a full SVD — O(P^3) and the dominant cost
    of setting up the projected-gradient QP at America scale.  For a
    symmetric matrix the power iteration converges to the same value with a
    handful of matrix-vector products; the result is inflated by ``safety``
    so that downstream step sizes (which need ``step <= 1/L``) stay valid
    even when the iteration stops marginally below the true norm.

    The starting vector is deterministic (the row-sum direction, which has
    a non-zero component on the dominant eigenvector for the non-negative
    Hessians used here, with a fixed-seed random fallback), so repeated
    calls give identical results.
    """
    G = np.asarray(G, dtype=float)
    if G.ndim != 2 or G.shape[0] != G.shape[1]:
        raise SolverError("G must be a square matrix")
    if G.shape[0] == 0:
        return 0.0
    vector = np.abs(G).sum(axis=1)
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        vector = np.random.default_rng(0).standard_normal(G.shape[0])
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:  # pragma: no cover - rng never returns all zeros
            return 0.0
    vector /= norm
    eigenvalue = 0.0
    for _ in range(max_iterations):
        product = G @ vector
        next_eigenvalue = float(np.linalg.norm(product))
        if next_eigenvalue == 0.0:
            return 0.0
        vector = product / next_eigenvalue
        if abs(next_eigenvalue - eigenvalue) <= tolerance * max(next_eigenvalue, 1e-30):
            eigenvalue = next_eigenvalue
            break
        eigenvalue = next_eigenvalue
    return float(safety * eigenvalue)


@dataclass(frozen=True)
class QPResult:
    """Solution of a non-negative quadratic program.

    Attributes
    ----------
    x:
        The non-negative minimiser.
    objective:
        Objective value ``x' G x - 2 h' x`` at the solution.
    iterations:
        Number of projected-gradient iterations used.
    converged:
        Whether the stopping tolerance was reached before the iteration cap.
    """

    x: np.ndarray
    objective: float
    iterations: int
    converged: bool


def nonnegative_quadratic_program(
    G: np.ndarray,
    h: np.ndarray,
    x0: np.ndarray | None = None,
    max_iterations: int = 10000,
    tolerance: float = 1e-10,
) -> QPResult:
    """Minimise ``x' G x - 2 h' x`` subject to ``x >= 0`` for PSD ``G``.

    The Vardi moment-matching estimator reduces to this form: its combined
    first/second-moment objective is quadratic in the demand intensities
    with a positive semi-definite Hessian, so an accelerated projected
    gradient (FISTA) converges to the global constrained minimum.

    Parameters
    ----------
    G:
        Symmetric positive semi-definite matrix.
    h:
        Linear term.
    x0:
        Optional non-negative starting point (defaults to zero).
    max_iterations, tolerance:
        Iteration cap and relative-objective-change stopping tolerance.
    """
    G = np.asarray(G, dtype=float)
    h = np.asarray(h, dtype=float)
    if G.ndim != 2 or G.shape[0] != G.shape[1]:
        raise SolverError("G must be a square matrix")
    if h.shape != (G.shape[0],):
        raise SolverError(f"h has shape {h.shape}, expected ({G.shape[0]},)")
    if not np.allclose(G, G.T, atol=1e-8):
        raise SolverError("G must be symmetric")
    if max_iterations <= 0:
        raise SolverError("max_iterations must be positive")

    num_vars = G.shape[0]
    x = np.zeros(num_vars) if x0 is None else np.maximum(np.asarray(x0, dtype=float), 0.0)
    if x.shape != (num_vars,):
        raise SolverError(f"x0 has shape {x.shape}, expected ({num_vars},)")

    lipschitz = 2.0 * symmetric_spectral_norm(G)
    if lipschitz <= 0:
        return QPResult(x=np.maximum(h, 0.0) * 0.0, objective=0.0, iterations=0, converged=True)
    step = 1.0 / lipschitz

    def objective(v: np.ndarray) -> float:
        return float(v @ (G @ v) - 2.0 * h @ v)

    y = x.copy()
    momentum = 1.0
    previous = objective(x)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        budget_tick()
        gradient = 2.0 * (G @ y - h)
        x_next = np.maximum(y - step * gradient, 0.0)
        momentum_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * momentum**2))
        y = x_next + (momentum - 1.0) / momentum_next * (x_next - x)
        x, momentum = x_next, momentum_next
        current = objective(x)
        if abs(previous - current) / max(abs(previous), 1e-12) < tolerance:
            converged = True
            break
        previous = current
    return QPResult(x=x, objective=objective(x), iterations=iterations, converged=converged)
