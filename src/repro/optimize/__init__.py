"""Numerical substrate: NNLS, constrained least squares, LP, iterative scaling.

These solvers back the estimation methods:

* :mod:`~repro.optimize.nnls` — non-negative least squares (active set and
  accelerated projected gradient);
* :mod:`~repro.optimize.qp` — equality-constrained least squares with and
  without non-negativity (fanout estimation);
* :mod:`~repro.optimize.linear_program` — LP wrapper used by the worst-case
  bounds;
* :mod:`~repro.optimize.ipf` — Kruithof's biproportional fitting and the
  generalised iterative scaling / KL projection.
"""

from repro.optimize.ipf import (
    IPFResult,
    generalized_iterative_scaling,
    kl_divergence,
    kruithof_scaling,
)
from repro.optimize.linear_program import (
    BatchBoundsResult,
    LPResult,
    bound_variable,
    bound_variables_batch,
    presolve_variable_bounds,
    solve_linear_program,
)
from repro.optimize.nnls import NNLSResult, nnls, nnls_active_set, nnls_projected_gradient
from repro.optimize.qp import (
    ConstrainedLSResult,
    QPResult,
    constrained_nnls,
    equality_constrained_least_squares,
    nonnegative_quadratic_program,
    symmetric_spectral_norm,
)

__all__ = [
    "NNLSResult",
    "nnls",
    "nnls_active_set",
    "nnls_projected_gradient",
    "ConstrainedLSResult",
    "equality_constrained_least_squares",
    "constrained_nnls",
    "QPResult",
    "nonnegative_quadratic_program",
    "symmetric_spectral_norm",
    "LPResult",
    "BatchBoundsResult",
    "solve_linear_program",
    "bound_variable",
    "bound_variables_batch",
    "presolve_variable_bounds",
    "IPFResult",
    "kruithof_scaling",
    "generalized_iterative_scaling",
    "kl_divergence",
]
