"""Iterative proportional fitting (Kruithof's projection) and KL projections.

Kruithof's 1937 method adjusts a prior traffic matrix so that its row and
column sums match measured totals of incoming and outgoing traffic; Krupp
showed the iteration converges to the matrix that minimises the
Kullback-Leibler distance to the prior subject to those constraints, and
extended it to general linear constraints.  Both forms are needed here:

* :func:`kruithof_scaling` — the classical biproportional (row/column sum)
  fit, used to make a gravity prior consistent with edge-node totals;
* :func:`generalized_iterative_scaling` — the Darroch-Ratcliff style
  multiplicative update that computes the I-projection of a prior onto the
  affine set ``{s >= 0 : R s = t}`` for a routing matrix with entries in
  [0, 1], used by the entropy estimator when an exactly consistent solution
  is wanted;
* :func:`kl_divergence` — the Kullback-Leibler distance ``D(s || prior)``
  used as the regulariser of the entropy approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse

from repro.errors import SolverError
from repro.resilience.budget import budget_tick
from repro.telemetry.metrics import counter_inc, histogram_observe

__all__ = [
    "IPFResult",
    "kruithof_scaling",
    "kruithof_scaling_batch",
    "generalized_iterative_scaling",
    "kl_divergence",
]


@dataclass(frozen=True)
class IPFResult:
    """Result of an iterative scaling run.

    Attributes
    ----------
    values:
        The fitted matrix (classical Kruithof) or vector (generalised form).
    iterations:
        Number of sweeps performed.
    max_violation:
        Largest absolute constraint violation at termination.
    converged:
        Whether the tolerance was met before the iteration cap.
    """

    values: np.ndarray
    iterations: int
    max_violation: float
    converged: bool


def kl_divergence(values: np.ndarray, prior: np.ndarray) -> float:
    """Kullback-Leibler distance ``sum_i v_i log(v_i / p_i) - v_i + p_i``.

    The generalised (unnormalised) form is used because traffic matrices are
    not probability distributions unless explicitly normalised; it is
    non-negative and zero exactly when ``values == prior``.  Zero entries are
    handled by the usual convention ``0 log 0 = 0``; a zero prior entry with
    a positive value gives ``+inf``.
    """
    values = np.asarray(values, dtype=float)
    prior = np.asarray(prior, dtype=float)
    if values.shape != prior.shape:
        raise SolverError("values and prior must have the same shape")
    if np.any(values < 0) or np.any(prior < 0):
        raise SolverError("KL divergence requires non-negative arguments")
    total = 0.0
    positive = values > 0
    if np.any(prior[positive] == 0):
        return float("inf")
    with np.errstate(divide="ignore", invalid="ignore"):
        total = float(
            np.sum(values[positive] * np.log(values[positive] / prior[positive]))
            - values.sum()
            + prior.sum()
        )
    return total


def kruithof_scaling(
    prior: np.ndarray,
    row_targets: np.ndarray,
    column_targets: np.ndarray,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
    initial: Optional[np.ndarray] = None,
) -> IPFResult:
    """Classical Kruithof / biproportional fitting of a matrix.

    Parameters
    ----------
    prior:
        Non-negative prior matrix (zero rows/columns stay zero).
    row_targets, column_targets:
        Required row and column sums.  Their totals must agree to within the
        tolerance (otherwise no feasible matrix exists); the column targets
        are rescaled to match the row total exactly before iterating.
    max_iterations, tolerance:
        Iteration cap and maximum allowed absolute violation of the targets.
    initial:
        Optional starting table for *incremental* IPF.  The iteration's
        fixed point depends on the start only through its biproportional
        class, so seeding with a table of the form
        ``prior * outer(a, b)`` — e.g. a previous fit of the *same* prior
        to slightly different targets — reaches the same KL projection of
        the prior in a handful of sweeps instead of hundreds.  The initial
        table must share the prior's support (zero exactly where the prior
        is zero); callers are responsible for that invariant (see
        :meth:`repro.estimation.kruithof.KruithofEstimator.set_warm_start`).
    """
    prior = np.asarray(prior, dtype=float)
    row_targets = np.asarray(row_targets, dtype=float)
    column_targets = np.asarray(column_targets, dtype=float)
    if prior.ndim != 2:
        raise SolverError("prior must be a matrix")
    if row_targets.shape != (prior.shape[0],) or column_targets.shape != (prior.shape[1],):
        raise SolverError("target shapes do not match the prior matrix")
    if np.any(prior < 0) or np.any(row_targets < 0) or np.any(column_targets < 0):
        raise SolverError("Kruithof scaling requires non-negative inputs")
    if initial is not None:
        initial = np.asarray(initial, dtype=float)
        if initial.shape != prior.shape:
            raise SolverError("initial table shape does not match the prior matrix")
        if np.any(initial < 0):
            raise SolverError("initial table must be non-negative")
    row_total, column_total = row_targets.sum(), column_targets.sum()
    if row_total <= 0 or column_total <= 0:
        raise SolverError("targets must have positive totals")
    if abs(row_total - column_total) / max(row_total, column_total) > 1e-6:
        column_targets = column_targets * (row_total / column_total)

    values = prior.copy() if initial is None else initial.copy()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        budget_tick()
        row_sums = values.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            row_factors = np.where(row_sums > 0, row_targets / row_sums, 0.0)
        values = values * row_factors[:, None]
        column_sums = values.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            column_factors = np.where(column_sums > 0, column_targets / column_sums, 0.0)
        values = values * column_factors[None, :]
        violation = max(
            float(np.max(np.abs(values.sum(axis=1) - row_targets), initial=0.0)),
            float(np.max(np.abs(values.sum(axis=0) - column_targets), initial=0.0)),
        )
        if violation < tolerance * max(1.0, row_total):
            converged = True
            break
    violation = max(
        float(np.max(np.abs(values.sum(axis=1) - row_targets), initial=0.0)),
        float(np.max(np.abs(values.sum(axis=0) - column_targets), initial=0.0)),
    )
    counter_inc("ipf.sweeps", iterations)
    histogram_observe("ipf.max_violation", violation)
    return IPFResult(values=values, iterations=iterations, max_violation=violation, converged=converged)


def kruithof_scaling_batch(
    priors: np.ndarray,
    row_targets: np.ndarray,
    column_targets: np.ndarray,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
) -> IPFResult:
    """Biproportional fitting of ``K`` matrices at once.

    Vectorised counterpart of :func:`kruithof_scaling` for a batch of
    problems sharing one shape: ``priors`` is ``(K, R, C)``, ``row_targets``
    is ``(K, R)`` and ``column_targets`` is ``(K, C)``.  Every slice ``k``
    follows exactly the same update sequence as an individual
    :func:`kruithof_scaling` call — converged slices are frozen rather than
    iterated further — so batch results match the one-at-a-time results
    while the sweeps run as whole-array operations.

    Returns an :class:`IPFResult` whose ``values`` is the fitted ``(K, R,
    C)`` stack, ``max_violation`` is the worst violation over the batch and
    ``converged`` reports whether *every* slice converged.
    """
    priors = np.asarray(priors, dtype=float)
    row_targets = np.asarray(row_targets, dtype=float)
    column_targets = np.asarray(column_targets, dtype=float)
    if priors.ndim != 3:
        raise SolverError("priors must be a (K, rows, columns) stack")
    num_batch, num_rows, num_cols = priors.shape
    if row_targets.shape != (num_batch, num_rows):
        raise SolverError("row_targets shape does not match the prior stack")
    if column_targets.shape != (num_batch, num_cols):
        raise SolverError("column_targets shape does not match the prior stack")
    if np.any(priors < 0) or np.any(row_targets < 0) or np.any(column_targets < 0):
        raise SolverError("Kruithof scaling requires non-negative inputs")
    row_totals = row_targets.sum(axis=1)
    column_totals = column_targets.sum(axis=1)
    if np.any(row_totals <= 0) or np.any(column_totals <= 0):
        raise SolverError("targets must have positive totals")
    mismatch = np.abs(row_totals - column_totals) / np.maximum(row_totals, column_totals)
    rescale = mismatch > 1e-6
    if np.any(rescale):
        column_targets = column_targets.copy()
        column_targets[rescale] *= (row_totals[rescale] / column_totals[rescale])[:, None]

    values = priors.copy()
    scale = tolerance * np.maximum(1.0, row_totals)
    active = np.ones(num_batch, dtype=bool)
    iterations = 0
    while iterations < max_iterations and np.any(active):
        budget_tick()
        iterations += 1
        block = values[active]
        row_sums = block.sum(axis=2)
        with np.errstate(divide="ignore", invalid="ignore"):
            row_factors = np.where(row_sums > 0, row_targets[active] / row_sums, 0.0)
        block = block * row_factors[:, :, None]
        column_sums = block.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            column_factors = np.where(column_sums > 0, column_targets[active] / column_sums, 0.0)
        block = block * column_factors[:, None, :]
        values[active] = block
        violation = np.maximum(
            np.abs(block.sum(axis=2) - row_targets[active]).max(axis=1, initial=0.0),
            np.abs(block.sum(axis=1) - column_targets[active]).max(axis=1, initial=0.0),
        )
        still_active = np.flatnonzero(active)[violation >= scale[active]]
        active = np.zeros(num_batch, dtype=bool)
        active[still_active] = True
    final_violation = float(
        max(
            np.abs(values.sum(axis=2) - row_targets).max(initial=0.0),
            np.abs(values.sum(axis=1) - column_targets).max(initial=0.0),
        )
    )
    counter_inc("ipf.sweeps", iterations)
    histogram_observe("ipf.max_violation", final_violation)
    return IPFResult(
        values=values,
        iterations=iterations,
        max_violation=final_violation,
        converged=not np.any(active),
    )


def generalized_iterative_scaling(
    prior: np.ndarray,
    routing_matrix: np.ndarray,
    link_loads: np.ndarray,
    max_iterations: int = 2000,
    tolerance: float = 1e-7,
) -> IPFResult:
    """I-projection of ``prior`` onto ``{s >= 0 : R s = t}`` by multiplicative updates.

    Implements a Darroch-Ratcliff style generalised iterative scaling: at
    every sweep each demand is multiplied by a geometric mean of the ratios
    ``t_l / (R s)_l`` over the links it traverses, weighted by the routing
    fractions.  For consistent data (``t`` in the cone of ``R`` applied to
    the support of the prior) the iteration converges to the KL projection,
    generalising Kruithof's method exactly as Krupp described.

    Parameters
    ----------
    prior:
        Strictly the starting point and regularisation centre; zero entries
        remain zero.
    routing_matrix:
        Matrix with entries in [0, 1]; a SciPy sparse matrix is accepted
        and used as-is (the iteration only needs products and column sums),
        so sparse routing backends never have to densify.
    link_loads:
        Target loads ``t``.
    """
    prior = np.asarray(prior, dtype=float)
    sparse = scipy.sparse.issparse(routing_matrix)
    if sparse:
        routing_matrix = scipy.sparse.csr_matrix(routing_matrix, dtype=float)
    else:
        routing_matrix = np.asarray(routing_matrix, dtype=float)
    link_loads = np.asarray(link_loads, dtype=float)
    if prior.ndim != 1:
        raise SolverError("prior must be a vector")
    if routing_matrix.shape != (len(link_loads), len(prior)):
        raise SolverError("routing matrix shape inconsistent with prior and link loads")
    if np.any(prior < 0) or np.any(link_loads < -1e-12):
        raise SolverError("prior and link loads must be non-negative")
    entries = routing_matrix.data if sparse else routing_matrix
    if np.any(entries < 0) or np.any(entries > 1 + 1e-12):
        raise SolverError("routing matrix entries must lie in [0, 1]")

    values = prior.copy()
    link_loads = np.maximum(link_loads, 0.0)
    column_weight = np.asarray(routing_matrix.sum(axis=0)).ravel().copy()
    column_weight[column_weight == 0] = 1.0
    converged = False
    iterations = 0
    scale = max(float(link_loads.max(initial=0.0)), 1e-12)
    for iterations in range(1, max_iterations + 1):
        budget_tick()
        predicted = routing_matrix @ values
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(predicted > 0, link_loads / predicted, 1.0)
        log_ratios = np.log(np.maximum(ratios, 1e-300))
        exponents = (routing_matrix.T @ log_ratios) / column_weight
        values = values * np.exp(exponents)
        violation = float(np.max(np.abs(routing_matrix @ values - link_loads), initial=0.0))
        if violation < tolerance * scale:
            converged = True
            break
    violation = float(np.max(np.abs(routing_matrix @ values - link_loads), initial=0.0))
    counter_inc("ipf.sweeps", iterations)
    histogram_observe("ipf.max_violation", violation)
    return IPFResult(values=values, iterations=iterations, max_violation=violation, converged=converged)
