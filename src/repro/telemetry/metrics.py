"""Lightweight metrics registry: counters, gauges and histograms.

Metrics complement spans: a span tells *where time went* in one run, a
metric aggregates *how often / how much* across the whole process —
solver iterations, IPF sweeps, shared-workspace cache hits, pool
queue-wait versus execute time, supervisor retries and fallbacks.

Every recording helper checks the shared enabled flag first and returns
immediately when telemetry is off, so instrumented hot loops pay one
attribute read per call.  Histograms keep raw observations (the counts
involved here are small — per-task waits, per-stage residuals), which
keeps cross-process merging exact: workers ship their raw registry with
:func:`drain_metrics` and the parent folds it in with
:func:`merge_metrics`, so serial and pooled runs aggregate identically.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping, Optional

from repro.telemetry.spans import _STATE, current_span

__all__ = [
    "counter_inc",
    "gauge_set",
    "histogram_observe",
    "record_iterations",
    "metrics_snapshot",
    "drain_metrics",
    "merge_metrics",
    "reset_metrics",
]

_LOCK = threading.Lock()
_COUNTERS: dict[str, float] = {}
_GAUGES: dict[str, float] = {}
_HISTOGRAMS: dict[str, list[float]] = {}


def counter_inc(name: str, value: float = 1.0) -> None:
    """Add ``value`` to the monotonically increasing counter ``name``."""
    if not _STATE.enabled:
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0.0) + value


def gauge_set(name: str, value: float) -> None:
    """Set the last-value gauge ``name``."""
    if not _STATE.enabled:
        return
    with _LOCK:
        _GAUGES[name] = float(value)


def histogram_observe(name: str, value: float) -> None:
    """Record one observation into the histogram ``name``."""
    if not _STATE.enabled:
        return
    with _LOCK:
        _HISTOGRAMS.setdefault(name, []).append(float(value))


def record_iterations(count: int = 1) -> None:
    """Count solver-loop iterations (ridden by ``budget_tick`` call sites).

    Besides the global ``solver.iterations`` counter, the ticks are
    attributed to the innermost open span so a trace shows how many
    iterations each ``estimate`` (or shard task) burned.
    """
    if not _STATE.enabled:
        return
    with _LOCK:
        _COUNTERS["solver.iterations"] = _COUNTERS.get("solver.iterations", 0.0) + count
    active = current_span()
    if active is not None:
        active.attributes["ticks"] = int(active.attributes.get("ticks", 0)) + count


def _histogram_stats(values: list[float]) -> dict[str, float]:
    ordered = sorted(values)
    count = len(ordered)
    return {
        "count": float(count),
        "sum": float(sum(ordered)),
        "mean": float(sum(ordered) / count),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": ordered[int(0.50 * (count - 1))],
        "p95": ordered[int(0.95 * (count - 1))],
    }


def metrics_snapshot() -> dict[str, Any]:
    """Aggregated view: counters/gauges verbatim, histograms as stats."""
    with _LOCK:
        counters = dict(_COUNTERS)
        gauges = dict(_GAUGES)
        histograms = {name: list(values) for name, values in _HISTOGRAMS.items()}
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {
            name: _histogram_stats(values) for name, values in histograms.items() if values
        },
    }


def drain_metrics() -> dict[str, Any]:
    """Raw registry contents, clearing them — the cross-process wire format."""
    with _LOCK:
        raw = {
            "counters": dict(_COUNTERS),
            "gauges": dict(_GAUGES),
            "histograms": {name: list(values) for name, values in _HISTOGRAMS.items()},
        }
        _COUNTERS.clear()
        _GAUGES.clear()
        _HISTOGRAMS.clear()
    return raw


def merge_metrics(raw: Optional[Mapping[str, Any]]) -> None:
    """Fold a :func:`drain_metrics` payload (e.g. from a pool worker) in.

    Counters add, gauges take the incoming value (last write wins),
    histograms concatenate observations — the same totals a serial run
    would have recorded directly.
    """
    if not raw:
        return
    with _LOCK:
        for name, value in raw.get("counters", {}).items():
            _COUNTERS[name] = _COUNTERS.get(name, 0.0) + value
        for name, value in raw.get("gauges", {}).items():
            _GAUGES[name] = float(value)
        for name, values in raw.get("histograms", {}).items():
            _HISTOGRAMS.setdefault(name, []).extend(float(v) for v in values)


def reset_metrics() -> None:
    with _LOCK:
        _COUNTERS.clear()
        _GAUGES.clear()
        _HISTOGRAMS.clear()
