"""Exporters: JSONL span dumps, Chrome trace-event JSON, summary rollups.

Three ways out of the in-memory trace:

* :func:`export_spans_jsonl` — one JSON object per line, every field of
  every :class:`~repro.telemetry.spans.SpanRecord`; the archival format.
* :func:`export_chrome_trace` — the Chrome trace-event format (complete
  ``"ph": "X"`` events), loadable in Perfetto / ``chrome://tracing``.
  Spans from pool workers keep their real ``pid``, so a sharded run
  renders as one parent track plus one track per worker process on a
  shared wall-clock timeline.
* :func:`summary_table` / :func:`format_summary` — per-stage rollup
  (count, total, mean, max, self-time) keyed by the span label
  (``name[method]``), for a quick "where did the seconds go" answer
  without leaving the terminal.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Sequence

from repro.telemetry.spans import SpanRecord, collected_spans

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "export_spans_jsonl",
    "summary_table",
    "format_summary",
]


def _resolve(records: Optional[Sequence[SpanRecord]]) -> list[SpanRecord]:
    return list(collected_spans() if records is None else records)


def export_spans_jsonl(path: str, records: Optional[Sequence[SpanRecord]] = None) -> int:
    """Write one JSON object per span to ``path``; returns the span count."""
    batch = _resolve(records)
    with open(path, "w", encoding="utf-8") as handle:
        for record in batch:
            handle.write(
                json.dumps(
                    {
                        "name": record.name,
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "start_wall": record.start_wall,
                        "duration": record.duration,
                        "process": record.process,
                        "thread": record.thread,
                        "attributes": record.attributes,
                        "events": [
                            {"offset": offset, "name": name, "attributes": attrs}
                            for offset, name, attrs in record.events
                        ],
                    },
                    default=str,
                )
            )
            handle.write("\n")
    return len(batch)


def chrome_trace_events(records: Optional[Sequence[SpanRecord]] = None) -> list[dict[str, Any]]:
    """Spans as Chrome trace-event dicts (timestamps/durations in µs)."""
    events: list[dict[str, Any]] = []
    for record in _resolve(records):
        args = {key: value for key, value in record.attributes.items()}
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        args["span_id"] = record.span_id
        events.append(
            {
                "name": record.label(),
                "cat": record.name,
                "ph": "X",
                "ts": record.start_wall * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.process,
                "tid": record.thread % 1_000_000,
                "args": args,
            }
        )
        for offset, name, attrs in record.events:
            events.append(
                {
                    "name": name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": (record.start_wall + offset) * 1e6,
                    "pid": record.process,
                    "tid": record.thread % 1_000_000,
                    "args": dict(attrs),
                }
            )
    return events


def export_chrome_trace(path: str, records: Optional[Sequence[SpanRecord]] = None) -> int:
    """Write a Perfetto-loadable trace JSON to ``path``; returns the span count."""
    batch = _resolve(records)
    document = {
        "traceEvents": chrome_trace_events(batch),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, default=str)
    return len(batch)


def summary_table(
    records: Optional[Sequence[SpanRecord]] = None,
) -> dict[str, dict[str, float]]:
    """Per-stage rollup keyed by span label.

    Each row carries ``count``, ``total_seconds``, ``mean_seconds``,
    ``max_seconds`` and ``self_seconds`` (total minus time spent in child
    spans — the stage's own share of the wall clock).
    """
    batch = _resolve(records)
    child_time: dict[str, float] = {}
    for record in batch:
        if record.parent_id is not None:
            child_time[record.parent_id] = child_time.get(record.parent_id, 0.0) + record.duration
    table: dict[str, dict[str, float]] = {}
    for record in batch:
        row = table.setdefault(
            record.label(),
            {
                "count": 0.0,
                "total_seconds": 0.0,
                "mean_seconds": 0.0,
                "max_seconds": 0.0,
                "self_seconds": 0.0,
            },
        )
        row["count"] += 1
        row["total_seconds"] += record.duration
        row["max_seconds"] = max(row["max_seconds"], record.duration)
        row["self_seconds"] += max(0.0, record.duration - child_time.get(record.span_id, 0.0))
    for row in table.values():
        row["mean_seconds"] = row["total_seconds"] / row["count"]
    return table


def format_summary(table: Optional[dict[str, dict[str, float]]] = None) -> str:
    """Render a :func:`summary_table` as an aligned text table."""
    if table is None:
        table = summary_table()
    if not table:
        return "(no spans recorded)"
    rows = sorted(table.items(), key=lambda item: item[1]["total_seconds"], reverse=True)
    label_width = max(len("stage"), max(len(label) for label, _ in rows))
    header = (
        f"{'stage':<{label_width}}  {'count':>6}  {'total':>9}  "
        f"{'mean':>9}  {'max':>9}  {'self':>9}"
    )
    lines = [header, "-" * len(header)]
    for label, row in rows:
        lines.append(
            f"{label:<{label_width}}  {int(row['count']):>6}  "
            f"{row['total_seconds']:>8.3f}s  {row['mean_seconds']:>8.3f}s  "
            f"{row['max_seconds']:>8.3f}s  {row['self_seconds']:>8.3f}s"
        )
    return "\n".join(lines)
