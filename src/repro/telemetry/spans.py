"""Hierarchical spans: the trace backbone of :mod:`repro.telemetry`.

A *span* covers one timed stage of the request path — an ``estimate``
call, a sharded partition step, a pool task inside a worker process.
Spans nest through a :class:`contextvars.ContextVar`, so the innermost
open span is always the parent of the next one opened on the same
logical flow, forming a trace tree without any explicit plumbing:

    with span("estimate", method="entropy", n_pairs=problem.num_pairs):
        with span("routing.build_matrix"):
            ...

Telemetry is **disabled by default** and every entry point is designed
to cost next to nothing in that state: :func:`span` returns a shared
no-op singleton (no allocation, no clock read), and the module-level
helpers check a single attribute before doing anything.  Production
paths therefore keep their spans permanently in place.

Timestamps combine two clocks deliberately: ``start_wall`` is wall-clock
(``time.time``) so spans recorded in *different processes* of the same
machine line up on one timeline, while ``duration`` comes from
``time.perf_counter`` deltas for resolution.  Cross-process span ids are
``"{pid}:{counter}"``, unique even under ``fork`` inheritance of the
counter.

Workers isolate their spans with :func:`capture` and ship the records
home; the parent calls :func:`attach_spans` to re-parent the remote
roots under the submitting span (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "SpanRecord",
    "span",
    "current_span",
    "set_attributes",
    "add_event",
    "enable",
    "disable",
    "is_enabled",
    "clock",
    "capture",
    "drain_spans",
    "collected_spans",
    "clear_spans",
    "attach_spans",
]


class _TelemetryState:
    """One mutable flag shared by every telemetry module (cheap to test)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: The global on/off switch.  Hot paths read ``_STATE.enabled`` directly;
#: everything else goes through :func:`is_enabled`.
_STATE = _TelemetryState()

_LOCK = threading.Lock()
_SPANS: list["SpanRecord"] = []
_CURRENT: ContextVar[Optional["_ActiveSpan"]] = ContextVar(
    "repro_telemetry_current_span", default=None
)
_IDS = itertools.count(1)


def clock() -> float:
    """Wall-clock seconds — the sanctioned timestamp source for telemetry.

    Callers outside this package must not read ``time.time()`` or
    ``time.perf_counter()`` directly (reprolint REPRO601); they take
    timestamps from here so every recorded instant shares one clock.
    """
    return time.time()


@dataclass
class SpanRecord:
    """One finished span: a named, timed node of the trace tree.

    ``events`` holds ``(offset_seconds, name, attributes)`` triples
    relative to the span start.  Records are plain picklable data so pool
    workers can ship them back to the parent process.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start_wall: float
    duration: float
    process: int
    thread: int
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[tuple[float, str, dict[str, Any]]] = field(default_factory=list)

    @property
    def end_wall(self) -> float:
        return self.start_wall + self.duration

    def label(self) -> str:
        """Stage label used by the summary rollup: ``name[method]`` when
        the span carries a ``method`` attribute, plain ``name`` otherwise."""
        method = self.attributes.get("method")
        return f"{self.name}[{method}]" if method else self.name


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A live span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "events",
        "_start_wall",
        "_start_perf",
        "_token",
    )

    def __init__(self, name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.span_id = f"{os.getpid()}:{next(_IDS)}"
        self.parent_id: Optional[str] = None
        self.attributes = attributes
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self._start_wall = 0.0
        self._start_perf = 0.0

    def __enter__(self) -> "_ActiveSpan":
        parent = _CURRENT.get()
        self.parent_id = parent.span_id if parent is not None else None
        self._token = _CURRENT.set(self)
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._start_perf
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attributes.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_wall=self._start_wall,
            duration=duration,
            process=os.getpid(),
            thread=threading.get_ident(),
            attributes=self.attributes,
            events=self.events,
        )
        with _LOCK:
            _SPANS.append(record)
        return False

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append((time.perf_counter() - self._start_perf, name, attributes))


def span(name: str, **attributes: Any) -> Any:
    """Open a span named ``name`` (a no-op singleton while disabled)."""
    if not _STATE.enabled:
        return _NOOP
    return _ActiveSpan(name, attributes)


def current_span() -> Optional[_ActiveSpan]:
    """The innermost open span on this flow, or ``None``."""
    if not _STATE.enabled:
        return None
    return _CURRENT.get()


def set_attributes(**attributes: Any) -> None:
    """Attach attributes to the current span (no-op when disabled/rootless)."""
    if not _STATE.enabled:
        return
    active = _CURRENT.get()
    if active is not None:
        active.set_attributes(**attributes)


def add_event(name: str, **attributes: Any) -> None:
    """Attach a point-in-time event to the current span."""
    if not _STATE.enabled:
        return
    active = _CURRENT.get()
    if active is not None:
        active.add_event(name, **attributes)


def enable() -> None:
    """Turn telemetry on (spans and metrics record from here on)."""
    _STATE.enabled = True


def disable() -> None:
    """Turn telemetry off; already-collected spans stay drainable."""
    _STATE.enabled = False


def is_enabled() -> bool:
    return _STATE.enabled


def drain_spans() -> list[SpanRecord]:
    """Return every collected span and clear the collector."""
    with _LOCK:
        records = list(_SPANS)
        _SPANS.clear()
    return records


def collected_spans() -> tuple[SpanRecord, ...]:
    """Snapshot of the collected spans without clearing them."""
    with _LOCK:
        return tuple(_SPANS)


def clear_spans() -> None:
    with _LOCK:
        _SPANS.clear()


@contextmanager
def capture() -> Iterator[list[SpanRecord]]:
    """Collect spans finished inside the block into an isolated list.

    The global collector is swapped out for the duration, so the captured
    records do *not* also land in the surrounding trace — pool workers use
    this to bound exactly one task's spans before shipping them home
    (fork-inherited parent spans stay in the saved collector).
    """
    global _SPANS
    with _LOCK:
        saved = _SPANS
        _SPANS = []
        captured = _SPANS
    try:
        yield captured
    finally:
        with _LOCK:
            _SPANS = saved


def attach_spans(
    records: Sequence[SpanRecord], parent_id: Optional[str] = None
) -> list[SpanRecord]:
    """Adopt remote span records into this process's trace.

    Records whose ``parent_id`` does not refer to another record in the
    same batch are *roots* of the remote subtree: they are re-parented
    under ``parent_id`` (typically the submitting span).  All records are
    appended to the collector; the roots are returned so the caller can
    annotate them (queue-wait, task index, ...).
    """
    batch = list(records)
    if not batch:
        return []
    local_ids = {record.span_id for record in batch}
    roots: list[SpanRecord] = []
    for record in batch:
        if record.parent_id not in local_ids:
            record.parent_id = parent_id
            roots.append(record)
    with _LOCK:
        _SPANS.extend(batch)
    return roots
