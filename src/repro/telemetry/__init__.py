"""Spans, metrics and trace export for the estimation → pool → sharded stack.

The paper's reproduction is an empirical comparison of estimation
methods; this package is how we answer "where did those seconds go" at
any scale.  Three pieces:

* **spans** (:mod:`repro.telemetry.spans`) — a contextvar-scoped
  ``span("estimate", method=..., n_pairs=...)`` context manager forming a
  trace tree with wall time and attached events; crosses the process
  pool (workers ship their spans home and the parent re-parents them
  under the submitting span, see :mod:`repro.parallel`).
* **metrics** (:mod:`repro.telemetry.metrics`) — counters, gauges and
  histograms for solver iterations, IPF sweeps, workspace cache hits,
  pool queue-wait/execute time and supervisor retries/fallbacks.
* **exporters** (:mod:`repro.telemetry.export`) — JSONL span dumps,
  Chrome trace-event JSON loadable in Perfetto, and a per-stage
  ``summary_table()`` rollup.

Telemetry is **off by default** and every instrumented call site
collapses to a flag check, so the instrumentation lives permanently in
the production paths.  Typical use::

    from repro import telemetry

    telemetry.enable()
    result = estimator.estimate(problem)
    telemetry.export_chrome_trace("trace.json")
    print(telemetry.format_summary())
"""

from __future__ import annotations

from repro.telemetry.export import (
    chrome_trace_events,
    export_chrome_trace,
    export_spans_jsonl,
    format_summary,
    summary_table,
)
from repro.telemetry.metrics import (
    counter_inc,
    drain_metrics,
    gauge_set,
    histogram_observe,
    merge_metrics,
    metrics_snapshot,
    record_iterations,
    reset_metrics,
)
from repro.telemetry.spans import (
    SpanRecord,
    add_event,
    attach_spans,
    capture,
    clear_spans,
    clock,
    collected_spans,
    current_span,
    disable,
    drain_spans,
    enable,
    is_enabled,
    set_attributes,
    span,
)

__all__ = [
    "SpanRecord",
    "span",
    "current_span",
    "set_attributes",
    "add_event",
    "enable",
    "disable",
    "is_enabled",
    "clock",
    "capture",
    "drain_spans",
    "collected_spans",
    "clear_spans",
    "attach_spans",
    "counter_inc",
    "gauge_set",
    "histogram_observe",
    "record_iterations",
    "metrics_snapshot",
    "drain_metrics",
    "merge_metrics",
    "reset_metrics",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_spans_jsonl",
    "summary_table",
    "format_summary",
    "reset_telemetry",
]


def reset_telemetry() -> None:
    """Clear collected spans and metrics (the enabled flag is untouched)."""
    clear_spans()
    reset_metrics()
