"""Synthetic backbone topology generators.

The paper's evaluation data set covers two subnetworks of Global Crossing's
backbone:

* a **European** network with 12 PoPs, 132 origin-destination demands and 72
  directed links, and
* an **American** network with 25 PoPs, 600 demands and 284 directed links.

The real topologies are proprietary, so this module builds synthetic
stand-ins with the same node and link counts.  PoPs are placed at the
coordinates of real European / US cities, connected by a ring that guarantees
strong connectivity, and then densified with the geographically shortest
chords until the target link count is met.  Link metrics are proportional to
great-circle distance, which is how ISPs commonly seed IGP weights, and
capacities are drawn from the {2.5, 10, 40} Gbit/s ladder in use in 2004.

The generic :func:`random_backbone` generator produces topologies of
arbitrary size for tests and scaling studies.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.topology.elements import Link, LinkKind, Node, NodeRole
from repro.topology.network import Network

__all__ = [
    "CitySpec",
    "EUROPEAN_CITIES",
    "AMERICAN_CITIES",
    "ABILENE_CITIES",
    "european_backbone",
    "american_backbone",
    "abilene_backbone",
    "random_backbone",
    "great_circle_km",
]


class CitySpec:
    """Description of a PoP location used by the geographic generators.

    Parameters
    ----------
    name:
        Short PoP code, e.g. ``"LON"``.
    latitude, longitude:
        Geographic coordinates in degrees.
    population:
        Relative user-population weight.  The synthetic traffic generators
        use it to create the hot-spot structure visible in the paper's
        Figure 3 (a limited subset of nodes accounts for most traffic).
    """

    def __init__(self, name: str, latitude: float, longitude: float, population: float) -> None:
        if population <= 0:
            raise TopologyError(f"city {name!r} must have positive population")
        self.name = name
        self.latitude = latitude
        self.longitude = longitude
        self.population = population

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CitySpec({self.name!r}, pop={self.population})"


#: Twelve European PoPs, loosely modelled on a 2004-era pan-European backbone.
EUROPEAN_CITIES: tuple[CitySpec, ...] = (
    CitySpec("LON", 51.51, -0.13, 9.0),
    CitySpec("AMS", 52.37, 4.90, 6.5),
    CitySpec("FRA", 50.11, 8.68, 7.5),
    CitySpec("PAR", 48.86, 2.35, 6.0),
    CitySpec("BRU", 50.85, 4.35, 2.0),
    CitySpec("ZRH", 47.38, 8.54, 2.5),
    CitySpec("MIL", 45.46, 9.19, 3.0),
    CitySpec("MAD", 40.42, -3.70, 2.5),
    CitySpec("STO", 59.33, 18.07, 2.0),
    CitySpec("CPH", 55.68, 12.57, 1.5),
    CitySpec("VIE", 48.21, 16.37, 1.5),
    CitySpec("DUB", 53.35, -6.26, 1.0),
)

#: Twenty-five American PoPs covering the continental US backbone footprint.
AMERICAN_CITIES: tuple[CitySpec, ...] = (
    CitySpec("NYC", 40.71, -74.01, 10.0),
    CitySpec("WDC", 38.91, -77.04, 7.0),
    CitySpec("CHI", 41.88, -87.63, 6.5),
    CitySpec("SJC", 37.34, -121.89, 8.5),
    CitySpec("LAX", 34.05, -118.24, 7.0),
    CitySpec("DAL", 32.78, -96.80, 5.0),
    CitySpec("ATL", 33.75, -84.39, 4.5),
    CitySpec("SEA", 47.61, -122.33, 3.5),
    CitySpec("DEN", 39.74, -104.99, 2.5),
    CitySpec("MIA", 25.76, -80.19, 3.0),
    CitySpec("BOS", 42.36, -71.06, 2.5),
    CitySpec("PHX", 33.45, -112.07, 1.5),
    CitySpec("HOU", 29.76, -95.37, 2.0),
    CitySpec("MSP", 44.98, -93.27, 1.5),
    CitySpec("STL", 38.63, -90.20, 1.2),
    CitySpec("KCY", 39.10, -94.58, 1.0),
    CitySpec("CLE", 41.50, -81.69, 1.2),
    CitySpec("DET", 42.33, -83.05, 1.5),
    CitySpec("PHL", 39.95, -75.17, 2.0),
    CitySpec("SLC", 40.76, -111.89, 1.0),
    CitySpec("PDX", 45.52, -122.68, 1.0),
    CitySpec("SAN", 32.72, -117.16, 1.2),
    CitySpec("TPA", 27.95, -82.46, 1.0),
    CitySpec("CLT", 35.23, -80.84, 1.0),
    CitySpec("NSH", 36.16, -86.78, 0.8),
)

#: The eleven PoPs of the Abilene research backbone (Internet2, 2004).
ABILENE_CITIES: tuple[CitySpec, ...] = (
    CitySpec("STTL", 47.61, -122.33, 2.0),
    CitySpec("SNVA", 37.37, -122.04, 4.0),
    CitySpec("LOSA", 34.05, -118.24, 3.5),
    CitySpec("DNVR", 39.74, -104.99, 1.5),
    CitySpec("KSCY", 39.10, -94.58, 1.0),
    CitySpec("HSTN", 29.76, -95.37, 1.5),
    CitySpec("CHIN", 41.88, -87.63, 3.0),
    CitySpec("IPLS", 39.77, -86.16, 1.0),
    CitySpec("ATLA", 33.75, -84.39, 2.0),
    CitySpec("WASH", 38.91, -77.04, 3.0),
    CitySpec("NYCM", 40.71, -74.01, 4.5),
)

#: Abilene's fourteen bidirectional OC-192 trunks.
_ABILENE_TRUNKS: tuple[tuple[str, str], ...] = (
    ("STTL", "SNVA"),
    ("STTL", "DNVR"),
    ("SNVA", "LOSA"),
    ("SNVA", "DNVR"),
    ("LOSA", "HSTN"),
    ("DNVR", "KSCY"),
    ("KSCY", "HSTN"),
    ("KSCY", "IPLS"),
    ("HSTN", "ATLA"),
    ("IPLS", "CHIN"),
    ("IPLS", "ATLA"),
    ("CHIN", "NYCM"),
    ("ATLA", "WASH"),
    ("NYCM", "WASH"),
)

_EARTH_RADIUS_KM = 6371.0
_CAPACITY_LADDER_MBPS = (2_500.0, 10_000.0, 40_000.0)


def great_circle_km(a: CitySpec, b: CitySpec) -> float:
    """Great-circle distance between two cities in kilometres.

    Uses the haversine formula; precision well beyond what IGP metric
    seeding requires.
    """
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def _metric_from_distance(distance_km: float) -> float:
    """Convert a distance to an IGP metric (1 unit per 100 km, minimum 1)."""
    return max(1.0, round(distance_km / 100.0, 2))


def _capacity_for(rng: np.random.Generator, pop_a: float, pop_b: float) -> float:
    """Pick a capacity from the 2004-era ladder, biased by endpoint size."""
    weight = pop_a + pop_b
    if weight >= 12.0:
        choices, probs = _CAPACITY_LADDER_MBPS, (0.1, 0.5, 0.4)
    elif weight >= 6.0:
        choices, probs = _CAPACITY_LADDER_MBPS, (0.2, 0.6, 0.2)
    else:
        choices, probs = _CAPACITY_LADDER_MBPS, (0.5, 0.45, 0.05)
    return float(rng.choice(choices, p=probs))


def _geographic_backbone(
    name: str,
    cities: Sequence[CitySpec],
    num_directed_links: int,
    region: str,
    seed: int,
    population_chord_fraction: float = 0.5,
) -> Network:
    """Build a strongly connected backbone over ``cities``.

    The construction is deterministic for a given seed: first a ring through
    the cities ordered by longitude (guaranteeing strong connectivity), then
    *traffic-aware* chords directly connecting the largest PoP pairs (ISPs
    provision direct links between their major PoPs, which is also what makes
    the largest demands well identifiable from link loads), and finally the
    geographically shortest remaining chords until ``num_directed_links``
    directed links exist.  ``population_chord_fraction`` controls how much of
    the chord budget goes to the traffic-aware phase.
    """
    if len(cities) < 3:
        raise TopologyError("geographic backbone needs at least three cities")
    if num_directed_links % 2 != 0:
        raise TopologyError("num_directed_links must be even (bidirectional pairs)")
    max_links = len(cities) * (len(cities) - 1)
    if num_directed_links > max_links:
        raise TopologyError(
            f"cannot place {num_directed_links} directed links among "
            f"{len(cities)} nodes (maximum {max_links})"
        )

    rng = np.random.default_rng(seed)
    network = Network(name)
    for city in cities:
        network.add_node(
            Node(
                name=city.name,
                role=NodeRole.ACCESS,
                region=region,
                population=city.population,
                city=city.name,
            )
        )

    ordered = sorted(cities, key=lambda c: (c.longitude, c.latitude))
    by_name = {c.name: c for c in cities}
    added: set[tuple[str, str]] = set()

    def add_pair(a: CitySpec, b: CitySpec) -> None:
        key = tuple(sorted((a.name, b.name)))
        if key in added:
            return
        added.add(key)
        distance = great_circle_km(a, b)
        capacity = _capacity_for(rng, a.population, b.population)
        link = Link(
            source=a.name,
            target=b.name,
            capacity_mbps=capacity,
            metric=_metric_from_distance(distance),
            kind=LinkKind.INTERIOR,
        )
        network.add_bidirectional_link(link)

    # Ring through longitude-ordered cities: strong connectivity guaranteed.
    for i, city in enumerate(ordered):
        add_pair(city, ordered[(i + 1) % len(ordered)])

    # Traffic-aware densification: direct links between the largest PoP pairs.
    population_budget = int(population_chord_fraction * (num_directed_links - network.num_links) / 2)
    by_population = []
    for i, a in enumerate(cities):
        for b in cities[i + 1:]:
            key = tuple(sorted((a.name, b.name)))
            if key not in added:
                by_population.append((-(a.population * b.population), a.name, b.name))
    by_population.sort()
    for _, a_name, b_name in by_population[:population_budget]:
        if network.num_links >= num_directed_links:
            break
        add_pair(by_name[a_name], by_name[b_name])

    # Densify with the shortest unused chords until the budget is met.
    candidates = []
    for i, a in enumerate(cities):
        for b in cities[i + 1:]:
            key = tuple(sorted((a.name, b.name)))
            if key not in added:
                candidates.append((great_circle_km(a, b), a.name, b.name))
    candidates.sort()
    for _, a_name, b_name in candidates:
        if network.num_links >= num_directed_links:
            break
        add_pair(by_name[a_name], by_name[b_name])

    if network.num_links != num_directed_links:
        raise TopologyError(
            f"generator produced {network.num_links} links, "
            f"expected {num_directed_links}"
        )
    network.validate()
    return network


def european_backbone(seed: int = 2004) -> Network:
    """Return a 12-PoP, 72-directed-link European backbone.

    The node and link counts match the paper's European subnetwork
    (12 PoPs, 132 demands, 72 links).
    """
    return _geographic_backbone("europe", EUROPEAN_CITIES, 72, "europe", seed)


def american_backbone(seed: int = 2004) -> Network:
    """Return a 25-PoP, 284-directed-link American backbone.

    The node and link counts match the paper's American subnetwork
    (25 PoPs, 600 demands, 284 links).
    """
    return _geographic_backbone("america", AMERICAN_CITIES, 284, "america", seed)


def abilene_backbone() -> Network:
    """Return the 11-PoP, 28-directed-link Abilene research backbone.

    Unlike the proprietary Global Crossing subnetworks, Abilene's topology
    is public, so this generator reproduces the real 2004 node and trunk
    layout exactly: eleven PoPs connected by fourteen bidirectional OC-192
    (10 Gbit/s) trunks, with IGP metrics seeded from great-circle distance
    like the other geographic generators.  It adds a third, structurally
    different evaluation scenario (sparser than the synthetic backbones:
    average degree ~2.5) exercising the scenario-diversity code paths.
    """
    network = Network("abilene")
    by_name = {city.name: city for city in ABILENE_CITIES}
    for city in ABILENE_CITIES:
        network.add_node(
            Node(
                name=city.name,
                role=NodeRole.ACCESS,
                region="us-research",
                population=city.population,
                city=city.name,
            )
        )
    for a_name, b_name in _ABILENE_TRUNKS:
        distance = great_circle_km(by_name[a_name], by_name[b_name])
        network.add_bidirectional_link(
            Link(
                source=a_name,
                target=b_name,
                capacity_mbps=10_000.0,
                metric=_metric_from_distance(distance),
                kind=LinkKind.INTERIOR,
            )
        )
    network.validate()
    return network


def random_backbone(
    num_nodes: int,
    avg_degree: float = 3.0,
    seed: Optional[int] = None,
    name: str = "random",
    region: Optional[str] = None,
    populations: Optional[Sequence[float]] = None,
    num_regions: Optional[int] = None,
) -> Network:
    """Generate a random strongly connected backbone.

    Parameters
    ----------
    num_nodes:
        Number of PoPs.  Node names are ``"P00"``, ``"P01"``, ...  Every
        node is its own PoP (``city`` equals the node name), so the PoP
        aggregation tooling works on generated topologies exactly like on
        the hand-built paper networks.
    avg_degree:
        Target average (undirected) degree.  A ring is always present, so
        the effective minimum is 2.
    seed:
        Seed for the NumPy random generator.  ``None`` gives a different
        topology on every call.
    name:
        Network name.
    region:
        Region label applied to every node (mutually exclusive with
        ``num_regions``).
    populations:
        Optional explicit population weights; defaults to a Zipf-like
        distribution that concentrates traffic on a few PoPs, as observed
        in the paper's Figure 3.
    num_regions:
        Partition the finished topology into this many connected regions
        (:func:`repro.topology.regions.partition_regions`, seeded from
        ``seed``) and stamp the labels onto the nodes, so region
        extraction and hierarchical estimation work out of the box.

    Returns
    -------
    Network
        A validated, strongly connected backbone.
    """
    if num_nodes < 3:
        raise TopologyError("random_backbone needs at least three nodes")
    if avg_degree < 2.0:
        raise TopologyError("avg_degree must be at least 2 (ring connectivity)")
    if region is not None and num_regions is not None:
        raise TopologyError("pass either a fixed region label or num_regions, not both")
    rng = np.random.default_rng(seed)

    if populations is None:
        ranks = np.arange(1, num_nodes + 1, dtype=float)
        populations = 10.0 / ranks**0.8
    elif len(populations) != num_nodes:
        raise TopologyError("populations must have one entry per node")

    network = Network(name)
    names = [f"P{idx:02d}" for idx in range(num_nodes)]
    for node_name, population in zip(names, populations):
        network.add_node(
            Node(
                name=node_name,
                role=NodeRole.ACCESS,
                region=region,
                population=float(population),
                city=node_name,
            )
        )

    added: set[tuple[str, str]] = set()

    def add_pair(a: str, b: str) -> None:
        key = tuple(sorted((a, b)))
        if key in added or a == b:
            return
        added.add(key)
        capacity = float(rng.choice(_CAPACITY_LADDER_MBPS))
        metric = float(rng.integers(1, 20))
        network.add_bidirectional_link(
            Link(source=a, target=b, capacity_mbps=capacity, metric=metric)
        )

    for idx in range(num_nodes):
        add_pair(names[idx], names[(idx + 1) % num_nodes])

    target_undirected = int(round(avg_degree * num_nodes / 2.0))
    target_undirected = min(target_undirected, num_nodes * (num_nodes - 1) // 2)
    attempts = 0
    max_attempts = 50 * num_nodes * num_nodes
    while len(added) < target_undirected and attempts < max_attempts:
        attempts += 1
        a, b = rng.choice(num_nodes, size=2, replace=False)
        add_pair(names[int(a)], names[int(b)])

    network.validate()
    if num_regions is not None:
        from repro.topology.regions import assign_regions, partition_regions

        assignment = partition_regions(network, num_regions, seed=seed or 0)
        network = assign_regions(network, assignment)
    return network
