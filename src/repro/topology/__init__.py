"""Network topology model: nodes, links, networks and synthetic generators.

This package provides the data model every other subsystem builds on:

* :class:`~repro.topology.elements.Node`,
  :class:`~repro.topology.elements.Link` and
  :class:`~repro.topology.elements.NodePair` — immutable value objects;
* :class:`~repro.topology.network.Network` — the ordered container defining
  canonical link and origin-destination-pair indices;
* :mod:`~repro.topology.generators` — synthetic backbones matching the
  paper's European (12 PoPs / 72 links) and American (25 PoPs / 284 links)
  subnetworks;
* :mod:`~repro.topology.regions` — region extraction, PoP aggregation and
  the automatic region partitioner behind hierarchical (sharded)
  estimation.
"""

from repro.topology.elements import Link, LinkKind, Node, NodePair, NodeRole
from repro.topology.generators import (
    ABILENE_CITIES,
    AMERICAN_CITIES,
    EUROPEAN_CITIES,
    CitySpec,
    abilene_backbone,
    american_backbone,
    european_backbone,
    great_circle_km,
    random_backbone,
)
from repro.topology.network import Network
from repro.topology.regions import (
    aggregate_demands_to_pops,
    aggregate_to_pops,
    aggregate_to_regions,
    assign_regions,
    default_num_regions,
    extract_region,
    partition_regions,
)

__all__ = [
    "Node",
    "NodeRole",
    "Link",
    "LinkKind",
    "NodePair",
    "Network",
    "CitySpec",
    "EUROPEAN_CITIES",
    "AMERICAN_CITIES",
    "ABILENE_CITIES",
    "european_backbone",
    "american_backbone",
    "abilene_backbone",
    "random_backbone",
    "great_circle_km",
    "extract_region",
    "aggregate_to_pops",
    "aggregate_demands_to_pops",
    "partition_regions",
    "assign_regions",
    "aggregate_to_regions",
    "default_num_regions",
]
