"""Region extraction and PoP aggregation.

The paper works on *PoP-to-PoP* traffic matrices: "core routers located in
the same city were aggregated to form a point of presence (PoP)" and the
European/American subnetworks are obtained by excluding "all links and
demands that do not have both source and destination inside the specific
region".  This module implements both operations on router-level
topologies:

* :func:`extract_region` — keep only the nodes of a region and the links
  internal to it;
* :func:`aggregate_to_pops` — merge all routers sharing a city into a single
  PoP node, collapsing parallel inter-city links into one aggregate link
  whose capacity is the sum of its members (the lowest metric is kept, which
  mirrors how the dominant path would be chosen);
* :func:`aggregate_demands_to_pops` — the matching aggregation for a
  router-level demand mapping.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.errors import TopologyError
from repro.topology.elements import Link, Node, NodePair, NodeRole
from repro.topology.network import Network

__all__ = ["extract_region", "aggregate_to_pops", "aggregate_demands_to_pops"]


def extract_region(network: Network, region: str, name: str | None = None) -> Network:
    """Return the subnetwork of all nodes whose ``region`` attribute matches.

    Parameters
    ----------
    network:
        The full (global) topology.
    region:
        Region label to select, e.g. ``"europe"``.
    name:
        Name of the extracted network; defaults to the region label.

    Raises
    ------
    TopologyError
        If no node carries the requested region label.
    """
    selected = [node.name for node in network.nodes if node.region == region]
    if not selected:
        raise TopologyError(f"network {network.name!r} has no nodes in region {region!r}")
    return network.subnetwork(name or region, selected)


def aggregate_to_pops(network: Network, name: str | None = None) -> Network:
    """Aggregate routers sharing a city into PoP-level nodes.

    Every node's :attr:`~repro.topology.elements.Node.pop_name` determines
    its PoP.  The aggregated node takes:

    * the *strongest* role present among its members (peering > access >
      transit), because a PoP with any edge router terminates traffic;
    * the sum of member populations;
    * the region of its first member.

    Inter-PoP links are the union of the member links; parallel links
    between the same PoP pair are merged into one link whose capacity is the
    sum of the parallel capacities and whose metric is the minimum, matching
    the paper's decision to route the aggregated demand along the path of
    the largest original demand.
    """
    pops: dict[str, list[Node]] = defaultdict(list)
    for node in network.nodes:
        pops[node.pop_name].append(node)

    def strongest_role(members: list[Node]) -> NodeRole:
        roles = {member.role for member in members}
        if NodeRole.PEERING in roles:
            return NodeRole.PEERING
        if NodeRole.ACCESS in roles:
            return NodeRole.ACCESS
        return NodeRole.TRANSIT

    aggregated = Network(name or f"{network.name}-pops")
    for pop_name, members in pops.items():
        aggregated.add_node(
            Node(
                name=pop_name,
                role=strongest_role(members),
                region=members[0].region,
                population=sum(member.population for member in members),
                city=pop_name,
            )
        )

    pop_of = {node.name: node.pop_name for node in network.nodes}
    merged: dict[tuple[str, str], dict[str, float]] = {}
    kinds: dict[tuple[str, str], Link] = {}
    for link in network.links:
        src_pop, dst_pop = pop_of[link.source], pop_of[link.target]
        if src_pop == dst_pop:
            continue  # intra-PoP links disappear in the aggregation
        key = (src_pop, dst_pop)
        entry = merged.setdefault(key, {"capacity": 0.0, "metric": float("inf")})
        entry["capacity"] += link.capacity_mbps
        entry["metric"] = min(entry["metric"], link.metric)
        kinds.setdefault(key, link)
    for (src_pop, dst_pop), entry in merged.items():
        aggregated.add_link(
            Link(
                source=src_pop,
                target=dst_pop,
                capacity_mbps=entry["capacity"],
                metric=entry["metric"],
                kind=kinds[(src_pop, dst_pop)].kind,
            )
        )
    return aggregated


def aggregate_demands_to_pops(
    network: Network, demands: Mapping[NodePair, float]
) -> dict[NodePair, float]:
    """Aggregate a router-level demand mapping to PoP level.

    Demands between routers in the same PoP vanish (they never touch
    backbone links); demands between routers of different PoPs are summed
    into the corresponding PoP pair.

    Parameters
    ----------
    network:
        The router-level network the demands refer to.
    demands:
        Mapping from router-level node pair to demand volume.

    Returns
    -------
    dict[NodePair, float]
        PoP-level demand mapping.
    """
    pop_of = {node.name: node.pop_name for node in network.nodes}
    aggregated: dict[NodePair, float] = defaultdict(float)
    for pair, volume in demands.items():
        if volume < 0:
            raise TopologyError(f"negative demand for pair {pair}")
        if pair.origin not in pop_of or pair.destination not in pop_of:
            raise TopologyError(f"demand references unknown node in pair {pair}")
        src_pop, dst_pop = pop_of[pair.origin], pop_of[pair.destination]
        if src_pop == dst_pop:
            continue
        aggregated[NodePair(src_pop, dst_pop)] += float(volume)
    return dict(aggregated)
