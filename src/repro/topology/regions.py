"""Region extraction, PoP aggregation and automatic region partitioning.

The paper works on *PoP-to-PoP* traffic matrices: "core routers located in
the same city were aggregated to form a point of presence (PoP)" and the
European/American subnetworks are obtained by excluding "all links and
demands that do not have both source and destination inside the specific
region".  This module implements both operations on router-level
topologies:

* :func:`extract_region` — keep only the nodes of a region and the links
  internal to it;
* :func:`aggregate_to_pops` — merge all routers sharing a city into a single
  PoP node, collapsing parallel inter-city links into one aggregate link
  whose capacity is the sum of its members (the lowest metric is kept, which
  mirrors how the dominant path would be chosen);
* :func:`aggregate_demands_to_pops` — the matching aggregation for a
  router-level demand mapping.

The hierarchical estimation layer (:mod:`repro.estimation.sharded`) adds
two requirements the hand-built paper networks never had: generated
topologies carry no region labels, and the collapsed inter-region graph
must be buildable from an arbitrary node-to-region assignment.  Hence:

* :func:`partition_regions` — a deterministic metric-space partitioner
  (farthest-point seeding + multi-source Dijkstra Voronoi cells over the
  IGP metrics, with a connectivity repair pass) that synthesises a region
  assignment for any strongly connected backbone;
* :func:`assign_regions` — stamp an assignment onto the (immutable) nodes,
  making :func:`extract_region` work on generated topologies;
* :func:`aggregate_to_regions` — collapse every region to one super-node,
  the inter-region graph the sharded estimator solves its coarse problem
  on.
"""

from __future__ import annotations

import dataclasses
import math
from collections import defaultdict
from typing import Mapping, Optional

import numpy as np
import scipy.sparse
from scipy.sparse import csgraph

from repro.errors import TopologyError
from repro.topology.elements import Link, Node, NodePair, NodeRole
from repro.topology.network import Network

__all__ = [
    "extract_region",
    "aggregate_to_pops",
    "aggregate_demands_to_pops",
    "partition_regions",
    "assign_regions",
    "aggregate_to_regions",
    "default_num_regions",
]


def extract_region(network: Network, region: str, name: str | None = None) -> Network:
    """Return the subnetwork of all nodes whose ``region`` attribute matches.

    Parameters
    ----------
    network:
        The full (global) topology.
    region:
        Region label to select, e.g. ``"europe"``.
    name:
        Name of the extracted network; defaults to the region label.

    Raises
    ------
    TopologyError
        If no node carries the requested region label.
    """
    selected = [node.name for node in network.nodes if node.region == region]
    if not selected:
        raise TopologyError(f"network {network.name!r} has no nodes in region {region!r}")
    return network.subnetwork(name or region, selected)


def _strongest_role(members: list[Node]) -> NodeRole:
    """Strongest role present among ``members`` (peering > access > transit)."""
    roles = {member.role for member in members}
    if NodeRole.PEERING in roles:
        return NodeRole.PEERING
    if NodeRole.ACCESS in roles:
        return NodeRole.ACCESS
    return NodeRole.TRANSIT


def _aggregate_by(
    network: Network,
    group_of: Mapping[str, str],
    name: str,
    group_order: list[str],
    region_of_group: Mapping[str, Optional[str]],
) -> Network:
    """Collapse node groups into super-nodes with merged inter-group links.

    Shared engine of :func:`aggregate_to_pops` and
    :func:`aggregate_to_regions`: intra-group links disappear, parallel
    inter-group links merge into one link whose capacity is the sum of the
    parallel capacities and whose metric is the minimum (the paper's
    decision to route the aggregated demand along the path of the largest
    original demand).
    """
    members_of: dict[str, list[Node]] = defaultdict(list)
    for node in network.nodes:
        members_of[group_of[node.name]].append(node)

    aggregated = Network(name)
    for group in group_order:
        members = members_of[group]
        aggregated.add_node(
            Node(
                name=group,
                role=_strongest_role(members),
                region=region_of_group[group],
                population=sum(member.population for member in members),
                city=group,
            )
        )

    merged: dict[tuple[str, str], dict[str, float]] = {}
    kinds: dict[tuple[str, str], Link] = {}
    for link in network.links:
        src_group, dst_group = group_of[link.source], group_of[link.target]
        if src_group == dst_group:
            continue  # intra-group links disappear in the aggregation
        key = (src_group, dst_group)
        entry = merged.setdefault(key, {"capacity": 0.0, "metric": float("inf")})
        entry["capacity"] += link.capacity_mbps
        entry["metric"] = min(entry["metric"], link.metric)
        kinds.setdefault(key, link)
    for (src_group, dst_group), entry in merged.items():
        aggregated.add_link(
            Link(
                source=src_group,
                target=dst_group,
                capacity_mbps=entry["capacity"],
                metric=entry["metric"],
                kind=kinds[(src_group, dst_group)].kind,
            )
        )
    return aggregated


def aggregate_to_pops(network: Network, name: str | None = None) -> Network:
    """Aggregate routers sharing a city into PoP-level nodes.

    Every node's :attr:`~repro.topology.elements.Node.pop_name` determines
    its PoP.  The aggregated node takes:

    * the *strongest* role present among its members (peering > access >
      transit), because a PoP with any edge router terminates traffic;
    * the sum of member populations;
    * the region of its first member.

    Inter-PoP links are the union of the member links; parallel links
    between the same PoP pair are merged into one link whose capacity is the
    sum of the parallel capacities and whose metric is the minimum, matching
    the paper's decision to route the aggregated demand along the path of
    the largest original demand.
    """
    group_of = {node.name: node.pop_name for node in network.nodes}
    group_order: list[str] = []
    region_of_group: dict[str, Optional[str]] = {}
    for node in network.nodes:
        if node.pop_name not in region_of_group:
            group_order.append(node.pop_name)
            region_of_group[node.pop_name] = node.region
    return _aggregate_by(
        network, group_of, name or f"{network.name}-pops", group_order, region_of_group
    )


def aggregate_demands_to_pops(
    network: Network, demands: Mapping[NodePair, float]
) -> dict[NodePair, float]:
    """Aggregate a router-level demand mapping to PoP level.

    Demands between routers in the same PoP vanish (they never touch
    backbone links); demands between routers of different PoPs are summed
    into the corresponding PoP pair.

    Parameters
    ----------
    network:
        The router-level network the demands refer to.
    demands:
        Mapping from router-level node pair to demand volume.

    Returns
    -------
    dict[NodePair, float]
        PoP-level demand mapping.
    """
    pop_of = {node.name: node.pop_name for node in network.nodes}
    aggregated: dict[NodePair, float] = defaultdict(float)
    for pair, volume in demands.items():
        if volume < 0:
            raise TopologyError(f"negative demand for pair {pair}")
        if pair.origin not in pop_of or pair.destination not in pop_of:
            raise TopologyError(f"demand references unknown node in pair {pair}")
        src_pop, dst_pop = pop_of[pair.origin], pop_of[pair.destination]
        if src_pop == dst_pop:
            continue
        aggregated[NodePair(src_pop, dst_pop)] += float(volume)
    return dict(aggregated)


# ----------------------------------------------------------------------
# automatic region partitioning
# ----------------------------------------------------------------------


def default_num_regions(num_nodes: int) -> int:
    """Heuristic region count for an ``num_nodes``-node backbone.

    Roughly ``sqrt(N / 8)``: with ``k`` regions of ``N / k`` nodes the
    per-region solves together handle ``~N^2 / k`` pairs, so this choice
    shrinks the shard workload by an order of magnitude at N=500 while
    keeping regions large enough that most traffic stays intra-region
    (the inter-region coarse problem is the approximate part).
    """
    if num_nodes < 2:
        raise TopologyError("cannot partition a network with fewer than two nodes")
    return max(2, min(num_nodes, round(math.sqrt(num_nodes / 8.0))))


def _metric_distance_matrix(network: Network) -> tuple[scipy.sparse.csr_matrix, list[str]]:
    """Symmetric IGP-metric adjacency (CSR) over the network's nodes."""
    names = list(network.node_names)
    index = {name: position for position, name in enumerate(names)}
    weight: dict[tuple[int, int], float] = {}
    for link in network.links:
        a, b = index[link.source], index[link.target]
        key = (a, b) if a < b else (b, a)
        current = weight.get(key)
        if current is None or link.metric < current:
            weight[key] = link.metric
    if weight:
        rows, cols, data = zip(*((a, b, value) for (a, b), value in weight.items()))
    else:
        rows, cols, data = (), (), ()
    matrix = scipy.sparse.coo_matrix(
        (data, (rows, cols)), shape=(len(names), len(names))
    ).tocsr()
    return matrix, names


def partition_regions(
    network: Network,
    num_regions: Optional[int] = None,
    seed: int = 0,
) -> dict[str, str]:
    """Deterministic partition of a backbone into connected regions.

    A METIS-style geometric partition over the IGP metric space:

    1. the first seed node is drawn population-weighted from ``seed`` (a
       fixed seed fixes the whole partition), the remaining seeds by
       farthest-point traversal — each new seed maximises its metric
       distance to the seeds already chosen;
    2. every node joins the region of its nearest seed (multi-source
       Dijkstra Voronoi cells; ties break towards the earlier seed), which
       aligns region boundaries with routing locality — shortest paths
       between nodes of one region rarely leave it;
    3. a repair pass reattaches any disconnected cell fragments to the
       neighbouring region they share the most links with, so every region
       induces a connected subnetwork;
    4. a balancing pass peels boundary nodes off oversized regions (cells
       of central seeds can swallow far more than ``N / k`` nodes) into
       their smallest adjacent region, never breaking connectivity, until
       every region is within ~30 % of the ideal size or no safe move
       remains.  Balanced shards matter because the largest region
       dominates the per-region solve time.

    Returns a mapping ``{node_name: region_label}`` with labels ``"R00"``,
    ``"R01"``, ... in seed order.  The result is deterministic for a fixed
    ``(network, num_regions, seed)``.
    """
    num_nodes = network.num_nodes
    if num_regions is None:
        num_regions = default_num_regions(num_nodes)
    if not 1 <= num_regions <= num_nodes:
        raise TopologyError(
            f"cannot split {num_nodes} nodes into {num_regions} regions"
        )
    matrix, names = _metric_distance_matrix(network)
    if num_regions == 1:
        return {name: "R00" for name in names}

    rng = np.random.default_rng(seed)
    populations = np.array([node.population for node in network.nodes], dtype=float)
    weights = populations.clip(min=0.0)
    if weights.sum() <= 0:
        weights = np.ones(num_nodes)
    seeds = [int(rng.choice(num_nodes, p=weights / weights.sum()))]
    # Farthest-point traversal: each next seed maximises the metric
    # distance to the chosen set (ties -> lowest node index, so the
    # traversal is deterministic given the first seed).
    distances = csgraph.dijkstra(matrix, directed=False, indices=seeds[0])
    while len(seeds) < num_regions:
        candidate = int(np.argmax(np.where(np.isinf(distances), -1.0, distances)))
        if candidate in seeds:  # pragma: no cover - only on degenerate graphs
            remaining = [i for i in range(num_nodes) if i not in seeds]
            candidate = remaining[0]
        seeds.append(candidate)
        distances = np.minimum(
            distances, csgraph.dijkstra(matrix, directed=False, indices=candidate)
        )

    seed_distances = csgraph.dijkstra(matrix, directed=False, indices=seeds)
    # Nearest seed wins; np.argmin's first-match rule breaks ties towards
    # the earlier seed.
    assignment = np.argmin(np.where(np.isinf(seed_distances), np.inf, seed_distances), axis=0)

    # Repair pass: a Voronoi cell of a graph metric is usually connected,
    # but tie-breaking can strand fragments.  Reattach every fragment that
    # does not contain its seed to the neighbouring region it shares the
    # most links with.
    undirected: dict[int, set[int]] = defaultdict(set)
    coo = matrix.tocoo()
    for a, b in zip(coo.row, coo.col):
        undirected[int(a)].add(int(b))
        undirected[int(b)].add(int(a))

    def components(region: int) -> list[set[int]]:
        member_set = {i for i in range(num_nodes) if assignment[i] == region}
        found: list[set[int]] = []
        unseen = set(member_set)
        while unseen:
            start = min(unseen)
            stack, component = [start], {start}
            while stack:
                node = stack.pop()
                for neighbour in undirected[node]:
                    if neighbour in member_set and neighbour not in component:
                        component.add(neighbour)
                        stack.append(neighbour)
            found.append(component)
            unseen -= component
        return found

    for _ in range(num_nodes):  # each pass strictly shrinks some fragment
        moved = False
        for region, seed_node in enumerate(seeds):
            for component in components(region):
                if seed_node in component:
                    continue
                # Count boundary links into each neighbouring region.
                contact: dict[int, int] = defaultdict(int)
                for node in component:
                    for neighbour in undirected[node]:
                        target = int(assignment[neighbour])
                        if target != region:
                            contact[target] += 1
                if not contact:  # pragma: no cover - disconnected input
                    continue
                best = max(sorted(contact), key=lambda r: contact[r])
                for node in component:
                    assignment[node] = best
                moved = True
        if not moved:
            break

    # Balancing pass: move boundary nodes of oversized regions into their
    # smallest adjacent region.  A move is allowed only when the donor
    # stays connected without the node and strictly reduces the size gap,
    # so the loop terminates and regions remain connected.
    cap = math.ceil(1.3 * num_nodes / num_regions)

    def region_connected_without(region: int, removed: int) -> bool:
        members = {i for i in range(num_nodes) if assignment[i] == region and i != removed}
        if not members:
            return False
        start = min(members)
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            for neighbour in undirected[node]:
                if neighbour in members and neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen == members

    for _ in range(4 * num_nodes):
        sizes: dict[int, int] = defaultdict(int)
        for region in assignment:
            sizes[int(region)] += 1
        oversized = [region for region, size in sizes.items() if size > cap]
        if not oversized:
            break
        big = max(sorted(oversized), key=lambda region: sizes[region])
        big_row = seed_distances[big]
        boundary = sorted(
            (node for node in range(num_nodes) if assignment[node] == big),
            key=lambda node: (-big_row[node] if np.isfinite(big_row[node]) else 0.0, node),
        )
        moved = False
        for node in boundary:
            adjacent = sorted(
                {
                    int(assignment[neighbour])
                    for neighbour in undirected[node]
                    if int(assignment[neighbour]) != big
                }
            )
            adjacent = [
                region for region in adjacent if sizes[region] + 1 < sizes[big]
            ]
            if not adjacent or not region_connected_without(big, node):
                continue
            assignment[node] = min(adjacent, key=lambda region: (sizes[region], region))
            moved = True
            break
        if not moved:
            break

    used = sorted({int(region) for region in assignment})
    relabel = {region: f"R{position:02d}" for position, region in enumerate(used)}
    return {names[i]: relabel[int(assignment[i])] for i in range(num_nodes)}


def assign_regions(
    network: Network, assignment: Mapping[str, str], name: str | None = None
) -> Network:
    """Return a copy of ``network`` whose nodes carry the given region labels.

    Makes :func:`extract_region` and the sharded estimator work on
    generated topologies, whose nodes have no region attribute: partition
    with :func:`partition_regions`, stamp with this function.

    Raises
    ------
    TopologyError
        If the assignment misses any node of the network.
    """
    missing = [node.name for node in network.nodes if node.name not in assignment]
    if missing:
        raise TopologyError(f"region assignment missing nodes: {missing[:5]}")
    stamped = Network(name or network.name)
    for node in network.nodes:
        stamped.add_node(dataclasses.replace(node, region=assignment[node.name]))
    for link in network.links:
        stamped.add_link(link)
    return stamped


def aggregate_to_regions(
    network: Network,
    assignment: Optional[Mapping[str, str]] = None,
    name: str | None = None,
) -> Network:
    """Collapse every region into one super-node (the inter-region graph).

    The counterpart of :func:`aggregate_to_pops` for region granularity:
    each region becomes a node named after its label, intra-region links
    disappear, and parallel inter-region links merge (capacity sum, metric
    minimum).  ``assignment`` defaults to the nodes' own region labels,
    which must then all be present.
    """
    if assignment is None:
        missing = [node.name for node in network.nodes if node.region is None]
        if missing:
            raise TopologyError(
                f"nodes without region labels: {missing[:5]}; "
                "pass an explicit assignment or run partition_regions first"
            )
        assignment = {node.name: node.region for node in network.nodes}
    else:
        unknown = [name_ for name_ in (node.name for node in network.nodes) if name_ not in assignment]
        if unknown:
            raise TopologyError(f"region assignment missing nodes: {unknown[:5]}")
    group_order: list[str] = []
    for node in network.nodes:
        label = assignment[node.name]
        if label not in group_order:
            group_order.append(label)
    region_of_group = {label: label for label in group_order}
    return _aggregate_by(
        network,
        {node.name: assignment[node.name] for node in network.nodes},
        name or f"{network.name}-regions",
        group_order,
        region_of_group,
    )
