"""Basic network elements: nodes (PoPs / routers) and directed links.

The paper studies PoP-to-PoP traffic matrices on Global Crossing's backbone,
where core routers located in the same city are aggregated into a point of
presence (PoP).  The data model therefore distinguishes three concepts:

* :class:`Node` — a PoP or a core router.  A node has a *role*
  (:class:`NodeRole`) that records whether the node terminates traffic as an
  access point, exchanges traffic with other carriers as a peering point, or
  only transits traffic (some PoPs in the paper contain routers that only
  carry transit traffic).
* :class:`Link` — a directed link with a capacity, a propagation metric used
  by the IGP/CSPF routing algorithms, and a *kind* (:class:`LinkKind`)
  distinguishing interior backbone links from the access and peering links
  over which demand enters and exits the network (the paper's ``e(n)`` and
  ``x(m)`` links).
* :class:`NodePair` — an ordered origin-destination pair, the unit at which
  demands are expressed.

All elements are immutable value objects; the mutable container that ties
them together is :class:`repro.topology.network.Network`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TopologyError

__all__ = [
    "NodeRole",
    "LinkKind",
    "Node",
    "Link",
    "NodePair",
]


class NodeRole(enum.Enum):
    """Functional role of a node in the backbone.

    The generalised gravity model of Zhang et al. treats access and peering
    nodes differently (traffic between two peering points is forced to
    zero), so the role must be part of the data model even though the simple
    gravity model studied in most of the paper ignores it.
    """

    ACCESS = "access"
    PEERING = "peering"
    TRANSIT = "transit"

    def terminates_traffic(self) -> bool:
        """Return ``True`` if demands may originate or terminate here.

        Transit nodes only forward traffic; they never appear as the source
        or destination of a point-to-point demand.
        """
        return self is not NodeRole.TRANSIT


class LinkKind(enum.Enum):
    """Classification of a directed link.

    ``INTERIOR`` links connect core routers / PoPs inside the backbone;
    ``ACCESS`` and ``PEERING`` links attach edge traffic.  Following the
    paper's Section 3.1, the access/peering link of node *n* is the link over
    which the total traffic entering (or exiting) the network at *n* is
    observed.
    """

    INTERIOR = "interior"
    ACCESS = "access"
    PEERING = "peering"

    def is_edge(self) -> bool:
        """Return ``True`` for access or peering links."""
        return self is not LinkKind.INTERIOR


@dataclass(frozen=True, order=True)
class Node:
    """A PoP or core router.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"LON"`` or ``"NYC-cr2"``.
    role:
        Functional role (access, peering or transit).
    region:
        Optional label used for sub-network extraction, e.g. ``"europe"``
        or ``"america"``.
    population:
        Relative size of the user population served by the node.  The
        synthetic traffic generators use it to shape the spatial demand
        distribution; it has no meaning for estimation methods.
    city:
        Optional human-readable city name, used when aggregating routers
        into PoPs.
    """

    name: str
    role: NodeRole = NodeRole.ACCESS
    region: Optional[str] = None
    population: float = 1.0
    city: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node name must be a non-empty string")
        if self.population < 0:
            raise TopologyError(
                f"node {self.name!r} has negative population {self.population}"
            )

    @property
    def pop_name(self) -> str:
        """Return the PoP this node belongs to (its city, or its own name)."""
        return self.city if self.city is not None else self.name

    def is_edge(self) -> bool:
        """Return ``True`` if the node can originate or sink demands."""
        return self.role.terminates_traffic()


@dataclass(frozen=True)
class Link:
    """A directed link between two nodes.

    Parameters
    ----------
    source, target:
        Names of the endpoint nodes.  Links are directed: traffic flows
        from ``source`` to ``target``.
    capacity_mbps:
        Link capacity in Mbit/s.  Used by the CSPF routing substrate for
        bandwidth-constrained path selection and by the measurement layer
        for utilisation computation.
    metric:
        IGP metric / administrative weight used by shortest-path routing.
    kind:
        Interior, access or peering link.
    name:
        Optional explicit identifier.  When omitted a canonical
        ``"source->target"`` name is generated.
    """

    source: str
    target: str
    capacity_mbps: float = 10_000.0
    metric: float = 1.0
    kind: LinkKind = LinkKind.INTERIOR
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise TopologyError("link endpoints must be non-empty strings")
        if self.source == self.target:
            raise TopologyError(f"self-loop link at node {self.source!r}")
        if self.capacity_mbps <= 0:
            raise TopologyError(
                f"link {self.source}->{self.target} has non-positive capacity"
            )
        if self.metric <= 0:
            raise TopologyError(
                f"link {self.source}->{self.target} has non-positive metric"
            )
        if not self.name:
            object.__setattr__(self, "name", f"{self.source}->{self.target}")

    @property
    def endpoints(self) -> tuple[str, str]:
        """Return the ``(source, target)`` node names."""
        return (self.source, self.target)

    def reversed(self) -> "Link":
        """Return the link in the opposite direction with identical attributes."""
        return Link(
            source=self.target,
            target=self.source,
            capacity_mbps=self.capacity_mbps,
            metric=self.metric,
            kind=self.kind,
        )


@dataclass(frozen=True, order=True)
class NodePair:
    """An ordered origin-destination pair ``(origin, destination)``.

    The traffic matrix is indexed by node pairs; a network with ``N`` edge
    nodes has ``P = N * (N - 1)`` distinct pairs (diagonal excluded, as in
    the paper).
    """

    origin: str
    destination: str

    def __post_init__(self) -> None:
        if not self.origin or not self.destination:
            raise TopologyError("node pair endpoints must be non-empty strings")
        if self.origin == self.destination:
            raise TopologyError(
                f"node pair with identical endpoints {self.origin!r}"
            )

    def reversed(self) -> "NodePair":
        """Return the pair for the opposite direction."""
        return NodePair(self.destination, self.origin)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.origin}->{self.destination}"
