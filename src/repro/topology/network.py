"""The :class:`Network` container tying nodes and links together.

A :class:`Network` is the central topology object consumed by the routing
substrate (:mod:`repro.routing`), the traffic generators
(:mod:`repro.traffic`) and the estimation methods.  It maintains

* an ordered collection of :class:`~repro.topology.elements.Node` objects,
* an ordered collection of directed
  :class:`~repro.topology.elements.Link` objects,
* the canonical enumeration of origin-destination
  :class:`~repro.topology.elements.NodePair` objects used to vectorise the
  traffic matrix (the paper's ``p = 1..P`` indexing).

Ordering matters: the routing matrix ``R`` (links x pairs) and the demand
vector ``s`` are both indexed positionally, so the network fixes a single
canonical order for links and pairs that every other module relies on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

import networkx as nx

from repro.errors import TopologyError
from repro.topology.elements import Link, LinkKind, Node, NodePair, NodeRole

__all__ = ["Network"]


class Network:
    """A directed backbone network of PoPs/routers and links.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"europe"`` or ``"america"``.
    nodes:
        Iterable of nodes.  Order is preserved and defines node indices.
    links:
        Iterable of directed links.  Order is preserved and defines the row
        order of routing matrices built for this network.

    Notes
    -----
    The class intentionally exposes a small, explicit API rather than
    subclassing :class:`networkx.DiGraph`; a NetworkX view is available via
    :meth:`to_networkx` for algorithms that want it.
    """

    def __init__(
        self,
        name: str,
        nodes: Iterable[Node] = (),
        links: Iterable[Link] = (),
    ) -> None:
        if not name:
            raise TopologyError("network name must be a non-empty string")
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: dict[str, Link] = {}
        self._link_index: dict[str, int] = {}
        self._adjacency: dict[str, list[Link]] = {}
        self._graph: Optional[nx.DiGraph] = None
        for node in nodes:
            self.add_node(node)
        for link in links:
            self.add_link(link)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add a node, rejecting duplicates."""
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency.setdefault(node.name, [])
        self._graph = None

    def add_link(self, link: Link) -> None:
        """Add a directed link whose endpoints must already exist."""
        if link.source not in self._nodes:
            raise TopologyError(f"link {link.name!r} references unknown node {link.source!r}")
        if link.target not in self._nodes:
            raise TopologyError(f"link {link.name!r} references unknown node {link.target!r}")
        if link.name in self._links:
            raise TopologyError(f"duplicate link {link.name!r}")
        self._link_index[link.name] = len(self._links)
        self._links[link.name] = link
        self._adjacency[link.source].append(link)
        self._graph = None

    def add_bidirectional_link(self, link: Link) -> None:
        """Add ``link`` and its reverse in one call (common for backbones)."""
        self.add_link(link)
        self.add_link(link.reversed())

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes in insertion order."""
        return tuple(self._nodes.values())

    @property
    def node_names(self) -> tuple[str, ...]:
        """Names of all nodes in insertion order."""
        return tuple(self._nodes.keys())

    def node(self, name: str) -> Node:
        """Return the node called ``name``, raising ``TopologyError`` if absent."""
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise TopologyError(f"unknown node {name!r} in network {self.name!r}") from exc

    def has_node(self, name: str) -> bool:
        """Return whether a node called ``name`` exists."""
        return name in self._nodes

    @property
    def edge_nodes(self) -> tuple[Node, ...]:
        """Nodes that can originate or terminate demands (access or peering)."""
        return tuple(node for node in self._nodes.values() if node.is_edge())

    @property
    def access_nodes(self) -> tuple[Node, ...]:
        """Nodes with the ``ACCESS`` role (the paper's set ``A``)."""
        return tuple(n for n in self._nodes.values() if n.role is NodeRole.ACCESS)

    @property
    def peering_nodes(self) -> tuple[Node, ...]:
        """Nodes with the ``PEERING`` role (the paper's set ``P``)."""
        return tuple(n for n in self._nodes.values() if n.role is NodeRole.PEERING)

    @property
    def transit_nodes(self) -> tuple[Node, ...]:
        """Nodes that only transit traffic."""
        return tuple(n for n in self._nodes.values() if n.role is NodeRole.TRANSIT)

    # ------------------------------------------------------------------
    # link access
    # ------------------------------------------------------------------
    @property
    def links(self) -> tuple[Link, ...]:
        """All directed links in insertion order."""
        return tuple(self._links.values())

    @property
    def link_names(self) -> tuple[str, ...]:
        """Names of all links in insertion order."""
        return tuple(self._links.keys())

    def link(self, name: str) -> Link:
        """Return the link called ``name``, raising ``TopologyError`` if absent."""
        try:
            return self._links[name]
        except KeyError as exc:
            raise TopologyError(f"unknown link {name!r} in network {self.name!r}") from exc

    def has_link(self, name: str) -> bool:
        """Return whether a link called ``name`` exists."""
        return name in self._links

    def link_index(self, name: str) -> int:
        """Return the canonical row index of the link called ``name``."""
        try:
            return self._link_index[name]
        except KeyError as exc:
            raise TopologyError(f"unknown link {name!r} in network {self.name!r}") from exc

    def find_link(self, source: str, target: str) -> Link:
        """Return the (first) directed link from ``source`` to ``target``."""
        for link in self._adjacency.get(source, []):
            if link.target == target:
                return link
        raise TopologyError(f"no link from {source!r} to {target!r} in {self.name!r}")

    def outgoing_links(self, node_name: str) -> tuple[Link, ...]:
        """Directed links leaving ``node_name``."""
        self.node(node_name)
        return tuple(self._adjacency[node_name])

    def incoming_links(self, node_name: str) -> tuple[Link, ...]:
        """Directed links entering ``node_name``."""
        self.node(node_name)
        return tuple(link for link in self._links.values() if link.target == node_name)

    @property
    def interior_links(self) -> tuple[Link, ...]:
        """Links connecting core nodes (excludes access/peering links)."""
        return tuple(l for l in self._links.values() if l.kind is LinkKind.INTERIOR)

    # ------------------------------------------------------------------
    # sizes and pair enumeration
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of directed links ``L``."""
        return len(self._links)

    @property
    def num_pairs(self) -> int:
        """Number of origin-destination pairs between edge nodes."""
        n_edge = len(self.edge_nodes)
        return n_edge * (n_edge - 1)

    def node_pairs(self) -> tuple[NodePair, ...]:
        """Canonical enumeration of origin-destination pairs.

        Pairs are ordered by origin (node insertion order) and then by
        destination, skipping the diagonal.  Only edge nodes (access or
        peering) appear; transit nodes never source or sink demands.
        """
        edge_names = [node.name for node in self.edge_nodes]
        pairs = []
        for origin in edge_names:
            for destination in edge_names:
                if origin != destination:
                    pairs.append(NodePair(origin, destination))
        return tuple(pairs)

    def pair_index(self) -> dict[NodePair, int]:
        """Return the mapping from node pair to its canonical vector index."""
        return {pair: idx for idx, pair in enumerate(self.node_pairs())}

    # ------------------------------------------------------------------
    # validation and views
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants, raising ``TopologyError`` on failure.

        The network must contain at least two edge nodes (otherwise no
        demands exist) and must be strongly connected over its edge nodes so
        that every demand is routable.
        """
        if len(self.edge_nodes) < 2:
            raise TopologyError(
                f"network {self.name!r} needs at least two edge nodes, "
                f"got {len(self.edge_nodes)}"
            )
        # The pair enumeration contains both directions of every edge-node
        # pair, so routability of all pairs is exactly "all edge nodes lie
        # in one strongly connected component" — one SCC sweep instead of
        # the quadratic per-pair has_path loop (which dominated topology
        # generation beyond a few hundred nodes).
        graph = self.to_networkx()
        component_of: dict[str, int] = {}
        for index, component in enumerate(nx.strongly_connected_components(graph)):
            for node_name in component:
                component_of[node_name] = index
        edge_names = [node.name for node in self.edge_nodes]
        anchor = edge_names[0]
        for other in edge_names[1:]:
            if component_of[other] != component_of[anchor]:
                # Name one unroutable demand, matching the historical error.
                pair = NodePair(anchor, other)
                if nx.has_path(graph, anchor, other):
                    pair = NodePair(other, anchor)
                raise TopologyError(
                    f"network {self.name!r} has no path for demand {pair}"
                )

    def is_connected(self) -> bool:
        """Return ``True`` if every origin-destination pair has a path."""
        try:
            self.validate()
        # Probe: the boolean *is* the answer; nothing is swallowed.
        except TopologyError:  # reprolint: allow[fault-handling]
            return False
        return True

    def to_networkx(self) -> nx.DiGraph:
        """Return a :class:`networkx.DiGraph` view of the topology.

        Link attributes are attached to the edges (``capacity_mbps``,
        ``metric``, ``kind`` and ``name``); node attributes carry the role,
        region and population.  Parallel links collapse to the lowest-metric
        one, which matches how the IGP would prefer them.

        The view is built once and cached so that repeated
        :meth:`validate` / :meth:`is_connected` calls (e.g. connectivity
        probes of surviving topologies) and external NetworkX-based
        consumers stop rebuilding it per call; the cache is invalidated by
        :meth:`add_node` / :meth:`add_link`.  The returned graph is frozen
        (mutating it would corrupt the shared cache); mutate a ``.copy()``
        instead.
        """
        if self._graph is not None:
            return self._graph
        graph = nx.DiGraph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(
                node.name,
                role=node.role,
                region=node.region,
                population=node.population,
                city=node.city,
            )
        for link in self._links.values():
            existing = graph.get_edge_data(link.source, link.target)
            if existing is not None and existing["metric"] <= link.metric:
                continue
            graph.add_edge(
                link.source,
                link.target,
                capacity_mbps=link.capacity_mbps,
                metric=link.metric,
                kind=link.kind,
                name=link.name,
            )
        self._graph = nx.freeze(graph)
        return self._graph

    def subnetwork(self, name: str, node_names: Sequence[str]) -> "Network":
        """Return the sub-network induced by ``node_names``.

        Links with either endpoint outside the selection are dropped, which
        is exactly how the paper extracts the European and American
        subnetworks ("we simply exclude all links and demands that do not
        have both source and destination inside the specific region").
        """
        selected = set(node_names)
        unknown = selected - set(self._nodes)
        if unknown:
            raise TopologyError(f"unknown nodes in selection: {sorted(unknown)}")
        if not selected:
            raise TopologyError("cannot build an empty subnetwork")
        sub = Network(name)
        for node in self._nodes.values():
            if node.name in selected:
                sub.add_node(node)
        for link in self._links.values():
            if link.source in selected and link.target in selected:
                sub.add_link(link)
        return sub

    def total_capacity(self) -> float:
        """Aggregate capacity of all links in Mbit/s."""
        return sum(link.capacity_mbps for link in self._links.values())

    def degree(self, node_name: str) -> int:
        """Out-degree of ``node_name`` (number of outgoing links)."""
        return len(self.outgoing_links(node_name))

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes or name in self._links

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links}, pairs={self.num_pairs})"
        )
