"""Bayesian / regularised least-squares estimation (paper Section 4.2.3).

Modelling the prior knowledge of the traffic matrix as
``s ~ N(s^(p), sigma^2 I)`` and the link measurements as
``t = R s + v`` with unit-variance white noise, the maximum a posteriori
estimate solves

    minimise ``|| R s - t ||_2^2 + sigma^{-2} || s - s^(p) ||_2^2``
    subject to ``s >= 0``

(the non-negativity constraint is added because demands cannot be negative).
The *regularisation parameter* swept in the paper's Figure 13/15 is
``sigma^2``: small values trust the prior, large values trust the link
measurements and only use the prior to select among the solutions of
``R s = t``.

The problem is a non-negative least-squares fit of the stacked system

    ``[ R ; sigma^{-1} I ] s  ~  [ t ; sigma^{-1} s^(p) ]``

which :class:`BayesianEstimator` hands to :func:`repro.optimize.nnls.nnls`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import EstimationProblem, EstimationResult, Estimator
from repro.estimation.priors import make_prior
from repro.optimize.nnls import nnls

__all__ = ["BayesianEstimator"]


class BayesianEstimator(Estimator):
    """MAP estimation with a Gaussian prior around a prior traffic matrix.

    Parameters
    ----------
    regularization:
        The parameter ``sigma^2``; larger values emphasise the link-load
        measurements over the prior.  Must be positive.
    prior:
        Either an explicit prior vector or the name of a prior constructor
        understood by :func:`repro.estimation.priors.make_prior`
        (``"gravity"``, ``"wcb"``, ``"uniform"``).
    solver:
        NNLS solver preference (``"auto"``, ``"active-set"``,
        ``"projected-gradient"``).
    """

    name = "bayesian"

    def __init__(
        self,
        regularization: float = 1000.0,
        prior: str | np.ndarray = "gravity",
        solver: str = "auto",
    ) -> None:
        if regularization <= 0:
            raise EstimationError("regularization (sigma^2) must be positive")
        self.regularization = float(regularization)
        self.prior = prior
        self.solver = solver

    # ------------------------------------------------------------------
    def _prior_vector(self, problem: EstimationProblem) -> np.ndarray:
        if isinstance(self.prior, str):
            return make_prior(problem, self.prior)
        prior = np.asarray(self.prior, dtype=float)
        if prior.shape != (problem.num_pairs,):
            raise EstimationError(
                f"prior has shape {prior.shape}, expected ({problem.num_pairs},)"
            )
        if np.any(prior < 0):
            raise EstimationError("prior demands must be non-negative")
        return prior

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Solve the regularised non-negative least-squares problem."""
        prior = self._prior_vector(problem)
        routing = problem.routing.matrix
        snapshot = problem.snapshot
        weight = 1.0 / np.sqrt(self.regularization)
        stacked_matrix = np.vstack([routing, weight * np.eye(problem.num_pairs)])
        stacked_rhs = np.concatenate([snapshot, weight * prior])
        solution = nnls(stacked_matrix, stacked_rhs, prefer=self.solver)
        values = solution.x
        return self._result(
            problem,
            values,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            link_residual=float(np.linalg.norm(routing @ values - snapshot)),
            prior_distance=float(np.linalg.norm(values - prior)),
            solver_iterations=solution.iterations,
            solver_converged=solution.converged,
        )
