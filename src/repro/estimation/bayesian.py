"""Bayesian / regularised least-squares estimation (paper Section 4.2.3).

Modelling the prior knowledge of the traffic matrix as
``s ~ N(s^(p), sigma^2 I)`` and the link measurements as
``t = R s + v`` with unit-variance white noise, the maximum a posteriori
estimate solves

    minimise ``|| R s - t ||_2^2 + sigma^{-2} || s - s^(p) ||_2^2``
    subject to ``s >= 0``

(the non-negativity constraint is added because demands cannot be negative).
The *regularisation parameter* swept in the paper's Figure 13/15 is
``sigma^2``: small values trust the prior, large values trust the link
measurements and only use the prior to select among the solutions of
``R s = t``.

The problem is a non-negative least-squares fit of the stacked system

    ``[ R ; sigma^{-1} I ] s  ~  [ t ; sigma^{-1} s^(p) ]``

which :class:`BayesianEstimator` hands to :func:`repro.optimize.nnls.nnls`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.gravity import gravity_vector_series
from repro.estimation.priors import make_prior
from repro.estimation.registry import register
from repro.optimize.nnls import nnls, nnls_normal_equations_batch
from repro.resilience.budget import budget_tick

__all__ = ["BayesianEstimator"]

#: Above this many pairs the dense ``(P, P)`` Gram/normal-equations paths
#: (quadratic memory, cubic factorisation) give way to the matrix-free
#: projected-gradient solver, which only needs operator products.
_GRAM_PAIR_LIMIT = 3000


@register()
class BayesianEstimator(Estimator):
    """MAP estimation with a Gaussian prior around a prior traffic matrix.

    Parameters
    ----------
    regularization:
        The parameter ``sigma^2``; larger values emphasise the link-load
        measurements over the prior.  Must be positive.
    prior:
        Either an explicit prior vector or the name of a prior constructor
        understood by :func:`repro.estimation.priors.make_prior`
        (``"gravity"``, ``"wcb"``, ``"uniform"``).
    solver:
        NNLS solver preference (``"auto"``, ``"active-set"``,
        ``"projected-gradient"``).  On dense backends it is forwarded to
        :func:`repro.optimize.nnls.nnls`; on sparse backends
        ``"active-set"`` selects the exact normal-equations pivoting
        (a direct solve — the ``iterations`` diagnostic reports 0) and
        ``"projected-gradient"`` the matrix-free FISTA path, neither of
        which densifies the routing matrix.
    """

    name = "bayesian"

    def __init__(
        self,
        regularization: float = 1000.0,
        prior: str | np.ndarray = "gravity",
        solver: str = "auto",
    ) -> None:
        if regularization <= 0:
            raise EstimationError("regularization (sigma^2) must be positive")
        self.regularization = float(regularization)
        self.prior = prior
        self.solver = solver
        self._warm_start: Optional[np.ndarray] = None

    def set_warm_start(self, vector: np.ndarray) -> None:
        """Use ``vector`` as the next solve's starting point (one-shot).

        Only the matrix-free projected-gradient path (large sparse
        problems) consumes it; the exact solvers are start-independent.
        The program is strictly convex, so the warm start cannot change
        the minimiser.
        """
        self._warm_start = np.asarray(vector, dtype=float).copy()

    # ------------------------------------------------------------------
    def _prior_vector(self, problem: EstimationProblem) -> np.ndarray:
        if isinstance(self.prior, str):
            return make_prior(problem, self.prior)
        prior = np.asarray(self.prior, dtype=float)
        if prior.shape != (problem.num_pairs,):
            raise EstimationError(
                f"prior has shape {prior.shape}, expected ({problem.num_pairs},)"
            )
        if np.any(prior < 0):
            raise EstimationError("prior demands must be non-negative")
        return prior

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Solve the regularised non-negative least-squares problem.

        Three solver paths, all minimising the same strictly convex
        program:

        * dense routing backend — the stacked-system NNLS exactly as
          before (byte-compatible with the historical behaviour);
        * sparse backend, ``P <= _GRAM_PAIR_LIMIT`` (or
          ``solver="active-set"``) — exact normal-equations solve on the
          cached dense Gram (never builds the ``(L + P, P)`` stacked
          matrix);
        * sparse backend, large ``P`` (or ``solver="projected-gradient"``)
          — matrix-free accelerated projected gradient using only
          ``matvec``/``rmatvec``, so memory stays ``O(nnz + P)``.
        """
        prior = self._prior_vector(problem)
        snapshot = problem.snapshot
        warm_start = self._warm_start
        self._warm_start = None
        weight_sq = 1.0 / self.regularization

        if problem.routing.backend_kind == "sparse":
            # Honour an explicit solver preference without densifying:
            # "active-set" maps to the exact normal-equations pivoting,
            # "projected-gradient" to the matrix-free FISTA path; "auto"
            # picks by problem size.
            if self.solver == "projected-gradient":
                use_exact = False
            elif self.solver == "active-set":
                use_exact = True
            else:
                use_exact = problem.num_pairs <= _GRAM_PAIR_LIMIT
            if use_exact:
                gram = problem.routing.gram() + weight_sq * np.eye(problem.num_pairs)
                rhs = problem.routing.rmatvec(snapshot) + weight_sq * prior
                values, converged_flags = nnls_normal_equations_batch(gram, rhs)
                iterations = 0
                converged = bool(np.all(converged_flags))
            else:
                values, iterations, converged = self._projected_gradient(
                    problem, snapshot, prior, weight_sq, warm_start
                )
            return self._result(
                problem,
                values,
                regularization=self.regularization,
                prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
                residual_norm=float(
                    np.linalg.norm(problem.routing.matvec(values) - snapshot)
                ),
                prior_distance=float(np.linalg.norm(values - prior)),
                iterations=int(iterations),
                converged=bool(converged),
            )

        routing = problem.routing.matrix
        weight = np.sqrt(weight_sq)
        stacked_matrix = np.vstack([routing, weight * np.eye(problem.num_pairs)])
        stacked_rhs = np.concatenate([snapshot, weight * prior])
        solution = nnls(stacked_matrix, stacked_rhs, prefer=self.solver)
        values = solution.x
        return self._result(
            problem,
            values,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            residual_norm=float(np.linalg.norm(routing @ values - snapshot)),
            prior_distance=float(np.linalg.norm(values - prior)),
            iterations=solution.iterations,
            converged=solution.converged,
        )

    # ------------------------------------------------------------------
    # matrix-free path for large sparse problems
    # ------------------------------------------------------------------
    def _lipschitz(self, problem: EstimationProblem, weight_sq: float) -> float:
        """``2 * (lambda_max(R'R) + sigma^{-2})``.

        The spectral radius comes from
        :meth:`~repro.routing.routing_matrix.RoutingMatrix.gram_spectral_radius`,
        cached on the routing matrix itself — which every ``at_snapshot``
        sub-problem of a series shares — so the power iteration runs once
        per routing, not once per snapshot.
        """
        return 2.0 * (problem.routing.gram_spectral_radius() + weight_sq)

    def _projected_gradient(
        self,
        problem: EstimationProblem,
        snapshot: np.ndarray,
        prior: np.ndarray,
        weight_sq: float,
        warm_start: Optional[np.ndarray],
        max_iterations: int = 5000,
        tolerance: float = 1e-10,
    ) -> tuple[np.ndarray, int, bool]:
        """FISTA on ``||R x - t||^2 + sigma^{-2} ||x - p||^2`` over ``x >= 0``.

        Every iteration costs one ``matvec`` + one ``rmatvec`` (``O(nnz)``)
        and vector arithmetic; no ``(L, P)`` or ``(P, P)`` array is ever
        formed.  Strong convexity (the ``sigma^{-2} I`` term) gives linear
        convergence, and the prior — or the previous snapshot's solution,
        via :meth:`set_warm_start` — is an excellent starting point.
        """
        routing = problem.routing
        lipschitz = self._lipschitz(problem, weight_sq)
        if lipschitz <= 0:
            return np.maximum(prior, 0.0), 0, True
        step = 1.0 / lipschitz

        def objective(x: np.ndarray) -> float:
            residual = routing.matvec(x) - snapshot
            offset = x - prior
            return float(residual @ residual) + weight_sq * float(offset @ offset)

        if warm_start is not None and warm_start.shape == prior.shape:
            x = np.maximum(warm_start, 0.0)
        else:
            x = np.maximum(prior, 0.0).copy()
        y = x.copy()
        momentum = 1.0
        previous_objective = objective(x)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            budget_tick()
            residual = routing.matvec(y) - snapshot
            gradient = 2.0 * routing.rmatvec(residual) + 2.0 * weight_sq * (y - prior)
            x_next = np.maximum(y - step * gradient, 0.0)
            momentum_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * momentum**2))
            y = x_next + (momentum - 1.0) / momentum_next * (x_next - x)
            x, momentum = x_next, momentum_next
            current_objective = objective(x)
            denominator = max(abs(previous_objective), 1e-12)
            if abs(previous_objective - current_objective) / denominator < tolerance:
                converged = True
                break
            previous_objective = current_objective
        return x, iterations, converged

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def _prior_series(self, problem: EstimationProblem) -> Optional[np.ndarray]:
        """Per-snapshot priors ``(K, P)``, or ``None`` when only the generic
        per-snapshot loop can reproduce them (the WCB prior solves LPs)."""
        num_snapshots = problem.series.shape[0]
        if not isinstance(self.prior, str):
            prior = self._prior_vector(problem)
            return np.tile(prior, (num_snapshots, 1))
        kind = self.prior.lower()
        if kind == "gravity":
            return gravity_vector_series(problem)
        if kind == "uniform":
            if problem.origin_totals_series is not None:
                totals = problem.origin_totals_series.sum(axis=1)
            elif problem.origin_totals is not None:
                totals = np.full(num_snapshots, float(sum(problem.origin_totals.values())))
            else:
                mean_length = float(problem.routing.path_lengths().mean())
                if mean_length <= 0:
                    raise EstimationError(
                        "routing matrix has empty paths; cannot infer total traffic"
                    )
                totals = problem.series.sum(axis=1) / mean_length
            return np.repeat(totals[:, None] / problem.num_pairs, problem.num_pairs, axis=1)
        return None

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Factor the normal equations once and solve every snapshot.

        In normal-equations form the regularised problem has the positive
        definite Hessian ``R'R + sigma^{-2} I`` shared by every snapshot, so
        one factorisation serves all ``K`` right-hand sides:
        :func:`repro.optimize.nnls.nnls_normal_equations_batch` inverts it
        once and enforces non-negativity per snapshot with warm-started
        block principal pivoting.  Results match the per-snapshot NNLS loop
        (both solve the same strictly convex program exactly).
        """
        if problem.num_pairs > _GRAM_PAIR_LIMIT:
            # The factor-once path needs a dense (P, P) Gram; above the
            # limit the generic loop with matrix-free warm-started solves
            # is both faster and O(nnz + P) in memory.
            return super().estimate_series(problem)
        priors = self._prior_series(problem)
        if priors is None:
            return super().estimate_series(problem)
        series = problem.series
        routing = problem.routing
        num_pairs = problem.num_pairs
        weight_sq = 1.0 / self.regularization
        gram = routing.gram() + weight_sq * np.eye(num_pairs)
        rhs = routing.rmatmat(series.T) + weight_sq * priors.T  # (P, K)
        solutions, converged = nnls_normal_equations_batch(gram, rhs)
        estimates = solutions.T
        fallback = np.flatnonzero(~converged)
        if fallback.size:  # pragma: no cover - PD gram, pivoting always converges
            weight = np.sqrt(weight_sq)
            stacked_matrix = np.vstack([routing.matrix, weight * np.eye(num_pairs)])
            for index in fallback:
                stacked_rhs = np.concatenate([series[index], weight * priors[index]])
                estimates[index] = nnls(stacked_matrix, stacked_rhs, prefer=self.solver).x
        return self._series_result(
            problem,
            estimates,
            batched=True,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            num_snapshots=int(series.shape[0]),
            num_fallback=int(fallback.size),
        )
