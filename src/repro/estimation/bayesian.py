"""Bayesian / regularised least-squares estimation (paper Section 4.2.3).

Modelling the prior knowledge of the traffic matrix as
``s ~ N(s^(p), sigma^2 I)`` and the link measurements as
``t = R s + v`` with unit-variance white noise, the maximum a posteriori
estimate solves

    minimise ``|| R s - t ||_2^2 + sigma^{-2} || s - s^(p) ||_2^2``
    subject to ``s >= 0``

(the non-negativity constraint is added because demands cannot be negative).
The *regularisation parameter* swept in the paper's Figure 13/15 is
``sigma^2``: small values trust the prior, large values trust the link
measurements and only use the prior to select among the solutions of
``R s = t``.

The problem is a non-negative least-squares fit of the stacked system

    ``[ R ; sigma^{-1} I ] s  ~  [ t ; sigma^{-1} s^(p) ]``

which :class:`BayesianEstimator` hands to :func:`repro.optimize.nnls.nnls`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.gravity import gravity_vector_series
from repro.estimation.priors import make_prior
from repro.estimation.registry import register
from repro.optimize.nnls import nnls, nnls_normal_equations_batch

__all__ = ["BayesianEstimator"]


@register()
class BayesianEstimator(Estimator):
    """MAP estimation with a Gaussian prior around a prior traffic matrix.

    Parameters
    ----------
    regularization:
        The parameter ``sigma^2``; larger values emphasise the link-load
        measurements over the prior.  Must be positive.
    prior:
        Either an explicit prior vector or the name of a prior constructor
        understood by :func:`repro.estimation.priors.make_prior`
        (``"gravity"``, ``"wcb"``, ``"uniform"``).
    solver:
        NNLS solver preference (``"auto"``, ``"active-set"``,
        ``"projected-gradient"``).
    """

    name = "bayesian"

    def __init__(
        self,
        regularization: float = 1000.0,
        prior: str | np.ndarray = "gravity",
        solver: str = "auto",
    ) -> None:
        if regularization <= 0:
            raise EstimationError("regularization (sigma^2) must be positive")
        self.regularization = float(regularization)
        self.prior = prior
        self.solver = solver

    # ------------------------------------------------------------------
    def _prior_vector(self, problem: EstimationProblem) -> np.ndarray:
        if isinstance(self.prior, str):
            return make_prior(problem, self.prior)
        prior = np.asarray(self.prior, dtype=float)
        if prior.shape != (problem.num_pairs,):
            raise EstimationError(
                f"prior has shape {prior.shape}, expected ({problem.num_pairs},)"
            )
        if np.any(prior < 0):
            raise EstimationError("prior demands must be non-negative")
        return prior

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Solve the regularised non-negative least-squares problem."""
        prior = self._prior_vector(problem)
        routing = problem.routing.matrix
        snapshot = problem.snapshot
        weight = 1.0 / np.sqrt(self.regularization)
        stacked_matrix = np.vstack([routing, weight * np.eye(problem.num_pairs)])
        stacked_rhs = np.concatenate([snapshot, weight * prior])
        solution = nnls(stacked_matrix, stacked_rhs, prefer=self.solver)
        values = solution.x
        return self._result(
            problem,
            values,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            link_residual=float(np.linalg.norm(routing @ values - snapshot)),
            prior_distance=float(np.linalg.norm(values - prior)),
            solver_iterations=solution.iterations,
            solver_converged=solution.converged,
        )

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def _prior_series(self, problem: EstimationProblem) -> Optional[np.ndarray]:
        """Per-snapshot priors ``(K, P)``, or ``None`` when only the generic
        per-snapshot loop can reproduce them (the WCB prior solves LPs)."""
        num_snapshots = problem.series.shape[0]
        if not isinstance(self.prior, str):
            prior = self._prior_vector(problem)
            return np.tile(prior, (num_snapshots, 1))
        kind = self.prior.lower()
        if kind == "gravity":
            return gravity_vector_series(problem)
        if kind == "uniform":
            if problem.origin_totals_series is not None:
                totals = problem.origin_totals_series.sum(axis=1)
            elif problem.origin_totals is not None:
                totals = np.full(num_snapshots, float(sum(problem.origin_totals.values())))
            else:
                mean_length = float(problem.routing.path_lengths().mean())
                if mean_length <= 0:
                    raise EstimationError(
                        "routing matrix has empty paths; cannot infer total traffic"
                    )
                totals = problem.series.sum(axis=1) / mean_length
            return np.repeat(totals[:, None] / problem.num_pairs, problem.num_pairs, axis=1)
        return None

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Factor the normal equations once and solve every snapshot.

        In normal-equations form the regularised problem has the positive
        definite Hessian ``R'R + sigma^{-2} I`` shared by every snapshot, so
        one factorisation serves all ``K`` right-hand sides:
        :func:`repro.optimize.nnls.nnls_normal_equations_batch` inverts it
        once and enforces non-negativity per snapshot with warm-started
        block principal pivoting.  Results match the per-snapshot NNLS loop
        (both solve the same strictly convex program exactly).
        """
        priors = self._prior_series(problem)
        if priors is None:
            return super().estimate_series(problem)
        series = problem.series
        routing = problem.routing
        num_pairs = problem.num_pairs
        weight_sq = 1.0 / self.regularization
        gram = routing.gram() + weight_sq * np.eye(num_pairs)
        rhs = routing.rmatmat(series.T) + weight_sq * priors.T  # (P, K)
        solutions, converged = nnls_normal_equations_batch(gram, rhs)
        estimates = solutions.T
        fallback = np.flatnonzero(~converged)
        if fallback.size:  # pragma: no cover - PD gram, pivoting always converges
            weight = np.sqrt(weight_sq)
            stacked_matrix = np.vstack([routing.matrix, weight * np.eye(num_pairs)])
            for index in fallback:
                stacked_rhs = np.concatenate([series[index], weight * priors[index]])
                estimates[index] = nnls(stacked_matrix, stacked_rhs, prefer=self.solver).x
        return self._series_result(
            problem,
            estimates,
            batched=True,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            num_snapshots=int(series.shape[0]),
            num_fallback=int(fallback.size),
        )
