"""Traffic-matrix estimation methods — the paper's core comparison.

Every method implements the :class:`~repro.estimation.base.Estimator`
interface and consumes an :class:`~repro.estimation.base.EstimationProblem`:

* :class:`~repro.estimation.gravity.SimpleGravityEstimator` /
  :class:`~repro.estimation.gravity.GeneralizedGravityEstimator` — gravity
  models (Section 4.1);
* :class:`~repro.estimation.kruithof.KruithofEstimator` /
  :class:`~repro.estimation.kruithof.KLProjectionEstimator` — Kruithof's
  projection and Krupp's generalisation (Section 4.2.1);
* :class:`~repro.estimation.entropy.EntropyEstimator` — the
  entropy-regularised approach of Zhang et al. (Section 4.2.1);
* :class:`~repro.estimation.bayesian.BayesianEstimator` — regularised
  least squares / MAP estimation (Section 4.2.3);
* :class:`~repro.estimation.vardi.VardiEstimator` — Poisson moment matching
  on a link-load time series (Section 4.2.2);
* :class:`~repro.estimation.cao.CaoEstimator` — the generalised-linear-model
  pseudo-EM the paper lists as future work;
* :class:`~repro.estimation.fanout.FanoutEstimator` — constant-fanout
  estimation over a measurement window (Section 4.2.4);
* :class:`~repro.estimation.worstcase.WorstCaseBoundsEstimator` — LP bounds
  and the WCB midpoint prior (Section 4.3.1);
* :mod:`~repro.estimation.partial` — combining tomography with direct
  demand measurements (Section 5.3.6);
* :class:`~repro.estimation.tomogravity.TomogravityEstimator` — the
  gravity-prior + regularised-fit pipeline in one call;
* :class:`~repro.estimation.sharded.ShardedEstimator` — hierarchical
  region-sharded estimation (coarse inter-region matrix + parallel
  per-region shards + global reconciliation) for continental-scale
  backbones.

Every method registers itself by name in :mod:`repro.estimation.registry`
(``register`` / ``get_estimator`` / ``available_estimators``), so runners
and sweeps can compose method sets without hardcoding classes, and every
method supports the batched ``estimate_series`` path (with vectorised or
factor-once overrides where the mathematics allows).
"""

from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.bayesian import BayesianEstimator
from repro.estimation.cao import CaoEstimator
from repro.estimation.entropy import EntropyEstimator
from repro.estimation.fanout import FanoutEstimator
from repro.estimation.gravity import (
    GeneralizedGravityEstimator,
    SimpleGravityEstimator,
    gravity_vector,
    gravity_vector_series,
)
from repro.estimation.kruithof import KLProjectionEstimator, KruithofEstimator
from repro.estimation.partial import (
    DirectMeasurementCombiner,
    greedy_measurement_selection,
    largest_demand_selection,
    reduce_problem,
)
from repro.estimation.priors import (
    gravity_prior,
    make_prior,
    uniform_prior,
    worst_case_bound_prior,
)
from repro.estimation.registry import available_estimators, get_estimator, register
from repro.estimation.sharded import ShardedEstimator
from repro.estimation.tomogravity import TomogravityEstimator, sweep_regularization
from repro.estimation.vardi import VardiEstimator, link_load_moments
from repro.estimation.worstcase import (
    DemandBounds,
    WorstCaseBoundsEstimator,
    select_large_pairs,
    worst_case_bounds,
)

# The supervisor lives in repro.resilience but registers like any other
# method; importing it here keeps "supervised" visible to the registry.
from repro.resilience.supervisor import SupervisedEstimator

__all__ = [
    "EstimationProblem",
    "EstimationResult",
    "SeriesEstimationResult",
    "Estimator",
    "register",
    "get_estimator",
    "available_estimators",
    "SimpleGravityEstimator",
    "GeneralizedGravityEstimator",
    "gravity_vector",
    "gravity_vector_series",
    "KruithofEstimator",
    "KLProjectionEstimator",
    "EntropyEstimator",
    "BayesianEstimator",
    "VardiEstimator",
    "link_load_moments",
    "CaoEstimator",
    "FanoutEstimator",
    "WorstCaseBoundsEstimator",
    "DemandBounds",
    "worst_case_bounds",
    "select_large_pairs",
    "DirectMeasurementCombiner",
    "reduce_problem",
    "greedy_measurement_selection",
    "largest_demand_selection",
    "TomogravityEstimator",
    "sweep_regularization",
    "ShardedEstimator",
    "SupervisedEstimator",
    "uniform_prior",
    "gravity_prior",
    "worst_case_bound_prior",
    "make_prior",
]
