"""Cao et al. style estimation under a generalised linear model.

The paper discusses (Section 4.2.2) but does not evaluate the method of Cao,
Davis, Vander Wiel and Yu, which generalises Vardi's Poisson assumption to

    ``s_p ~ N(lambda_p, phi * lambda_p ** c)``

with independent demands and scaling parameters ``phi`` and ``c``.  The
paper's conclusion explicitly lists implementing this method as missing from
its comparison; this module supplies it so the comparison can be completed.

For a fixed exponent ``c``, the estimator runs the pseudo-EM iteration of
Cao et al.:

* **E-step** — given the current intensities ``lambda`` (and the variances
  ``phi * lambda ** c`` they imply), compute the conditional expectation of
  each demand snapshot given the observed link loads under the joint
  Gaussian model:

  ``E[s[k] | t[k]] = lambda + Sigma R' (R Sigma R')^+ (t[k] - R lambda)``

  where ``Sigma = diag(phi * lambda ** c)``;

* **M-step** — update ``lambda`` to the average of the conditional
  expectations (projected onto the non-negative orthant) and, optionally,
  re-fit ``phi`` by moment matching of the link-load covariance.

The iteration is a fixed-point scheme rather than an exact EM (the true
M-step for ``c != 1`` has no closed form), which is why Cao et al. call it
pseudo-EM; it inherits the same practical weakness the paper demonstrates
for Vardi — the estimate depends on a link-load covariance that converges
slowly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.priors import make_prior
from repro.estimation.registry import register
from repro.estimation.vardi import link_load_moments
from repro.optimize.nnls import nnls

__all__ = ["CaoEstimator"]


@register()
class CaoEstimator(Estimator):
    """Pseudo-EM estimation under ``s_p ~ N(lambda_p, phi lambda_p^c)``.

    Parameters
    ----------
    c:
        Fixed power-law exponent of the mean-variance relation (the paper's
        data suggests values around 1.5-1.6; ``c = 1`` with ``phi`` free
        approximates the Poisson model).
    phi:
        Initial scale of the mean-variance relation; refined during the
        iteration when ``estimate_phi`` is ``True``.
    estimate_phi:
        Re-fit ``phi`` after every M-step by matching the total variance of
        the observed link loads.
    max_iterations:
        Number of EM sweeps.
    tolerance:
        Relative change of ``lambda`` below which the iteration stops.
    prior:
        Prior used to initialise ``lambda`` (a vector or a prior name).
    """

    name = "cao"

    def __init__(
        self,
        c: float = 1.5,
        phi: float = 1.0,
        estimate_phi: bool = True,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        prior: str | np.ndarray = "gravity",
    ) -> None:
        if c < 0:
            raise EstimationError("the exponent c must be non-negative")
        if phi <= 0:
            raise EstimationError("phi must be positive")
        if max_iterations <= 0:
            raise EstimationError("max_iterations must be positive")
        self.c = float(c)
        self.phi = float(phi)
        self.estimate_phi = bool(estimate_phi)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.prior = prior

    # ------------------------------------------------------------------
    def _initial_lambda(self, problem: EstimationProblem, mean_loads: np.ndarray) -> np.ndarray:
        if isinstance(self.prior, str):
            try:
                start = make_prior(problem, self.prior)
            # Probing whether the named prior is constructible; the
            # documented nnls fallback below is the designed default.
            except EstimationError:  # reprolint: allow[fault-handling]
                start = None
        else:
            start = np.asarray(self.prior, dtype=float)
            if start.shape != (problem.num_pairs,):
                raise EstimationError(
                    f"prior has shape {start.shape}, expected ({problem.num_pairs},)"
                )
        if start is None or not np.any(start > 0):
            # Fall back to the non-negative first-moment fit.
            start = nnls(problem.routing.matrix, mean_loads).x
        return np.maximum(start, 0.0)

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Run the pseudo-EM iteration on the problem's link-load series."""
        series = problem.series
        mean_loads, covariance = link_load_moments(series)
        routing = problem.routing.matrix
        num_snapshots = series.shape[0]

        lam = self._initial_lambda(problem, mean_loads)
        phi = self.phi
        floor = max(float(lam[lam > 0].min(initial=1.0)) * 1e-6, 1e-9)
        iterations_used = 0
        for iterations_used in range(1, self.max_iterations + 1):
            variances = phi * np.power(np.maximum(lam, floor), self.c)
            sigma_rt = variances[:, None] * routing.T
            load_cov = routing @ sigma_rt
            load_cov_inv = np.linalg.pinv(load_cov, rcond=1e-10)
            gain = sigma_rt @ load_cov_inv

            residuals = series - (routing @ lam)[None, :]
            conditional = lam[None, :] + residuals @ gain.T
            new_lam = np.maximum(conditional.mean(axis=0), 0.0)

            if self.estimate_phi:
                # Match the total variance of the observed link loads.
                model_trace = float(np.trace(routing @ (np.power(np.maximum(new_lam, floor), self.c)[:, None] * routing.T)))
                observed_trace = float(np.trace(covariance))
                if model_trace > 0 and observed_trace > 0:
                    phi = observed_trace / model_trace

            change = float(np.linalg.norm(new_lam - lam) / max(np.linalg.norm(lam), 1e-12))
            lam = new_lam
            if change < self.tolerance:
                break

        return self._result(
            problem,
            lam,
            c=self.c,
            phi=phi,
            iterations=iterations_used,
            num_snapshots=num_snapshots,
            first_moment_residual=float(np.linalg.norm(routing @ lam - mean_loads)),
        )

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """One window-level pseudo-EM fit, reported for every snapshot.

        Like Vardi, the method estimates the stationary intensities of the
        window, so the batch repeats the window estimate per snapshot.
        """
        result = self.estimate(problem)
        estimates = np.tile(result.vector, (problem.num_snapshots, 1))
        return self._series_result(
            problem, estimates, batched=True, window_estimate=True, **result.diagnostics
        )
