"""Estimator registry: estimation methods addressable by name.

Every estimation method in :mod:`repro.estimation` registers itself under a
short, stable name (``"gravity"``, ``"bayesian"``, ``"vardi"``, ...), which
lets runners, sweeps and configuration files compose method sets without
importing — or even knowing about — the concrete classes:

* :func:`register` — class decorator used by the method modules;
* :func:`get_estimator` — instantiate a method by name with keyword
  parameters forwarded to its constructor;
* :func:`available_estimators` — the sorted tuple of registered names.

Adding a new estimator therefore takes three steps: subclass
:class:`~repro.estimation.base.Estimator`, decorate it with
``@register()``, and import the module from :mod:`repro.estimation` so
registration runs.  Nothing in the experiment runners needs to change; the
new method automatically shows up in :func:`available_estimators`,
:func:`repro.evaluation.experiments.method_comparison` (via custom specs)
and :meth:`repro.datasets.scenarios.Scenario.sweep`.
"""

from __future__ import annotations

from typing import Callable, Optional, Type

from repro.errors import EstimationError
from repro.estimation.base import Estimator

__all__ = ["register", "get_estimator", "available_estimators"]

_REGISTRY: dict[str, Type[Estimator]] = {}


def register(name: Optional[str] = None) -> Callable[[Type[Estimator]], Type[Estimator]]:
    """Class decorator registering an :class:`Estimator` subclass by name.

    Parameters
    ----------
    name:
        Registry key; defaults to the class's ``name`` attribute.  Names
        must be unique — re-registering a different class under an existing
        name raises :class:`~repro.errors.EstimationError` (re-importing the
        same class is a no-op, so module reloads stay safe).
    """

    def decorator(cls: Type[Estimator]) -> Type[Estimator]:
        if not (isinstance(cls, type) and issubclass(cls, Estimator)):
            raise EstimationError(f"only Estimator subclasses can be registered, got {cls!r}")
        key = name if name is not None else getattr(cls, "name", None)
        if not key or not isinstance(key, str):
            raise EstimationError(f"estimator {cls.__name__} has no usable registry name")
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise EstimationError(
                f"estimator name {key!r} already registered by {existing.__name__}"
            )
        _REGISTRY[key] = cls
        return cls

    return decorator


def _ensure_registered() -> None:
    """Import the estimation package so every method module has registered."""
    import repro.estimation  # noqa: F401  (import side effect: registration)


def available_estimators() -> tuple[str, ...]:
    """Sorted names of every registered estimation method."""
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


def get_estimator(name: str, **params) -> Estimator:
    """Instantiate the estimator registered under ``name``.

    Keyword arguments are forwarded to the estimator's constructor, so
    ``get_estimator("bayesian", regularization=100.0, prior="wcb")`` is
    equivalent to constructing the class directly.
    """
    _ensure_registered()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise EstimationError(
            f"unknown estimator {name!r}; available: {', '.join(available_estimators())}"
        ) from None
    return cls(**params)
