"""Fanout estimation from a time series of link loads (paper Section 4.2.4).

The fanout formulation writes every demand as ``s_nm[k] = alpha_nm *
t_e(n)[k]``: the fraction ``alpha_nm`` of the traffic entering the network
at ``n`` that leaves at ``m``, times the (observable) total ingress traffic
of ``n``.  Section 5.2.2 of the paper shows that fanouts are much more
stable over the day than the demands themselves, which motivates estimating
a *single* fanout vector from a whole window of measurements:

    minimise ``sum_k || R S[k] alpha - t[k] ||_2^2``
    subject to ``sum_m alpha_nm = 1`` for every origin ``n``,  ``alpha >= 0``

where ``S[k] = diag(t_e(origin(p))[k])`` converts fanouts into demands for
snapshot ``k``.  Already for window length 3 the stacked system becomes
overdetermined; the paper's Figure 11 shows the error dropping quickly with
the first few snapshots and then levelling out.

:class:`FanoutEstimator` solves this constrained least-squares problem with
:func:`repro.optimize.qp.constrained_nnls` and reports, as its point
estimate, the window-average demands ``mean_k t_e(n)[k] * alpha_nm`` (the
quantity the paper plots in Figure 10).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.registry import register
from repro.optimize.qp import constrained_nnls

__all__ = ["FanoutEstimator"]


@register()
class FanoutEstimator(Estimator):
    """Constant-fanout estimation over a window of link-load measurements.

    Parameters
    ----------
    window_length:
        Number of snapshots (from the start of the problem's series) to use;
        ``None`` uses the full series.
    solver:
        NNLS solver preference forwarded to the constrained solver.
    """

    name = "fanout"

    def __init__(self, window_length: Optional[int] = None, solver: str = "auto") -> None:
        if window_length is not None and window_length < 1:
            raise EstimationError("window_length must be at least 1")
        self.window_length = window_length
        self.solver = solver

    # ------------------------------------------------------------------
    def _origin_totals_series(
        self, problem: EstimationProblem, num_snapshots: int, origins: list[str]
    ) -> np.ndarray:
        """Per-snapshot ingress totals per origin, shape ``(K, N_origins)``."""
        if problem.origin_totals_series is not None:
            series = np.asarray(problem.origin_totals_series, dtype=float)
            if series.shape[0] < num_snapshots:
                raise EstimationError(
                    "origin_totals_series has fewer snapshots than the link-load series"
                )
            name_to_col = {name: i for i, name in enumerate(problem.origin_names)}
            missing = [origin for origin in origins if origin not in name_to_col]
            if missing:
                raise EstimationError(f"origin totals series missing origins {missing}")
            columns = [name_to_col[origin] for origin in origins]
            return series[:num_snapshots, columns]
        if problem.origin_totals is not None:
            row = np.array([problem.origin_totals.get(origin, 0.0) for origin in origins])
            return np.tile(row, (num_snapshots, 1))
        raise EstimationError(
            "fanout estimation needs origin ingress totals "
            "(origin_totals_series or origin_totals)"
        )

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Fit a single fanout vector to the measurement window."""
        if problem.link_load_series is None:
            raise EstimationError("fanout estimation requires a link-load time series")
        series = problem.link_load_series
        num_snapshots = series.shape[0]
        if self.window_length is not None:
            if self.window_length > num_snapshots:
                raise EstimationError(
                    f"window_length {self.window_length} exceeds available "
                    f"{num_snapshots} snapshots"
                )
            num_snapshots = self.window_length
            series = series[:num_snapshots]

        pairs = problem.pairs
        origins = list(dict.fromkeys(pair.origin for pair in pairs))
        origin_index = {origin: idx for idx, origin in enumerate(origins)}
        ingress = self._origin_totals_series(problem, num_snapshots, origins)

        routing = problem.routing.matrix
        num_links, num_pairs = routing.shape
        pair_origin_col = np.array([origin_index[pair.origin] for pair in pairs])

        # Stack R * diag(t_e(origin(p))[k]) for every snapshot in the window.
        blocks = np.empty((num_snapshots * num_links, num_pairs))
        rhs = np.empty(num_snapshots * num_links)
        for k in range(num_snapshots):
            scaling = ingress[k, pair_origin_col]
            blocks[k * num_links : (k + 1) * num_links] = routing * scaling[None, :]
            rhs[k * num_links : (k + 1) * num_links] = series[k]

        # One equality row per origin: its fanouts sum to one.
        equality = np.zeros((len(origins), num_pairs))
        for col, pair in enumerate(pairs):
            equality[origin_index[pair.origin], col] = 1.0
        targets = np.ones(len(origins))

        scale = float(np.abs(blocks).max(initial=1.0))
        solution = constrained_nnls(
            blocks / scale,
            rhs / scale,
            equality,
            targets,
            solver=self.solver,
        )
        fanouts = np.maximum(solution.x, 0.0)

        # Point estimate: window-average demands implied by the fanouts.
        mean_ingress = ingress.mean(axis=0)
        values = fanouts * mean_ingress[pair_origin_col]
        return self._result(
            problem,
            values,
            fanouts=fanouts,
            window_length=num_snapshots,
            equality_violation=solution.equality_violation,
            residual_norm=solution.residual_norm,
        )

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Fit the fanouts once, then scale by every snapshot's ingress totals.

        This is the fanout model's native batch form: ``s_nm[k] = alpha_nm *
        t_e(n)[k]``, so one constrained fit serves the whole series and the
        per-snapshot estimates are a single broadcast multiply.
        """
        result = self.estimate(problem)
        fanouts = np.asarray(result.diagnostics["fanouts"], dtype=float)
        pairs = problem.pairs
        origins = list(dict.fromkeys(pair.origin for pair in pairs))
        origin_index = {origin: idx for idx, origin in enumerate(origins)}
        pair_origin_col = np.array([origin_index[pair.origin] for pair in pairs])
        num_snapshots = problem.series.shape[0]
        ingress = self._origin_totals_series(problem, num_snapshots, origins)
        estimates = fanouts[None, :] * ingress[:, pair_origin_col]
        return self._series_result(
            problem,
            estimates,
            batched=True,
            window_length=result.diagnostics["window_length"],
            equality_violation=result.diagnostics["equality_violation"],
            residual_norm=result.diagnostics["residual_norm"],
        )
