"""Hierarchical region-sharded estimation for continental-scale backbones.

The paper evaluates its methods on 12- and 25-PoP subnetworks that were
*extracted from* a global backbone by region ("all links and demands that do
not have both source and destination inside the specific region" are
dropped).  This module turns that manual decomposition into an estimator:
instead of solving one ``links x N(N-1)`` inverse problem, it

1. partitions the backbone into PoP-level regions — the nodes' own region
   labels when present (the paper's partition), otherwise the automatic
   metric-space partitioner (:func:`repro.topology.regions.partition_regions`);
2. estimates the *inter-region* aggregate matrix on the collapsed region
   graph (:func:`repro.topology.regions.aggregate_to_regions`), whose
   dimensions are tiny (``k`` regions instead of ``N`` nodes);
3. estimates each region's *intra* matrix independently on the region's
   rows and columns of the original routing matrix, with link loads
   corrected for the traffic the other shards explain — shards are
   embarrassingly parallel and fan out over the process pool;
4. stitches the shards together and reconciles the full vector against the
   *global* link loads with a constrained iterative-scaling pass
   (:func:`repro.optimize.ipf.generalized_iterative_scaling`), so the final
   estimate respects every original link observation, not just its shard's.

Any registered estimation method can serve as the shard solver, so
``ShardedEstimator(base="tomogravity")`` is the hierarchical counterpart of
the paper's best method.  The estimator registers itself under
``"sharded"``; runners, ``method_comparison`` and ``Scenario.sweep`` can use
it like any flat method.

Why this scales: with ``k`` balanced regions the shard problems together
hold ``~N^2 / k`` unknowns against the flat ``N^2``, and the per-shard
solves touch only their region's rows of the routing matrix.  The accuracy
cost is confined to the inter-region block, which the paper's fanout
analysis shows is the stable, gravity-like part of the traffic.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from repro import telemetry
from repro.errors import EstimationError, SolverError, TopologyError
from repro.estimation.base import EstimationProblem, EstimationResult, Estimator
from repro.estimation.gravity import gravity_vector
from repro.estimation.registry import get_estimator, register
from repro.optimize.ipf import generalized_iterative_scaling
from repro.parallel import (
    effective_jobs,
    release_payload,
    resolve_payload,
    run_supervised_tasks,
    share_payload,
)
from repro.resilience.report import (
    DegradationEvent,
    DegradationReport,
    FailureReason,
)
from repro.routing.routing_matrix import RoutingMatrix, build_routing_matrix
from repro.topology.network import Network
from repro.topology.regions import aggregate_to_regions, partition_regions

__all__ = ["ShardedEstimator"]


def _solve_shard_pooled(
    index: int, payload_ref: Any
) -> tuple[int, np.ndarray, Optional[FailureReason]]:
    """Pool worker: solve one shard problem from the shared payload.

    The payload — ``(base_estimator, shard_problems, shard_priors)`` — is
    registered once via :func:`repro.parallel.share_payload`, so the
    routing-matrix shards are inherited by fork (or shipped once per
    worker under spawn) instead of being re-pickled into every task.
    The serial path calls this helper with the payload tuple itself
    (:func:`~repro.parallel.resolve_payload` passes non-references
    through), so both paths share one code path by construction.

    A failing shard degrades to its prior and *reports it*: the returned
    :class:`~repro.resilience.report.FailureReason` is ``None`` only on a
    clean solve.  The warning is emitted by the parent (worker warnings do
    not propagate across process boundaries).
    """
    base, problems, priors = resolve_payload(payload_ref)
    try:
        return index, base.estimate(problems[index]).vector, None
    except (EstimationError, SolverError) as exc:  # reprolint: allow[fault-handling]
        # Reported out-of-band: the parent warns and records the reason in
        # the result diagnostics (see ShardedEstimator._solve_shards).
        reason = FailureReason.from_exception(exc, spec=f"shard {index}", stage="shard")
        return index, priors[index], reason


@register()
class ShardedEstimator(Estimator):
    """Hierarchical estimation: coarse inter-region + per-region shards.

    Parameters
    ----------
    base:
        Shard solver — a registry name (default ``"tomogravity"``) or an
        :class:`~repro.estimation.base.Estimator` instance.  The same
        solver serves the coarse inter-region problem and every shard.
    base_params:
        Constructor keywords when ``base`` is a registry name.
    partitioner:
        Optional callable ``network -> {node_name: region_label}``
        overriding the region resolution (for custom partitions).
    num_regions:
        Force this many automatically partitioned regions, ignoring any
        node labels; default ``None`` uses the nodes' own region labels
        when present and :func:`~repro.topology.regions.default_num_regions`
        otherwise.
    n_jobs:
        Process-pool width for the shard solves (clamped by
        :func:`repro.parallel.effective_jobs`; 1 keeps everything serial).
    shard_timeout:
        Per-shard wall-clock allowance (seconds) on the pooled path; a
        shard exceeding it is resubmitted and, failing that, re-run
        serially in the parent (``None`` disables the check).  Forwarded
        to :func:`repro.parallel.run_supervised_tasks`.
    max_resubmissions:
        How many fresh pools a crashed/timed-out shard batch may get
        before the parent re-runs the remainder serially.
    reconcile:
        Run the final iterative-scaling pass projecting the stitched
        vector onto the global link-load constraints (default ``True``).
    reconcile_iterations / reconcile_tolerance:
        Budget of that pass (forwarded to
        :func:`~repro.optimize.ipf.generalized_iterative_scaling`).
    seed:
        Seed of the automatic partitioner.
    """

    name = "sharded"

    def __init__(
        self,
        base: Union[str, Estimator] = "tomogravity",
        base_params: Optional[Mapping[str, Any]] = None,
        partitioner: Optional[Callable[[Network], Mapping[str, str]]] = None,
        num_regions: Optional[int] = None,
        n_jobs: int = 1,
        shard_timeout: Optional[float] = None,
        max_resubmissions: int = 1,
        reconcile: bool = True,
        reconcile_iterations: int = 200,
        reconcile_tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if isinstance(base, str):
            self._base = get_estimator(base, **dict(base_params or {}))
        else:
            if base_params:
                raise EstimationError("base_params only applies when base is a registry name")
            self._base = base
        self.partitioner = partitioner
        self.num_regions = num_regions
        self.n_jobs = n_jobs
        self.shard_timeout = shard_timeout
        self.max_resubmissions = max_resubmissions
        self.reconcile = reconcile
        self.reconcile_iterations = reconcile_iterations
        self.reconcile_tolerance = reconcile_tolerance
        self.seed = seed

    # ------------------------------------------------------------------
    def _resolve_regions(self, network: Network) -> dict[str, str]:
        """Node-to-region assignment: explicit partitioner, node labels, or auto."""
        if self.partitioner is not None:
            assignment = dict(self.partitioner(network))
            missing = [node.name for node in network.nodes if node.name not in assignment]
            if missing:
                raise EstimationError(f"partitioner left nodes unassigned: {missing[:5]}")
            return assignment
        if self.num_regions is None:
            labels = {node.name: node.region for node in network.nodes}
            if all(region is not None for region in labels.values()):
                return labels
        return partition_regions(network, self.num_regions, seed=self.seed)

    def _flat_result(self, problem: EstimationProblem, **extra: Any) -> EstimationResult:
        """Single-region degenerate case: the base estimator *is* the answer."""
        result = self._base.estimate(problem)
        diagnostics = dict(result.diagnostics)
        diagnostics.update(extra)
        diagnostics.update(num_regions=1, base_method=self._base.name)
        return EstimationResult(
            estimate=result.estimate, method=self.name, diagnostics=diagnostics
        )

    # ------------------------------------------------------------------
    def _pair_regions(
        self, problem: EstimationProblem, region_of: Mapping[str, str]
    ) -> tuple[list[str], np.ndarray, np.ndarray]:
        """Per-pair origin/destination region ids (vectorised classification).

        Returns ``(regions, origin_region, destination_region)`` where the
        arrays hold, for every pair column, the index of its endpoint's
        region within the sorted ``regions`` list.  Built from the
        problem's cached pair-position index arrays, so classifying even
        hundreds of thousands of pairs is a couple of fancy-indexing
        operations.
        """
        origins, destinations, origin_cols, destination_cols = problem.pair_positions()
        regions = sorted(set(region_of.values()))
        region_position = {label: position for position, label in enumerate(regions)}
        origin_region = np.asarray(
            [region_position[region_of[name]] for name in origins], dtype=np.intp
        )[origin_cols]
        destination_region = np.asarray(
            [region_position[region_of[name]] for name in destinations], dtype=np.intp
        )[destination_cols]
        return regions, origin_region, destination_region

    def _prior_vector(self, problem: EstimationProblem) -> np.ndarray:
        """Gravity prior when edge totals exist, uniform otherwise."""
        try:
            return np.asarray(gravity_vector(problem), dtype=float)
        except EstimationError:  # reprolint: allow[fault-handling]
            # Not a degradation: problems without edge totals simply have
            # no gravity prior, and uniform is the documented default.
            total = problem.total_traffic()
            return np.full(problem.num_pairs, total / max(problem.num_pairs, 1))

    def _inter_region_vector(
        self,
        problem: EstimationProblem,
        region_of: Mapping[str, str],
        inter_cols: np.ndarray,
        prior: np.ndarray,
        diagnostics: dict[str, Any],
    ) -> np.ndarray:
        """Estimate the aggregate inter-region matrix and disaggregate it.

        Solves the collapsed region graph with the base estimator —
        aggregated cross-region link loads as observations, prior-derived
        region totals as the gravity inputs — then spreads every region-pair
        aggregate over its member node pairs proportionally to the prior.
        Returns a full-length vector that is zero on intra-region pairs.
        """
        network = problem.routing.network
        region_net = aggregate_to_regions(network, region_of)
        region_routing = build_routing_matrix(region_net)

        # Aggregate the observed loads of original cross-region links onto
        # the collapsed links they merged into.
        link_by_name = {link.name: link for link in network.links}
        region_loads = np.zeros(region_routing.num_links)
        region_row = {name: row for row, name in enumerate(region_routing.link_names)}
        snapshot = problem.snapshot
        for row, link_name in enumerate(problem.routing.link_names):
            link = link_by_name[link_name]
            source_region = region_of[link.source]
            target_region = region_of[link.target]
            if source_region == target_region:
                continue
            target_row = region_row.get(f"{source_region}->{target_region}")
            if target_row is not None:
                region_loads[target_row] += snapshot[row]

        # Region totals and per-block prior mass, vectorised over the
        # (possibly hundreds of thousands of) inter-region pairs.
        regions, origin_region, destination_region = self._pair_regions(problem, region_of)
        num_regions = len(regions)
        region_position = {label: position for position, label in enumerate(regions)}
        block_id = (
            origin_region[inter_cols] * num_regions + destination_region[inter_cols]
        )
        inter_prior = prior[inter_cols]
        origin_totals = np.bincount(
            origin_region[inter_cols], weights=inter_prior, minlength=num_regions
        )
        destination_totals = np.bincount(
            destination_region[inter_cols], weights=inter_prior, minlength=num_regions
        )
        block_prior_sum = np.bincount(
            block_id, weights=inter_prior, minlength=num_regions * num_regions
        )
        block_count = np.bincount(block_id, minlength=num_regions * num_regions)

        coarse_problem = EstimationProblem(
            routing=region_routing,
            link_loads=region_loads,
            origin_totals={
                region: float(origin_totals[region_position[region]])
                for region in (pair.origin for pair in region_routing.pairs)
            },
            destination_totals={
                region: float(destination_totals[region_position[region]])
                for region in (pair.destination for pair in region_routing.pairs)
            },
        )
        block_aggregate = block_prior_sum.copy()
        try:
            coarse = self._base.estimate(coarse_problem)
            for region_pair, value in zip(region_routing.pairs, coarse.vector):
                row = region_position[region_pair.origin]
                col = region_position[region_pair.destination]
                block_aggregate[row * num_regions + col] = float(value)
            diagnostics["inter_method"] = self._base.name
        except (EstimationError, SolverError) as exc:
            # Degenerate coarse problems (e.g. a region with no egress
            # totals) fall back to the prior aggregates — loudly.
            reason = FailureReason.from_exception(
                exc, spec="inter-region", stage="estimate"
            )
            warnings.warn(
                "sharded estimation: inter-region solve failed, using the "
                f"prior aggregates ({reason.describe()})",
                RuntimeWarning,
                stacklevel=2,
            )
            diagnostics["inter_method"] = "prior-fallback"
            diagnostics["inter_fallback"] = reason.describe()
            diagnostics.setdefault("_degradation_events", []).append(
                DegradationEvent(
                    stage="inter-region",
                    kind=reason.exception,
                    detail=reason.describe(),
                )
            )

        # Disaggregate each region-pair aggregate over its member node
        # pairs proportionally to the prior (even split when the prior
        # carries no mass for the block).
        values = np.zeros(problem.num_pairs)
        denominator = block_prior_sum[block_id]
        even_split = block_aggregate[block_id] / np.maximum(block_count[block_id], 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            proportional = block_aggregate[block_id] * inter_prior / denominator
        values[inter_cols] = np.where(denominator > 0, proportional, even_split)
        return values

    def _shard_problems(
        self,
        problem: EstimationProblem,
        region_of: Mapping[str, str],
        intra_cols: dict[str, np.ndarray],
        baseline: np.ndarray,
        prior: np.ndarray,
    ) -> tuple[list[str], list[EstimationProblem], list[np.ndarray]]:
        """Build one reduced problem per region.

        The shard's observations are the residual loads ``t - R s0 + R_r
        g_r`` restricted to the rows its columns touch: what remains of
        each link after the *other* shards' baseline traffic is explained,
        plus the shard's own prior contribution so the base estimator sees
        a consistent right-hand side.  Rows and columns are sliced from
        the original routing matrix — never rebuilt — so shard routing is
        exactly consistent with the global observations.
        """
        predicted = problem.routing.matvec(baseline)
        snapshot = problem.snapshot
        sparse = problem.routing.backend_kind == "sparse"
        pairs = problem.pairs

        # Per-node baseline egress/ingress of inter-region traffic, used to
        # correct the shard's edge totals (vectorised over all pairs).
        origins, destinations, origin_cols, destination_cols = problem.pair_positions()
        _, origin_region, destination_region = self._pair_regions(problem, region_of)
        inter_mask = origin_region != destination_region
        out_by_origin = np.bincount(
            origin_cols[inter_mask], weights=baseline[inter_mask], minlength=len(origins)
        )
        in_by_destination = np.bincount(
            destination_cols[inter_mask],
            weights=baseline[inter_mask],
            minlength=len(destinations),
        )
        inter_out = {name: float(out_by_origin[i]) for i, name in enumerate(origins)}
        inter_in = {name: float(in_by_destination[i]) for i, name in enumerate(destinations)}

        names: list[str] = []
        problems: list[EstimationProblem] = []
        priors: list[np.ndarray] = []
        for region, cols in intra_cols.items():
            sub_backend = problem.routing.select_pairs(cols)
            if sparse:
                sub_matrix = sub_backend.raw
                rows = np.flatnonzero(sub_matrix.getnnz(axis=1) > 0)
                shard_matrix = sub_matrix[rows]
            else:
                # Densifying here is the point: the caller asked for the
                # dense backend, and each shard is a small column slice.
                sub_matrix = sub_backend.toarray()  # reprolint: allow[sparse-safety]
                rows = np.flatnonzero((sub_matrix != 0).any(axis=1))
                shard_matrix = sub_matrix[rows]
            if rows.size == 0:
                continue
            own = sub_backend.matvec(prior[cols])
            residual = np.maximum(snapshot - predicted + own, 0.0)[rows]
            shard_routing = RoutingMatrix(
                shard_matrix,
                link_names=[problem.routing.link_names[row] for row in rows],
                pairs=[pairs[col] for col in cols],
                network=None,
                backend="sparse" if sparse else "dense",
            )
            origin_totals = None
            destination_totals = None
            if problem.origin_totals is not None:
                origin_totals = {
                    name: max(0.0, problem.origin_totals.get(name, 0.0) - inter_out.get(name, 0.0))
                    for name in {pair.origin for pair in shard_routing.pairs}
                }
            if problem.destination_totals is not None:
                destination_totals = {
                    name: max(
                        0.0,
                        problem.destination_totals.get(name, 0.0) - inter_in.get(name, 0.0),
                    )
                    for name in {pair.destination for pair in shard_routing.pairs}
                }
            names.append(region)
            problems.append(
                EstimationProblem(
                    routing=shard_routing,
                    link_loads=residual,
                    origin_totals=origin_totals,
                    destination_totals=destination_totals,
                )
            )
            priors.append(prior[cols].copy())
        return names, problems, priors

    def _solve_shards(
        self,
        names: list[str],
        problems: list[EstimationProblem],
        priors: list[np.ndarray],
    ) -> tuple[list[np.ndarray], list[tuple[str, FailureReason]]]:
        """Solve every shard, fanning over the process pool when it pays.

        Both paths run :func:`_solve_shard_pooled` — serially it receives
        the payload tuple directly, pooled it receives a payload reference
        — so serial and parallel runs produce identical solutions *and*
        identical failure reports.  The pooled path additionally survives
        worker crashes/hangs via :func:`repro.parallel.run_supervised_tasks`
        (resubmission, then serial re-execution), which is pool-level
        infrastructure recovery and deliberately not recorded in the
        result diagnostics.

        Returns ``(solutions, fallbacks)`` where ``fallbacks`` lists the
        regions that degraded to their prior, with the reason.
        """
        jobs = effective_jobs(self.n_jobs, len(problems))
        if jobs <= 1:
            payload: Any = (self._base, problems, priors)
            indexed = [
                _solve_shard_pooled(index, payload) for index in range(len(problems))
            ]
        else:
            payload_ref = share_payload((self._base, problems, priors))
            try:
                indexed, _pool_report = run_supervised_tasks(
                    _solve_shard_pooled,
                    [(index, payload_ref) for index in range(len(problems))],
                    jobs=jobs,
                    timeout=self.shard_timeout,
                    max_resubmissions=self.max_resubmissions,
                )
            finally:
                release_payload(payload_ref)
        solutions = [np.empty(0)] * len(problems)
        fallbacks: list[tuple[str, FailureReason]] = []
        for index, vector, reason in indexed:
            solutions[index] = vector
            if reason is not None:
                region = names[index]
                fallbacks.append((region, reason))
                warnings.warn(
                    f"sharded estimation: region {region!r} degraded to its "
                    f"prior ({reason.describe()})",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return solutions, fallbacks

    # ------------------------------------------------------------------
    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Hierarchical estimate: coarse inter-region + parallel shards + IPF."""
        network = problem.routing.network
        if network is None:
            return self._flat_result(problem, sharding="no-network")
        with telemetry.span("sharded.partition"):
            try:
                region_of = self._resolve_regions(network)
            except TopologyError as exc:
                raise EstimationError(
                    f"cannot partition network for sharding: {exc}"
                ) from exc
            regions = sorted(set(region_of.values()))
            if len(regions) < 2:
                return self._flat_result(problem, sharding="single-region")

            _, origin_region, destination_region = self._pair_regions(problem, region_of)
            intra_mask = origin_region == destination_region
            inter_cols = np.flatnonzero(~intra_mask)
            intra_cols: dict[str, np.ndarray] = {}
            for position, region in enumerate(regions):
                cols = np.flatnonzero(intra_mask & (origin_region == position))
                if cols.size:
                    intra_cols[region] = cols
            telemetry.set_attributes(
                num_regions=len(regions), num_inter_pairs=int(inter_cols.size)
            )

        prior = self._prior_vector(problem)
        diagnostics: dict[str, Any] = {
            "num_regions": len(regions),
            "region_sizes": {
                region: sum(1 for value in region_of.values() if value == region)
                for region in regions
            },
            "num_inter_pairs": int(inter_cols.size),
            "num_intra_pairs": int(problem.num_pairs - inter_cols.size),
            "base_method": self._base.name,
        }

        # Coarse inter-region step, then per-region shards against the
        # residual loads the inter traffic leaves behind.
        with telemetry.span("sharded.coarse"):
            if inter_cols.size:
                inter_vector = self._inter_region_vector(
                    problem, region_of, inter_cols, prior, diagnostics
                )
            else:
                inter_vector = np.zeros(problem.num_pairs)
            baseline = prior.copy()
            baseline[inter_cols] = inter_vector[inter_cols]

        with telemetry.span("sharded.shards"):
            shard_names, shard_problems, shard_priors = self._shard_problems(
                problem, region_of, intra_cols, baseline, prior
            )
            solutions, shard_fallbacks = self._solve_shards(
                shard_names, shard_problems, shard_priors
            )
            telemetry.set_attributes(num_shards=len(shard_problems))
        diagnostics["num_shards"] = len(shard_problems)

        stitched = baseline.copy()
        for region, solution in zip(shard_names, solutions):
            stitched[intra_cols[region]] = solution

        # Degradations (inter-region fallback, shards degraded to their
        # priors) are part of the *result*: they are deterministic
        # properties of the computation, identical under serial and
        # parallel execution, and a degraded estimate must say so.
        events: list[DegradationEvent] = list(
            diagnostics.pop("_degradation_events", [])
        )
        if shard_fallbacks:
            diagnostics["shard_fallbacks"] = {
                region: reason.describe() for region, reason in shard_fallbacks
            }
            events.extend(
                DegradationEvent(
                    stage="shard",
                    kind="prior-fallback",
                    detail=f"region {region}: {reason.describe()}",
                )
                for region, reason in shard_fallbacks
            )
        if events:
            diagnostics["degradation"] = DegradationReport(
                requested=self._base.name,
                used=self._base.name,
                attempts=1 + len(shard_problems),
                events=tuple(events),
            ).to_dict()

        if self.reconcile:
            # Project the stitched vector onto the *global* link-load
            # constraints.  Iterative scaling keeps zero entries at zero,
            # so entries the shards zeroed out get a tiny prior-guided
            # floor first — reconciliation may re-grow them.
            with telemetry.span("sharded.reconcile"):
                reconcile_prior = stitched.copy()
                floor = 1e-12 * max(float(prior.max(initial=0.0)), 1.0)
                needs_floor = (reconcile_prior <= 0.0) & (prior > 0.0)
                reconcile_prior[needs_floor] = floor
                ipf = generalized_iterative_scaling(
                    reconcile_prior,
                    problem.routing.native,
                    problem.snapshot,
                    max_iterations=self.reconcile_iterations,
                    tolerance=self.reconcile_tolerance,
                )
                stitched = ipf.values
                telemetry.set_attributes(
                    iterations=int(ipf.iterations), converged=bool(ipf.converged)
                )
            diagnostics.update(
                reconcile_iterations=ipf.iterations,
                reconcile_violation=ipf.max_violation,
                reconcile_converged=ipf.converged,
            )

        return self._result(problem, stitched, **diagnostics)
