"""Vardi's moment-matching estimator under the Poisson model (Section 4.2.2).

Vardi assumes Poisson demands ``s_p ~ Poisson(lambda_p)``, which ties the
first and second moments of the link loads to the same intensities:

    ``E{t}   = R lambda``
    ``Cov{t} = R diag(lambda) R'``.

Given a time series of link-load measurements, the sample mean ``t_hat`` and
sample covariance ``Sigma_hat`` are matched against these expressions.
Because observed moments are noisy (and the Poisson assumption only
approximate), exact matching rarely has a solution; following the paper we
minimise the least-squares discrepancy

    minimise ``|| R lambda - t_hat ||_2^2
               + sigma^{-2} || R diag(lambda) R' - Sigma_hat ||_F^2``
    subject to ``lambda >= 0``

where ``sigma^{-2}`` in [0, 1] expresses faith in the Poisson assumption
(``sigma^{-2} = 1`` trusts it fully, values near zero use only the first
moment).

Both terms are quadratic in ``lambda``; using ``<r_p r_p', r_q r_q'> =
(r_p' r_q)^2`` the combined objective reduces to a non-negative quadratic
program with Hessian ``R'R + w (R'R)^{.2}`` (elementwise square), solved by
:func:`repro.optimize.qp.nonnegative_quadratic_program`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.registry import register
from repro.optimize.qp import nonnegative_quadratic_program

__all__ = ["VardiEstimator", "link_load_moments"]


def link_load_moments(link_load_series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sample mean and covariance of a link-load series of shape ``(K, L)``.

    The covariance uses the biased (1/K) normalisation of the paper's
    formula; with short busy-hour windows the difference to 1/(K-1) is
    immaterial but the match to the text is exact.
    """
    series = np.asarray(link_load_series, dtype=float)
    if series.ndim != 2:
        raise EstimationError("link_load_series must be a (K, L) array")
    if series.shape[0] < 2:
        raise EstimationError("need at least two snapshots to estimate a covariance")
    mean = series.mean(axis=0)
    centered = series - mean
    covariance = centered.T @ centered / series.shape[0]
    return mean, covariance


@register()
class VardiEstimator(Estimator):
    """Poisson moment matching on a time series of link loads.

    Parameters
    ----------
    poisson_weight:
        The paper's ``sigma^{-2}`` in [0, 1]: weight of the second-moment
        (covariance) matching term relative to the first-moment term.
    max_iterations, tolerance:
        Forwarded to the projected-gradient QP solver.
    """

    name = "vardi"

    def __init__(
        self,
        poisson_weight: float = 1.0,
        max_iterations: int = 20000,
        tolerance: float = 1e-12,
    ) -> None:
        if not 0 <= poisson_weight <= 1:
            raise EstimationError("poisson_weight (sigma^-2) must lie in [0, 1]")
        self.poisson_weight = float(poisson_weight)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._warm_start: Optional[np.ndarray] = None

    def set_warm_start(self, vector: np.ndarray) -> None:
        """Use ``vector`` as the next QP's starting point.

        Called by the generic :meth:`~repro.estimation.base.Estimator.estimate_series`
        loop with the previous snapshot's solution; the projected-gradient
        solver started near the optimum converges in a handful of
        iterations instead of thousands.  The warm start is one-shot — it
        applies to the next :meth:`estimate` call only (and only when its
        dimension matches), so plain repeated calls keep their cold-start
        behaviour bit for bit.
        """
        self._warm_start = np.asarray(vector, dtype=float).copy()

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Match the sample moments of the link-load series."""
        series = problem.series
        mean, covariance = link_load_moments(series)
        routing = problem.routing

        gram = routing.gram()
        hessian = gram.copy()
        linear = routing.rmatvec(mean)
        if self.poisson_weight > 0:
            # <r_p r_p', r_q r_q'>_F = ((R'R)_pq)^2  and  <r_p r_p', Sigma>_F = (R' Sigma R)_pp
            sigma_r = routing.rmatmat(covariance).T  # columns Sigma r_p, shape (L, P)
            hessian = hessian + self.poisson_weight * gram**2
            linear = linear + self.poisson_weight * np.einsum(
                "lp,lp->p", routing.matrix, sigma_r
            )

        x0 = None
        if self._warm_start is not None and self._warm_start.shape == linear.shape:
            x0 = self._warm_start
        self._warm_start = None
        solution = nonnegative_quadratic_program(
            hessian,
            linear,
            x0=x0,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        values = solution.x
        # R diag(values) R' compared against the sample covariance.
        scaled_columns = values[None, :] * routing.matrix
        covariance_model = routing.matmat(scaled_columns.T)
        return self._result(
            problem,
            values,
            poisson_weight=self.poisson_weight,
            num_snapshots=series.shape[0],
            first_moment_residual=float(np.linalg.norm(routing.matvec(values) - mean)),
            second_moment_residual=float(np.linalg.norm(covariance_model - covariance)),
            iterations=solution.iterations,
            converged=solution.converged,
        )

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """One window-level moment fit, reported for every snapshot.

        Vardi estimates the (stationary) Poisson intensities of the whole
        measurement window, so the batched result is the window estimate
        repeated per snapshot rather than ``K`` independent fits.
        """
        result = self.estimate(problem)
        estimates = np.tile(result.vector, (problem.num_snapshots, 1))
        return self._series_result(
            problem, estimates, batched=True, window_estimate=True, **result.diagnostics
        )
