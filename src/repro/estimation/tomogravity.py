"""Tomogravity convenience estimators.

"Tomogravity" (Zhang et al.) is the combination the paper finds most
practical: a gravity prior refined by a tomographic (link-load) fit.  The
library expresses it as an entropy or Bayesian estimator with a gravity
prior; this module packages the combination behind a single class so that
applications can run the recommended pipeline with one call, and adds a
small helper that sweeps the regularisation parameter and picks the value
minimising the link-load residual (a proxy usable without ground truth).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.bayesian import BayesianEstimator
from repro.estimation.entropy import EntropyEstimator
from repro.estimation.registry import register

__all__ = ["TomogravityEstimator", "sweep_regularization"]


@register()
class TomogravityEstimator(Estimator):
    """Gravity prior + regularised tomographic refinement in one call.

    Parameters
    ----------
    flavour:
        ``"entropy"`` (Kullback-Leibler regulariser, the original
        tomogravity formulation) or ``"bayesian"`` (quadratic regulariser).
    regularization:
        The ``sigma^2`` parameter of the underlying estimator.
    prior:
        Prior name or vector forwarded to the underlying estimator
        (default ``"gravity"``, which is what makes it tomogravity).
    """

    name = "tomogravity"

    def __init__(
        self,
        flavour: str = "entropy",
        regularization: float = 1000.0,
        prior: str | np.ndarray = "gravity",
    ) -> None:
        if flavour not in ("entropy", "bayesian"):
            raise EstimationError(f"unknown tomogravity flavour {flavour!r}")
        self.flavour = flavour
        if flavour == "entropy":
            self._inner: Estimator = EntropyEstimator(regularization=regularization, prior=prior)
        else:
            self._inner = BayesianEstimator(regularization=regularization, prior=prior)

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Run the underlying regularised estimator with the gravity prior."""
        result = self._inner.estimate(problem)
        diagnostics = dict(result.diagnostics)
        diagnostics["flavour"] = self.flavour
        return EstimationResult(estimate=result.estimate, method=self.name, diagnostics=diagnostics)

    def set_warm_start(self, vector: np.ndarray) -> None:
        """Use ``vector`` as the next solve's starting point (one-shot).

        Forwarded to the wrapped entropy/Bayesian estimator, which is what
        actually runs the solver.  Without this forwarding the generic
        series loop's ``getattr(self, "set_warm_start", ...)`` probe finds
        nothing and tomogravity silently loses the warm-started batched
        path the README advertises.
        """
        self._inner.set_warm_start(vector)  # type: ignore[attr-defined]

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Delegate to the inner estimator's batched path.

        With the ``"bayesian"`` flavour this inherits the factor-once
        Cholesky solve; the entropy flavour currently falls back to the
        generic per-snapshot loop of its inner estimator.
        """
        result = self._inner.estimate_series(problem)
        diagnostics = dict(result.diagnostics)
        diagnostics["flavour"] = self.flavour
        return SeriesEstimationResult(
            estimates=result.estimates,
            pairs=result.pairs,
            method=self.name,
            diagnostics=diagnostics,
        )


def sweep_regularization(
    problem: EstimationProblem,
    regularizations: Sequence[float],
    flavour: str = "entropy",
    prior: str | np.ndarray = "gravity",
) -> list[tuple[float, EstimationResult]]:
    """Run the tomogravity estimator for every regularisation value.

    Returns the list of ``(regularization, result)`` pairs in input order;
    the caller can score them against ground truth (as the paper's
    Figure 13 does) or pick the one with the smallest link residual.
    """
    if not regularizations:
        raise EstimationError("need at least one regularization value")
    results = []
    for value in regularizations:
        estimator = TomogravityEstimator(flavour=flavour, regularization=float(value), prior=prior)
        results.append((float(value), estimator.estimate(problem)))
    return results
