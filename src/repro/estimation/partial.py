"""Combining tomography with direct measurements (paper Section 5.3.6).

The final experiment of the paper asks how much the estimation error drops
when a handful of demands are measured *directly* (e.g. with dedicated LSP
counters or NetFlow on selected routers) while the rest are still inferred
from link loads.  Measuring a demand removes it from the unknowns: its
contribution is subtracted from the link loads and from the edge totals, and
the estimator runs on the reduced problem.

This module provides:

* :func:`reduce_problem` — build the reduced estimation problem given a set
  of directly measured demands;
* :class:`DirectMeasurementCombiner` — wrap any base estimator so that it
  accepts direct measurements and returns a full-size estimate;
* :func:`greedy_measurement_selection` — the paper's exhaustive greedy
  search: at every step measure the demand whose measurement reduces the
  error metric the most;
* :func:`largest_demand_selection` — the practical alternative also
  discussed in the paper: measure the largest (estimated) demands first.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import EstimationProblem, EstimationResult, Estimator
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import NodePair
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "reduce_problem",
    "DirectMeasurementCombiner",
    "greedy_measurement_selection",
    "largest_demand_selection",
]


def reduce_problem(
    problem: EstimationProblem, measured: Mapping[NodePair, float]
) -> EstimationProblem:
    """Remove directly measured demands from an estimation problem.

    The measured demands' contribution ``R_measured @ s_measured`` is
    subtracted from the link loads (snapshot and series) and from the edge
    totals, and the corresponding columns are dropped from the routing
    matrix.  The returned problem estimates only the remaining pairs.
    """
    if not measured:
        return problem
    unknown = set(measured) - set(problem.pairs)
    if unknown:
        raise EstimationError(f"measured pairs not in the problem: {sorted(map(str, unknown))}")
    for pair, value in measured.items():
        if value < 0:
            raise EstimationError(f"measured demand for {pair} is negative")

    routing = problem.routing
    keep_indices = [i for i, pair in enumerate(problem.pairs) if pair not in measured]
    drop_indices = [i for i, pair in enumerate(problem.pairs) if pair in measured]
    measured_vector = np.array([measured[problem.pairs[i]] for i in drop_indices])
    measured_columns = routing.matrix[:, drop_indices]
    measured_loads = measured_columns @ measured_vector

    reduced_matrix = routing.matrix[:, keep_indices]
    reduced_pairs = tuple(problem.pairs[i] for i in keep_indices)
    reduced_routing = RoutingMatrix(
        reduced_matrix, routing.link_names, reduced_pairs, network=routing.network
    )

    link_loads = None
    if problem.link_loads is not None:
        link_loads = np.maximum(problem.link_loads - measured_loads, 0.0)
    series = None
    if problem.link_load_series is not None:
        series = np.maximum(problem.link_load_series - measured_loads[None, :], 0.0)

    origin_totals = None
    if problem.origin_totals is not None:
        origin_totals = dict(problem.origin_totals)
        for pair, value in measured.items():
            if pair.origin in origin_totals:
                origin_totals[pair.origin] = max(0.0, origin_totals[pair.origin] - value)
    destination_totals = None
    if problem.destination_totals is not None:
        destination_totals = dict(problem.destination_totals)
        for pair, value in measured.items():
            if pair.destination in destination_totals:
                destination_totals[pair.destination] = max(
                    0.0, destination_totals[pair.destination] - value
                )

    return EstimationProblem(
        routing=reduced_routing,
        link_loads=link_loads,
        link_load_series=series,
        origin_totals=origin_totals,
        destination_totals=destination_totals,
        origin_totals_series=problem.origin_totals_series,
        origin_names=problem.origin_names,
        destination_totals_series=problem.destination_totals_series,
        destination_names=problem.destination_names,
    )


class DirectMeasurementCombiner(Estimator):
    """Wrap a base estimator so it can exploit directly measured demands.

    Parameters
    ----------
    base_estimator:
        Any snapshot estimator (entropy, Bayesian, ...).
    measured:
        Mapping from pair to its directly measured demand.
    """

    def __init__(self, base_estimator: Estimator, measured: Mapping[NodePair, float]) -> None:
        self.base_estimator = base_estimator
        self.measured = dict(measured)
        self.name = f"{base_estimator.name}+direct"

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Estimate the unmeasured demands and splice the measured ones back in."""
        reduced = reduce_problem(problem, self.measured)
        if reduced.num_pairs == 0:
            values = np.array([self.measured[pair] for pair in problem.pairs])
            return self._result(problem, values, measured_pairs=len(self.measured))
        partial_result = self.base_estimator.estimate(reduced)
        partial = dict(zip(reduced.pairs, partial_result.vector))
        values = np.array(
            [
                self.measured[pair] if pair in self.measured else partial[pair]
                for pair in problem.pairs
            ]
        )
        return self._result(
            problem,
            values,
            measured_pairs=len(self.measured),
            base_method=self.base_estimator.name,
            base_diagnostics=partial_result.diagnostics,
        )


def _evaluate(
    estimator: Estimator,
    problem: EstimationProblem,
    measured: Mapping[NodePair, float],
    error_metric: Callable[[TrafficMatrix], float],
) -> float:
    combiner = DirectMeasurementCombiner(estimator, measured)
    return float(error_metric(combiner.estimate(problem).estimate))


def greedy_measurement_selection(
    problem: EstimationProblem,
    truth: TrafficMatrix,
    estimator: Estimator,
    error_metric: Callable[[TrafficMatrix], float],
    max_measurements: int,
    candidates: Optional[Sequence[NodePair]] = None,
) -> list[tuple[NodePair, float]]:
    """Greedy exhaustive selection of demands to measure (paper Figure 16).

    At each step every remaining candidate demand is tried: it is measured
    (taking its true value from ``truth``), the estimator re-runs on the
    reduced problem, and the candidate yielding the lowest error is kept.

    Parameters
    ----------
    problem:
        The estimation problem.
    truth:
        The true traffic matrix (measured values are read from it).
    estimator:
        Base estimator (e.g. the entropy method as in the paper).
    error_metric:
        Callable mapping an estimated traffic matrix to an error value
        (typically the MRE against ``truth``).
    max_measurements:
        Number of demands to select.
    candidates:
        Optional candidate subset; defaults to all pairs.

    Returns
    -------
    list of ``(pair, error_after_measuring_it)`` in selection order.
    """
    if max_measurements < 1:
        raise EstimationError("max_measurements must be at least 1")
    remaining = list(candidates) if candidates is not None else list(problem.pairs)
    selected: dict[NodePair, float] = {}
    history: list[tuple[NodePair, float]] = []
    for _ in range(min(max_measurements, len(remaining))):
        best_pair: Optional[NodePair] = None
        best_error = float("inf")
        for pair in remaining:
            trial = dict(selected)
            trial[pair] = truth.demand(pair)
            error = _evaluate(estimator, problem, trial, error_metric)
            if error < best_error:
                best_error, best_pair = error, pair
        if best_pair is None:
            # Every candidate scored infinity — measuring more demands
            # cannot improve anything, so stop early.
            break
        selected[best_pair] = truth.demand(best_pair)
        remaining.remove(best_pair)
        history.append((best_pair, best_error))
    return history


def largest_demand_selection(
    problem: EstimationProblem,
    truth: TrafficMatrix,
    estimator: Estimator,
    error_metric: Callable[[TrafficMatrix], float],
    max_measurements: int,
) -> list[tuple[NodePair, float]]:
    """Measure the largest *estimated* demands first (the practical strategy).

    The paper notes that most estimators rank demands accurately, so
    identifying the largest estimated demands and measuring those is a
    viable approach even though it is not optimal for the relative-error
    metric.  Returns the same ``(pair, error)`` history format as
    :func:`greedy_measurement_selection`.
    """
    if max_measurements < 1:
        raise EstimationError("max_measurements must be at least 1")
    baseline = estimator.estimate(problem).estimate
    ranked = baseline.top_demands(max_measurements)
    selected: dict[NodePair, float] = {}
    history: list[tuple[NodePair, float]] = []
    for pair in ranked:
        selected[pair] = truth.demand(pair)
        error = _evaluate(estimator, problem, selected, error_metric)
        history.append((pair, error))
    return history
