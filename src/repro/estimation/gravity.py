"""Gravity models for traffic-matrix estimation (paper Section 4.1).

The simple gravity model predicts the demand from node ``n`` to node ``m``
as proportional to the product of the total traffic entering the network at
``n`` and the total traffic exiting at ``m``:

    ``s_nm = C * t_e(n) * t_x(m)``

with ``C`` chosen so the estimated total equals the measured total traffic.
With ``C = 1 / sum_m t_x(m)`` this is equivalent to the fanout model
``alpha_nm = t_x(m) / sum_m t_x(m)``.

The generalised gravity model additionally forces demands between two
peering nodes to zero; the paper focuses on the simple model because the
peering information of the measured network was not available, but the
generalised form is implemented here for completeness.

Gravity estimates ignore the interior link loads entirely and are generally
*not* consistent with them; they are most useful as the prior of the
regularised estimators (tomogravity).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.registry import register
from repro.topology.elements import NodeRole
from repro.topology.network import Network

__all__ = [
    "SimpleGravityEstimator",
    "GeneralizedGravityEstimator",
    "gravity_vector",
    "gravity_vector_series",
]


def _edge_totals(problem: EstimationProblem) -> tuple[dict[str, float], dict[str, float]]:
    """Origin and destination totals, which the gravity model requires."""
    if problem.origin_totals is None or problem.destination_totals is None:
        raise EstimationError(
            "gravity estimation requires origin_totals and destination_totals "
            "(the edge-link measurements t_e(n) and t_x(m))"
        )
    origins = {pair.origin for pair in problem.pairs}
    destinations = {pair.destination for pair in problem.pairs}
    missing_origins = origins - set(problem.origin_totals)
    missing_destinations = destinations - set(problem.destination_totals)
    if missing_origins:
        raise EstimationError(f"origin totals missing for {sorted(missing_origins)}")
    if missing_destinations:
        raise EstimationError(f"destination totals missing for {sorted(missing_destinations)}")
    return dict(problem.origin_totals), dict(problem.destination_totals)


def gravity_vector(
    problem: EstimationProblem,
    excluded_pairs: Optional[set] = None,
) -> np.ndarray:
    """Raw (unnormalised-then-rescaled) gravity estimate as a demand vector.

    Parameters
    ----------
    problem:
        The estimation problem; its edge totals drive the model.
    excluded_pairs:
        Pairs forced to zero (the peering-to-peering exclusions of the
        generalised model).

    The result is scaled so its total equals the measured total traffic
    (the sum of the origin totals).  The exclusion-free form is cached in
    the problem's shared workspace (and returned read-only), so the many
    estimators that use a gravity prior pay the model once per problem.
    """

    def compute() -> np.ndarray:
        origin_totals, destination_totals = _edge_totals(problem)
        origins, destinations, origin_cols, destination_cols = problem.pair_positions()
        origin_values = np.array([origin_totals[name] for name in origins])
        destination_values = np.array([destination_totals[name] for name in destinations])
        values = origin_values[origin_cols] * destination_values[destination_cols]
        if excluded_pairs:
            mask = np.fromiter(
                (pair in excluded_pairs for pair in problem.pairs),
                dtype=bool,
                count=len(problem.pairs),
            )
            values[mask] = 0.0
        total = values.sum()
        measured_total = float(sum(origin_totals.values()))
        if total <= 0:
            if measured_total > 0:
                raise EstimationError(
                    "gravity model produced a zero matrix for non-zero traffic"
                )
            return np.zeros(len(problem.pairs))
        return values * (measured_total / total)

    if excluded_pairs:
        return compute()

    def cached() -> np.ndarray:
        values = compute()
        values.setflags(write=False)
        return values

    return problem.shared(("gravity_vector",), cached)


def gravity_vector_series(
    problem: EstimationProblem,
    excluded_pairs: Optional[set] = None,
) -> np.ndarray:
    """Vectorised gravity estimates for every snapshot of a series.

    Returns a ``(K, num_pairs)`` array whose row ``k`` equals
    ``gravity_vector(problem.at_snapshot(k))``: per-snapshot edge totals are
    taken from the totals series when present and fall back to the
    problem-level totals otherwise.  All snapshots are evaluated in a
    handful of array operations — no per-snapshot Python loop — which is
    what makes the batched gravity/Kruithof/Bayesian paths cheap.  The
    exclusion-free batch is cached (read-only) in the problem's shared
    workspace, so a sweep whose methods all use gravity priors builds it
    once.
    """
    if not excluded_pairs:

        def cached() -> np.ndarray:
            values = _gravity_series_uncached(problem, set())
            values.setflags(write=False)
            return values

        return problem.shared(("gravity_vector_series",), cached)
    return _gravity_series_uncached(problem, set(excluded_pairs))


def _gravity_series_uncached(problem: EstimationProblem, excluded_pairs: set) -> np.ndarray:
    num_snapshots = problem.series.shape[0]
    pairs = problem.pairs
    excluded_pairs = excluded_pairs or set()

    def totals_matrix(kind: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-snapshot totals aligned to pairs: ``(K, P)`` plus row sums ``(K,)``."""
        if kind == "origin":
            series, names, fallback = (
                problem.origin_totals_series,
                problem.origin_names,
                problem.origin_totals,
            )
            labels = [pair.origin for pair in pairs]
        else:
            series, names, fallback = (
                problem.destination_totals_series,
                problem.destination_names,
                problem.destination_totals,
            )
            labels = [pair.destination for pair in pairs]
        if series is not None:
            index = {name: col for col, name in enumerate(names)}
            missing = sorted({label for label in labels if label not in index})
            if missing:
                raise EstimationError(f"{kind} totals missing for {missing}")
            columns = np.array([index[label] for label in labels])
            return series[:, columns], series.sum(axis=1)
        if fallback is None:
            raise EstimationError(
                "gravity estimation requires origin_totals and destination_totals "
                "(the edge-link measurements t_e(n) and t_x(m))"
            )
        missing = sorted({label for label in labels if label not in fallback})
        if missing:
            raise EstimationError(f"{kind} totals missing for {missing}")
        row = np.array([fallback[label] for label in labels])
        total = float(sum(fallback.values()))
        return np.tile(row, (num_snapshots, 1)), np.full(num_snapshots, total)

    origin_values, origin_row_sums = totals_matrix("origin")
    destination_values, _ = totals_matrix("destination")
    values = origin_values * destination_values
    if excluded_pairs:
        mask = np.array([pair in excluded_pairs for pair in pairs])
        values[:, mask] = 0.0
    totals = values.sum(axis=1)
    measured = origin_row_sums
    bad = (totals <= 0) & (measured > 0)
    if np.any(bad):
        raise EstimationError("gravity model produced a zero matrix for non-zero traffic")
    scale = np.where(totals > 0, measured / np.where(totals > 0, totals, 1.0), 0.0)
    return values * scale[:, None]


@register()
class SimpleGravityEstimator(Estimator):
    """The simple gravity model ``s_nm = C t_e(n) t_x(m)``."""

    name = "gravity"

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Estimate demands from edge totals only (interior links are ignored)."""
        values = gravity_vector(problem)
        return self._result(problem, values, normalisation_total=float(values.sum()))

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Vectorised batch: every snapshot's totals evaluated in one expression."""
        estimates = gravity_vector_series(problem)
        return self._series_result(problem, estimates, batched=True)


@register()
class GeneralizedGravityEstimator(Estimator):
    """Gravity model with peer-to-peer demands forced to zero.

    Parameters
    ----------
    network:
        Network whose node roles identify the peering PoPs.  Alternatively
        ``peering_nodes`` can be given explicitly.
    peering_nodes:
        Explicit set of peering node names (overrides the network roles).
    """

    name = "generalized-gravity"

    def __init__(
        self,
        network: Optional[Network] = None,
        peering_nodes: Optional[set[str]] = None,
    ) -> None:
        if network is None and peering_nodes is None:
            raise EstimationError(
                "generalised gravity needs a network or an explicit peering node set"
            )
        if peering_nodes is not None:
            self.peering_nodes = set(peering_nodes)
        else:
            # The guard above rules out both being None.
            assert network is not None
            self.peering_nodes = {
                node.name for node in network.nodes if node.role is NodeRole.PEERING
            }

    def _excluded(self, problem: EstimationProblem) -> set:
        return {
            pair
            for pair in problem.pairs
            if pair.origin in self.peering_nodes and pair.destination in self.peering_nodes
        }

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Estimate demands, zeroing every peer-to-peer pair."""
        excluded = self._excluded(problem)
        values = gravity_vector(problem, excluded_pairs=excluded)
        return self._result(
            problem,
            values,
            excluded_pairs=len(excluded),
            normalisation_total=float(values.sum()),
        )

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Vectorised batch with the peer-to-peer exclusions applied."""
        excluded = self._excluded(problem)
        estimates = gravity_vector_series(problem, excluded_pairs=excluded)
        return self._series_result(problem, estimates, batched=True, excluded_pairs=len(excluded))
