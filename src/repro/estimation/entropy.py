"""Entropy-regularised (Kullback-Leibler) estimation (paper Section 4.2.1).

Following Zhang et al.'s information-theoretic formulation, the entropy
approach estimates the traffic matrix by

    minimise ``|| R s - t ||_2^2 + sigma^{-2} D(s || s^(p))``
    subject to ``s >= 0``

where ``D`` is the (generalised) Kullback-Leibler distance to the prior
``s^(p)``.  Compared to projecting the prior exactly onto ``R s = t``
(Kruithof/Krupp), this regularised form still produces an estimate when the
linear system is inconsistent, and the parameter ``sigma^2`` tunes how much
the link measurements are trusted — it is the regularisation parameter swept
in the paper's Figure 13.

The objective is smooth and convex on the positive orthant; the estimator
minimises it with SciPy's L-BFGS-B using analytic gradients and a tiny
positive lower bound to keep the logarithm defined.  Demands whose prior is
zero are pinned to zero, matching the KL convention that they must stay
zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.optimize

from repro.errors import EstimationError
from repro.estimation.base import EstimationProblem, EstimationResult, Estimator
from repro.estimation.priors import make_prior
from repro.estimation.registry import register
from repro.optimize.ipf import kl_divergence

__all__ = ["EntropyEstimator"]

_POSITIVE_FLOOR = 1e-9


@register()
class EntropyEstimator(Estimator):
    """Estimation by least-squares fit plus KL-distance regularisation.

    Parameters
    ----------
    regularization:
        The parameter ``sigma^2``; larger values emphasise the link-load
        measurements, smaller values pull the estimate towards the prior.
    prior:
        Explicit prior vector or a prior name understood by
        :func:`repro.estimation.priors.make_prior`.
    max_iterations:
        Iteration cap handed to L-BFGS-B.
    scale_invariant:
        When ``True`` (default) the KL term is computed on demands scaled by
        the total prior traffic, which keeps the trade-off between the two
        objective terms comparable across networks of different absolute
        traffic volumes (the paper sweeps one dimensionless parameter).
    """

    name = "entropy"

    def __init__(
        self,
        regularization: float = 1000.0,
        prior: str | np.ndarray = "gravity",
        max_iterations: int = 2000,
        scale_invariant: bool = True,
    ) -> None:
        if regularization <= 0:
            raise EstimationError("regularization (sigma^2) must be positive")
        if max_iterations <= 0:
            raise EstimationError("max_iterations must be positive")
        self.regularization = float(regularization)
        self.prior = prior
        self.max_iterations = int(max_iterations)
        self.scale_invariant = bool(scale_invariant)

    # ------------------------------------------------------------------
    def _prior_vector(self, problem: EstimationProblem) -> np.ndarray:
        if isinstance(self.prior, str):
            return make_prior(problem, self.prior)
        prior = np.asarray(self.prior, dtype=float)
        if prior.shape != (problem.num_pairs,):
            raise EstimationError(
                f"prior has shape {prior.shape}, expected ({problem.num_pairs},)"
            )
        if np.any(prior < 0):
            raise EstimationError("prior demands must be non-negative")
        return prior

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Minimise the regularised objective with projected quasi-Newton steps."""
        prior = self._prior_vector(problem)
        routing = problem.routing.matrix
        snapshot = problem.snapshot

        free = prior > 0
        if not np.any(free):
            # A zero prior forces a zero estimate (KL keeps zeros at zero).
            return self._result(problem, np.zeros(problem.num_pairs), prior_kind="zero")
        reduced_routing = routing[:, free]
        reduced_prior = prior[free]

        # Optional scale normalisation keeps sigma^2 dimensionless.
        scale = float(prior.sum()) if self.scale_invariant else 1.0
        if scale <= 0:
            scale = 1.0
        weight = 1.0 / self.regularization

        def objective_and_gradient(x: np.ndarray) -> tuple[float, np.ndarray]:
            residual = reduced_routing @ x - snapshot
            fit_term = float(residual @ residual)
            ratio = np.maximum(x, _POSITIVE_FLOOR) / reduced_prior
            kl_term = float(np.sum(x * np.log(ratio) - x + reduced_prior))
            value = fit_term + weight * scale * kl_term
            gradient = 2.0 * reduced_routing.T @ residual + weight * scale * np.log(ratio)
            return value, gradient

        start = reduced_prior.copy()
        bounds = [(_POSITIVE_FLOOR, None)] * int(free.sum())
        outcome = scipy.optimize.minimize(
            objective_and_gradient,
            x0=start,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        values = np.zeros(problem.num_pairs)
        values[free] = np.maximum(outcome.x, 0.0)
        return self._result(
            problem,
            values,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            link_residual=float(np.linalg.norm(routing @ values - snapshot)),
            kl_to_prior=kl_divergence(values[free], prior[free]),
            solver_iterations=int(outcome.nit),
            solver_converged=bool(outcome.success),
        )
