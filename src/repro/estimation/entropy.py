"""Entropy-regularised (Kullback-Leibler) estimation (paper Section 4.2.1).

Following Zhang et al.'s information-theoretic formulation, the entropy
approach estimates the traffic matrix by

    minimise ``|| R s - t ||_2^2 + sigma^{-2} D(s || s^(p))``
    subject to ``s >= 0``

where ``D`` is the (generalised) Kullback-Leibler distance to the prior
``s^(p)``.  Compared to projecting the prior exactly onto ``R s = t``
(Kruithof/Krupp), this regularised form still produces an estimate when the
linear system is inconsistent, and the parameter ``sigma^2`` tunes how much
the link measurements are trusted — it is the regularisation parameter swept
in the paper's Figure 13.

The objective is smooth and convex on the positive orthant; the estimator
minimises it with SciPy's L-BFGS-B using analytic gradients and a tiny
positive lower bound to keep the logarithm defined.  Demands whose prior is
zero are pinned to zero, matching the KL convention that they must stay
zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.optimize

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.priors import make_prior
from repro.estimation.registry import register
from repro.optimize.ipf import kl_divergence
from repro.resilience.budget import budget_tick
from repro.routing.backends import RoutingBackend

__all__ = ["EntropyEstimator"]

_POSITIVE_FLOOR = 1e-9

#: Above this many pairs the damped-Newton series path (which builds and
#: factorises a dense free-by-free Hessian) is slower than warm-started
#: quasi-Newton, so the series estimation falls back to the generic
#: warm-started per-snapshot loop.
_NEWTON_FREE_LIMIT = 1200


@register()
class EntropyEstimator(Estimator):
    """Estimation by least-squares fit plus KL-distance regularisation.

    Parameters
    ----------
    regularization:
        The parameter ``sigma^2``; larger values emphasise the link-load
        measurements, smaller values pull the estimate towards the prior.
    prior:
        Explicit prior vector or a prior name understood by
        :func:`repro.estimation.priors.make_prior`.
    max_iterations:
        Iteration cap handed to L-BFGS-B.
    scale_invariant:
        When ``True`` (default) the KL term is computed on demands scaled by
        the total prior traffic, which keeps the trade-off between the two
        objective terms comparable across networks of different absolute
        traffic volumes (the paper sweeps one dimensionless parameter).
    """

    name = "entropy"

    def __init__(
        self,
        regularization: float = 1000.0,
        prior: str | np.ndarray = "gravity",
        max_iterations: int = 2000,
        scale_invariant: bool = True,
    ) -> None:
        if regularization <= 0:
            raise EstimationError("regularization (sigma^2) must be positive")
        if max_iterations <= 0:
            raise EstimationError("max_iterations must be positive")
        self.regularization = float(regularization)
        self.prior = prior
        self.max_iterations = int(max_iterations)
        self.scale_invariant = bool(scale_invariant)
        self._warm_start: Optional[np.ndarray] = None

    def set_warm_start(self, vector: np.ndarray) -> None:
        """Use ``vector`` as the next solve's starting point.

        Called by the generic :meth:`~repro.estimation.base.Estimator.estimate_series`
        loop with the previous snapshot's solution.  The objective is
        strictly convex on its support, so the warm start only changes how
        fast L-BFGS-B reaches the minimiser, not which minimiser it reaches.
        One-shot: it applies to the next :meth:`estimate` call only.
        """
        self._warm_start = np.asarray(vector, dtype=float).copy()

    # ------------------------------------------------------------------
    def _prior_vector(self, problem: EstimationProblem) -> np.ndarray:
        if isinstance(self.prior, str):
            return make_prior(problem, self.prior)
        prior = np.asarray(self.prior, dtype=float)
        if prior.shape != (problem.num_pairs,):
            raise EstimationError(
                f"prior has shape {prior.shape}, expected ({problem.num_pairs},)"
            )
        if np.any(prior < 0):
            raise EstimationError("prior demands must be non-negative")
        return prior

    @staticmethod
    def _reduced_backend(problem: EstimationProblem, free: np.ndarray) -> RoutingBackend:
        """The routing backend restricted to the free columns (same kind).

        Column selection happens on the backend, never through the dense
        view, so sparse problems stay CSR end to end.  The reduced backend
        is cached in the problem's shared workspace keyed by the free mask:
        sweeps running several prior-sharing methods — and the Newton
        series path iterating snapshots with a stable support — reuse one
        column slice and one cached reduced Gram instead of rebuilding
        them per call.
        """
        full = bool(free.all())
        key = ("entropy_reduced", None if full else free.tobytes())
        return problem.shared(
            key,
            lambda: problem.routing.backend
            if full
            else problem.routing.select_pairs(np.flatnonzero(free)),
        )

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Minimise the regularised objective with projected quasi-Newton steps."""
        prior = self._prior_vector(problem)
        snapshot = problem.snapshot
        warm_start = self._warm_start
        self._warm_start = None

        free = prior > 0
        if not np.any(free):
            # A zero prior forces a zero estimate (KL keeps zeros at zero).
            return self._result(problem, np.zeros(problem.num_pairs), prior_kind="zero")
        reduced = self._reduced_backend(problem, free)
        reduced_prior = prior[free]

        # Optional scale normalisation keeps sigma^2 dimensionless.
        scale = float(prior.sum()) if self.scale_invariant else 1.0
        if scale <= 0:
            scale = 1.0
        weight = 1.0 / self.regularization

        def objective_and_gradient(x: np.ndarray) -> tuple[float, np.ndarray]:
            budget_tick()
            residual = reduced.matvec(x) - snapshot
            fit_term = float(residual @ residual)
            ratio = np.maximum(x, _POSITIVE_FLOOR) / reduced_prior
            kl_term = float(np.sum(x * np.log(ratio) - x + reduced_prior))
            value = fit_term + weight * scale * kl_term
            gradient = 2.0 * reduced.rmatvec(residual) + weight * scale * np.log(ratio)
            return value, gradient

        if warm_start is not None and warm_start.shape == (problem.num_pairs,):
            start = np.maximum(warm_start[free], _POSITIVE_FLOOR)
        else:
            start = reduced_prior.copy()
        bounds = [(_POSITIVE_FLOOR, None)] * int(free.sum())
        outcome = scipy.optimize.minimize(
            objective_and_gradient,
            x0=start,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.max_iterations, "ftol": 1e-12, "gtol": 1e-10},
        )
        values = np.zeros(problem.num_pairs)
        values[free] = np.maximum(outcome.x, 0.0)
        return self._result(
            problem,
            values,
            regularization=self.regularization,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
            residual_norm=float(
                np.linalg.norm(problem.routing.matvec(values) - snapshot)
            ),
            kl_to_prior=kl_divergence(values[free], prior[free]),
            iterations=int(outcome.nit),
            converged=bool(outcome.success),
        )

    # ------------------------------------------------------------------
    # batched series path
    # ------------------------------------------------------------------
    def _newton_solve(
        self,
        reduced: RoutingBackend,
        snapshot: np.ndarray,
        reduced_prior: np.ndarray,
        kl_weight: float,
        start: np.ndarray,
        max_iterations: int = 60,
        gradient_tolerance: float = 1e-10,
    ) -> tuple[Optional[np.ndarray], int]:
        """Damped Newton minimisation of the entropy objective.

        The objective is strictly convex on the open positive orthant and
        its gradient diverges to ``-inf`` at zero, so the minimiser is
        interior and an unconstrained Newton step with a
        fraction-to-the-boundary cap plus Armijo backtracking converges to
        the same point L-BFGS-B finds — typically in under a dozen
        iterations when started from the previous snapshot's solution.
        Returns ``(None, iterations)`` when it fails to converge so the
        caller can fall back to the quasi-Newton path.  ``reduced`` is the
        routing backend restricted to the free columns; its cached Gram is
        shared across the snapshots of a series.
        """
        gram2 = 2.0 * reduced.gram()
        linear2 = 2.0 * reduced.rmatvec(snapshot)

        def objective(x: np.ndarray) -> float:
            residual = reduced.matvec(x) - snapshot
            ratio = np.maximum(x, _POSITIVE_FLOOR) / reduced_prior
            return float(residual @ residual) + kl_weight * float(
                np.sum(x * np.log(ratio) - x + reduced_prior)
            )

        x = np.maximum(start, _POSITIVE_FLOOR)
        value = objective(x)
        gradient_scale = max(1.0, kl_weight)
        for iteration in range(1, max_iterations + 1):
            budget_tick()
            safe_x = np.maximum(x, _POSITIVE_FLOOR)
            gradient = gram2 @ x - linear2 + kl_weight * np.log(safe_x / reduced_prior)
            if float(np.abs(gradient).max(initial=0.0)) <= gradient_tolerance * gradient_scale:
                return x, iteration
            hessian = gram2 + np.diag(kl_weight / safe_x)
            try:
                step = np.linalg.solve(hessian, -gradient)
            except np.linalg.LinAlgError:
                return None, iteration
            negative = step < 0
            step_size = 1.0
            if negative.any():
                step_size = min(1.0, 0.995 * float(np.min(-x[negative] / step[negative])))
            directional = float(gradient @ step)
            if abs(directional) <= 1e-12 * max(1.0, abs(value)):
                # Newton decrement at the floating-point floor of the
                # objective: the point is converged even if the raw
                # gradient cannot cancel below the absolute tolerance.
                return x, iteration
            if directional > 0:
                # A near-singular Hessian solve produced an ascent
                # direction; hand the snapshot to the exact fallback
                # rather than accepting uphill steps.
                return None, iteration
            accepted = False
            for _ in range(40):
                candidate = x + step_size * step
                candidate_value = objective(candidate)
                if candidate_value <= value + 1e-4 * step_size * directional:
                    accepted = True
                    break
                step_size *= 0.5
            if not accepted:
                # The quadratic model stopped improving; the point is as
                # converged as floating point allows.
                return x, iteration
            x, value = candidate, candidate_value
        return None, max_iterations

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Per-snapshot estimates, warm-started from the previous snapshot.

        Consecutive snapshots differ little, so each snapshot's solve
        starts from the previous solution and refines it with damped
        Newton steps on the same objective ``estimate`` minimises — the
        unique interior optimum guarantees both solvers agree (up to
        convergence tolerance), while the warm start plus second-order
        convergence replaces hundreds of L-BFGS-B iterations with a few.
        Snapshots where Newton does not converge fall back to the exact
        per-snapshot path.  Problems with more than ``_NEWTON_FREE_LIMIT``
        pairs skip the dense free-by-free Hessian entirely and run the
        warm-started quasi-Newton loop instead (same minimiser, no large
        dense intermediate) — the path large sparse backbones take.  (The
        gate uses the pair count, not the prior's support: building a
        prior just to count positives would pay the full prior cost — two
        LPs per pair for ``"wcb"`` — on a throwaway sub-problem.)
        """
        series = problem.series
        if problem.num_pairs > _NEWTON_FREE_LIMIT:
            return super().estimate_series(problem)
        estimates = np.empty((series.shape[0], problem.num_pairs))
        previous: Optional[np.ndarray] = None
        newton_snapshots = 0
        fallback_snapshots = 0
        total_iterations = 0
        for index in range(series.shape[0]):
            sub_problem = problem.at_snapshot(index)
            prior = self._prior_vector(sub_problem)
            free = prior > 0
            solution: Optional[np.ndarray] = None
            if np.any(free):
                reduced_prior = prior[free]
                scale = float(prior.sum()) if self.scale_invariant else 1.0
                kl_weight = (scale if scale > 0 else 1.0) / self.regularization
                start = reduced_prior if previous is None else np.maximum(
                    previous[free], _POSITIVE_FLOOR
                )
                # Key the reduced slice on the *series* problem so every
                # snapshot with the same support shares one column slice
                # and one cached Gram.
                reduced, iterations = self._newton_solve(
                    self._reduced_backend(problem, free),
                    sub_problem.snapshot,
                    reduced_prior,
                    kl_weight,
                    start,
                )
                total_iterations += iterations
                if reduced is not None:
                    solution = np.zeros(problem.num_pairs)
                    solution[free] = np.maximum(reduced, 0.0)
                    newton_snapshots += 1
            else:
                solution = np.zeros(problem.num_pairs)
            if solution is None:
                solution = self.estimate(sub_problem).vector
                fallback_snapshots += 1
            estimates[index] = solution
            previous = solution
        return self._series_result(
            problem,
            estimates,
            batched=True,
            warm_started=True,
            regularization=self.regularization,
            newton_snapshots=newton_snapshots,
            fallback_snapshots=fallback_snapshots,
            mean_newton_iterations=(
                total_iterations / max(1, newton_snapshots + fallback_snapshots)
            ),
        )
