"""Kruithof's projection method (iterative proportional fitting).

Kruithof's 1937 method adjusts a prior traffic matrix so that its row and
column sums match the measured totals of traffic entering and leaving each
node.  Krupp later showed the iteration computes the matrix minimising the
Kullback-Leibler distance to the prior subject to those constraints, and
generalised it to arbitrary linear constraints ``R s = t`` — the direct
ancestor of today's entropy-regularised estimators.

Two estimators are provided:

* :class:`KruithofEstimator` — the classical biproportional fit of a prior
  matrix to the measured edge totals ``t_e(n)`` / ``t_x(m)``; it never looks
  at interior links;
* :class:`KLProjectionEstimator` — Krupp's generalisation: the I-projection
  of the prior onto ``{s >= 0 : R s = t}`` using all link measurements,
  computed by generalised iterative scaling.  This is the ``sigma -> inf``
  limit of the entropy estimator when the linear system is consistent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import (
    EstimationProblem,
    EstimationResult,
    Estimator,
    SeriesEstimationResult,
)
from repro.estimation.gravity import gravity_vector_series
from repro.estimation.priors import make_prior
from repro.estimation.registry import register
from repro.optimize.ipf import (
    generalized_iterative_scaling,
    kruithof_scaling,
    kruithof_scaling_batch,
)

__all__ = ["KruithofEstimator", "KLProjectionEstimator"]


def _resolve_prior(problem: EstimationProblem, prior: str | np.ndarray) -> np.ndarray:
    if isinstance(prior, str):
        return make_prior(problem, prior)
    vector = np.asarray(prior, dtype=float)
    if vector.shape != (problem.num_pairs,):
        raise EstimationError(
            f"prior has shape {vector.shape}, expected ({problem.num_pairs},)"
        )
    if np.any(vector < 0):
        raise EstimationError("prior demands must be non-negative")
    return vector


@register()
class KruithofEstimator(Estimator):
    """Classical Kruithof biproportional fitting to edge totals.

    Parameters
    ----------
    prior:
        Prior vector or prior name (default ``"uniform"``: Kruithof's method
        is often started from a uniform matrix when no better information
        exists; use ``"gravity"`` to adjust a gravity estimate).
    max_iterations, tolerance:
        Forwarded to :func:`repro.optimize.ipf.kruithof_scaling`.
    """

    name = "kruithof"

    def __init__(
        self,
        prior: str | np.ndarray = "uniform",
        max_iterations: int = 500,
        tolerance: float = 1e-9,
    ) -> None:
        self.prior = prior
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._warm_start: Optional[np.ndarray] = None

    def set_warm_start(self, vector: np.ndarray) -> None:
        """Seed the next fit's IPF iteration with ``vector`` (one-shot).

        This is *incremental IPF*: the iteration's fixed point depends on
        the starting table only through its biproportional equivalence
        class, so a previous fit of the same prior — which is exactly what
        the series loop and the streaming
        :meth:`~repro.estimation.base.Estimator.update` API pass — starts
        the next solve already scaled to nearly the right totals and
        converges in a handful of sweeps without changing the minimiser.
        The seed is only used when it shares the prior's support (a
        previous fit always does); otherwise the solve cold-starts from
        the prior, keeping the projection target intact.
        """
        self._warm_start = np.asarray(vector, dtype=float).copy()

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Fit the prior to the measured origin/destination totals."""
        if problem.origin_totals is None or problem.destination_totals is None:
            raise EstimationError(
                "Kruithof's method needs origin_totals and destination_totals"
            )
        prior = _resolve_prior(problem, self.prior)
        origins, destinations, origin_cols, destination_cols = problem.pair_positions()

        prior_matrix = np.zeros((len(origins), len(destinations)))
        prior_matrix[origin_cols, destination_cols] = prior
        warm = self._warm_start
        self._warm_start = None
        initial = None
        if (
            warm is not None
            and warm.shape == prior.shape
            and np.all(warm >= 0)
            and np.array_equal(warm > 0, prior > 0)
        ):
            initial = np.zeros_like(prior_matrix)
            initial[origin_cols, destination_cols] = warm
        row_targets = np.array([problem.origin_totals.get(name, 0.0) for name in origins])
        column_targets = np.array(
            [problem.destination_totals.get(name, 0.0) for name in destinations]
        )
        fit = kruithof_scaling(
            prior_matrix,
            row_targets,
            column_targets,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            initial=initial,
        )
        values = fit.values[origin_cols, destination_cols]
        return self._result(
            problem,
            values,
            iterations=fit.iterations,
            converged=fit.converged,
            max_violation=fit.max_violation,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
        )

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def _prior_series(self, problem: EstimationProblem) -> Optional[np.ndarray]:
        """Per-snapshot prior vectors ``(K, P)``; ``None`` for the WCB prior."""
        num_snapshots = problem.series.shape[0]
        if not isinstance(self.prior, str):
            return np.tile(_resolve_prior(problem, self.prior), (num_snapshots, 1))
        kind = self.prior.lower()
        if kind == "uniform":
            if problem.origin_totals_series is not None:
                totals = problem.origin_totals_series.sum(axis=1)
            elif problem.origin_totals is not None:
                totals = np.full(num_snapshots, float(sum(problem.origin_totals.values())))
            else:
                return None
            return np.repeat(totals[:, None] / problem.num_pairs, problem.num_pairs, axis=1)
        if kind == "gravity":
            return gravity_vector_series(problem)
        return None

    def _totals_series(self, problem: EstimationProblem, kind: str) -> np.ndarray:
        """Per-snapshot edge totals ``(K, N)`` in first-appearance label order."""
        num_snapshots = problem.series.shape[0]
        if kind == "origin":
            labels, series, names, fallback = (
                problem.origin_order(),
                problem.origin_totals_series,
                problem.origin_names,
                problem.origin_totals,
            )
        else:
            labels, series, names, fallback = (
                problem.destination_order(),
                problem.destination_totals_series,
                problem.destination_names,
                problem.destination_totals,
            )
        if series is not None:
            index = {name: col for col, name in enumerate(names)}
            columns = [index.get(label) for label in labels]
            totals = np.zeros((num_snapshots, len(labels)))
            for position, column in enumerate(columns):
                if column is not None:
                    totals[:, position] = series[:, column]
            return totals
        row = np.array([fallback.get(label, 0.0) for label in labels])
        return np.tile(row, (num_snapshots, 1))

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Batched biproportional fit: every snapshot iterated as one stack."""
        if problem.origin_totals is None and problem.origin_totals_series is None:
            raise EstimationError("Kruithof's method needs origin_totals and destination_totals")
        if problem.destination_totals is None and problem.destination_totals_series is None:
            raise EstimationError("Kruithof's method needs origin_totals and destination_totals")
        priors = self._prior_series(problem)
        if priors is None:
            return super().estimate_series(problem)
        num_snapshots = problem.series.shape[0]
        origins, destinations, row_positions, column_positions = problem.pair_positions()

        prior_stack = np.zeros((num_snapshots, len(origins), len(destinations)))
        prior_stack[:, row_positions, column_positions] = priors
        fit = kruithof_scaling_batch(
            prior_stack,
            self._totals_series(problem, "origin"),
            self._totals_series(problem, "destination"),
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        estimates = fit.values[:, row_positions, column_positions]
        return self._series_result(
            problem,
            estimates,
            batched=True,
            iterations=fit.iterations,
            converged=fit.converged,
            max_violation=fit.max_violation,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
        )


@register()
class KLProjectionEstimator(Estimator):
    """Krupp's generalisation: KL projection of a prior onto ``R s = t``.

    Parameters
    ----------
    prior:
        Prior vector or prior name (default ``"gravity"``).
    max_iterations, tolerance:
        Forwarded to
        :func:`repro.optimize.ipf.generalized_iterative_scaling`.
    """

    name = "kl-projection"

    def __init__(
        self,
        prior: str | np.ndarray = "gravity",
        max_iterations: int = 2000,
        tolerance: float = 1e-7,
    ) -> None:
        self.prior = prior
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Project the prior onto the link-load constraints."""
        prior = _resolve_prior(problem, self.prior)
        # ``native`` hands iterative scaling the CSR matrix on sparse
        # backends, so the projection never densifies the routing matrix.
        fit = generalized_iterative_scaling(
            prior,
            problem.routing.native,
            problem.snapshot,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        return self._result(
            problem,
            fit.values,
            iterations=fit.iterations,
            converged=fit.converged,
            max_violation=fit.max_violation,
            prior_kind=self.prior if isinstance(self.prior, str) else "explicit",
        )
