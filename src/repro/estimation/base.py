"""Common interfaces of the traffic-matrix estimation methods.

Every method in the paper consumes the same observable data — the routing
matrix and link-load measurements (a single snapshot or a time series),
possibly augmented with edge-node totals — and produces an estimated demand
vector.  This module defines:

* :class:`EstimationProblem` — the immutable bundle of observations handed
  to an estimator;
* :class:`EstimationResult` — the estimate plus method metadata and
  diagnostics;
* :class:`SeriesEstimationResult` — a batch of per-snapshot estimates
  produced by :meth:`Estimator.estimate_series`;
* :class:`Estimator` — the abstract interface (``estimate(problem)`` for a
  snapshot, ``estimate_series(problem)`` for a whole series) implemented by
  every method in :mod:`repro.estimation`.

The batched path matters at scale: ``estimate_series`` has a generic
per-snapshot fallback, but estimators override it where one factorisation
or one vectorised expression serves all ``K`` right-hand sides (Bayesian
factors its normal equations once; gravity and Kruithof evaluate every
snapshot's totals in single array operations).
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np
import scipy.sparse

from repro import telemetry
from repro.errors import EstimationError
from repro.routing.routing_matrix import RoutingMatrix
from repro.topology.elements import NodePair
from repro.traffic.matrix import TrafficMatrix

__all__ = [
    "EstimationProblem",
    "EstimationResult",
    "SeriesEstimationResult",
    "Estimator",
]


@dataclass(frozen=True)
class EstimationProblem:
    """Observable inputs to a traffic-matrix estimation method.

    Attributes
    ----------
    routing:
        The routing matrix ``R`` (links x pairs).
    link_loads:
        A single snapshot ``t`` of link loads (length ``L``).  Methods that
        work from a snapshot (gravity, Bayesian, entropy, worst-case bounds)
        use this field.
    link_load_series:
        Optional time series of link loads, shape ``(K, L)``.  Methods that
        need a series (fanout estimation, Vardi) use this field; when it is
        present but ``link_loads`` is not, the snapshot defaults to the
        series mean.
    origin_totals:
        Optional per-origin total ingress traffic ``t_e(n)`` for the
        snapshot.  Gravity models and Kruithof need these; they are
        observable from the access links of each PoP.
    destination_totals:
        Optional per-destination total egress traffic ``t_x(m)``.
    origin_totals_series:
        Optional time series of per-origin totals, shape ``(K, N_origins)``,
        with origins ordered as in ``origin_names``; used by fanout
        estimation and by the batched gravity/Kruithof paths.
    origin_names:
        Origin ordering for ``origin_totals_series``.
    destination_totals_series:
        Optional time series of per-destination totals, shape
        ``(K, N_destinations)``; used by the batched gravity/Kruithof paths.
    destination_names:
        Destination ordering for ``destination_totals_series``.
    """

    routing: RoutingMatrix
    link_loads: Optional[np.ndarray] = None
    link_load_series: Optional[np.ndarray] = None
    origin_totals: Optional[Mapping[str, float]] = None
    destination_totals: Optional[Mapping[str, float]] = None
    origin_totals_series: Optional[np.ndarray] = None
    origin_names: Optional[tuple[str, ...]] = None
    destination_totals_series: Optional[np.ndarray] = None
    destination_names: Optional[tuple[str, ...]] = None
    # Lazy per-problem caches (excluded from init/repr/eq; the frozen
    # dataclass machinery still initialises them via object.__setattr__).
    _augmented_cache: dict[tuple[bool, bool], tuple[Any, np.ndarray]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _shared_cache: dict[tuple, Any] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        num_links = self.routing.num_links
        if self.link_loads is not None:
            loads = np.asarray(self.link_loads, dtype=float)
            if loads.shape != (num_links,):
                raise EstimationError(
                    f"link_loads has shape {loads.shape}, expected ({num_links},)"
                )
            if np.any(loads < -1e-9):
                raise EstimationError("link loads must be non-negative")
            object.__setattr__(self, "link_loads", np.maximum(loads, 0.0))
        if self.link_load_series is not None:
            series = np.asarray(self.link_load_series, dtype=float)
            if series.ndim != 2 or series.shape[1] != num_links:
                raise EstimationError(
                    f"link_load_series has shape {series.shape}, expected (K, {num_links})"
                )
            if np.any(series < -1e-9):
                raise EstimationError("link load series must be non-negative")
            object.__setattr__(self, "link_load_series", np.maximum(series, 0.0))
        if self.link_loads is None and self.link_load_series is None:
            raise EstimationError("an estimation problem needs link loads or a series of them")
        if self.origin_totals_series is not None:
            if self.origin_names is None:
                raise EstimationError("origin_totals_series requires origin_names")
            series = np.asarray(self.origin_totals_series, dtype=float)
            if series.ndim != 2 or series.shape[1] != len(self.origin_names):
                raise EstimationError(
                    "origin_totals_series must have one column per origin name"
                )
            object.__setattr__(self, "origin_totals_series", series)
        if self.destination_totals_series is not None:
            if self.destination_names is None:
                raise EstimationError("destination_totals_series requires destination_names")
            series = np.asarray(self.destination_totals_series, dtype=float)
            if series.ndim != 2 or series.shape[1] != len(self.destination_names):
                raise EstimationError(
                    "destination_totals_series must have one column per destination name"
                )
            object.__setattr__(self, "destination_totals_series", series)

    # ------------------------------------------------------------------
    @property
    def pairs(self) -> tuple[NodePair, ...]:
        """The origin-destination pairs being estimated."""
        return self.routing.pairs

    @property
    def num_pairs(self) -> int:
        """Number of unknown demands."""
        return self.routing.num_pairs

    @property
    def snapshot(self) -> np.ndarray:
        """The link-load snapshot (mean of the series when only a series is given)."""
        if self.link_loads is not None:
            return self.link_loads
        # __post_init__ guarantees at least one of the two is present.
        assert self.link_load_series is not None
        return self.link_load_series.mean(axis=0)

    @property
    def series(self) -> np.ndarray:
        """The link-load series, raising if the problem only has a snapshot."""
        if self.link_load_series is None:
            raise EstimationError("this problem does not contain a link-load time series")
        return self.link_load_series

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots available (1 when only a single load vector exists)."""
        if self.link_load_series is None:
            return 1
        return self.link_load_series.shape[0]

    def total_traffic(self) -> float:
        """Total network traffic for the snapshot.

        Uses the origin totals when available (their sum is exactly the
        total traffic entering the network); otherwise falls back to a
        routing-aware estimate ``sum(t) / mean path length``, which is exact
        when all demands traverse the same number of links and a reasonable
        approximation otherwise.
        """
        if self.origin_totals is not None:
            return float(sum(self.origin_totals.values()))
        snapshot = self.snapshot
        path_lengths = self.routing.path_lengths()
        mean_length = float(path_lengths.mean()) if len(path_lengths) else 1.0
        if mean_length <= 0:
            raise EstimationError("routing matrix has empty paths; cannot infer total traffic")
        return float(snapshot.sum() / mean_length)

    # ------------------------------------------------------------------
    # shared per-problem workspace
    # ------------------------------------------------------------------
    def shared(self, key: tuple, builder: Callable[[], Any]) -> Any:
        """Compute-once workspace shared by every estimator run on this problem.

        ``sweep()`` and ``method_comparison`` hand the *same* problem object
        to K methods, most of which redo identical setup — the gravity
        prior, pair-position index arrays, per-snapshot prior series.  This
        cache lets that setup run once per problem instead of once per
        method: the first caller pays ``builder()``, later callers get the
        cached value.  Cached arrays are returned as-is, so treat them as
        read-only (the prior helpers mark theirs immutable).
        """
        cache = self._shared_cache
        if key in cache:
            telemetry.counter_inc("workspace.cache_hits")
            return cache[key]
        telemetry.counter_inc("workspace.cache_misses")
        cache[key] = builder()
        return cache[key]

    def pair_positions(self) -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray, np.ndarray]:
        """``(origins, destinations, origin_cols, destination_cols)`` for the pairs.

        ``origin_cols[p]`` / ``destination_cols[p]`` are the indices of pair
        ``p``'s origin and destination within the first-appearance label
        orders — the index arrays every vectorised totals/gravity/Kruithof
        path needs, built once per problem.
        """

        def build() -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray, np.ndarray]:
            origins = self.origin_order()
            destinations = self.destination_order()
            origin_index = {name: idx for idx, name in enumerate(origins)}
            destination_index = {name: idx for idx, name in enumerate(destinations)}
            origin_cols = np.array([origin_index[pair.origin] for pair in self.pairs])
            destination_cols = np.array(
                [destination_index[pair.destination] for pair in self.pairs]
            )
            origin_cols.setflags(write=False)
            destination_cols.setflags(write=False)
            return origins, destinations, origin_cols, destination_cols

        return self.shared(("pair_positions",), build)

    # ------------------------------------------------------------------
    # edge-total incidence structure
    # ------------------------------------------------------------------
    def origin_order(self) -> tuple[str, ...]:
        """Origins in first-appearance pair order (the canonical row order)."""
        return tuple(dict.fromkeys(pair.origin for pair in self.pairs))

    def destination_order(self) -> tuple[str, ...]:
        """Destinations in first-appearance pair order."""
        return tuple(dict.fromkeys(pair.destination for pair in self.pairs))

    def _incidence_block(self, labels: tuple[str, ...], attribute: str) -> np.ndarray:
        """0/1 block mapping pairs to their origin (or destination) row."""
        index = {name: row for row, name in enumerate(labels)}
        block = np.zeros((len(labels), self.num_pairs))
        rows = [index[getattr(pair, attribute)] for pair in self.pairs]
        block[rows, np.arange(self.num_pairs)] = 1.0
        return block

    def augmented_system(
        self,
        include_origin_totals: bool = True,
        include_destination_totals: bool = True,
    ) -> tuple[Union[np.ndarray, scipy.sparse.spmatrix], np.ndarray]:
        """Routing constraints augmented with edge-total rows.

        The paper's network view includes the access/peering links over
        which traffic enters and exits, so the observable data also contains
        the per-node totals ``t_e(n)`` and ``t_x(m)``.  Each total adds one
        linear constraint: the sum of demands originating at (terminating
        at) the node equals the measured total.  The worst-case-bound
        estimator uses this augmented system; other methods may opt in.

        Returns ``(matrix, rhs)`` where ``matrix`` stacks the routing matrix
        and the requested total rows and ``rhs`` stacks the link-load
        snapshot and the totals.  The matrix is dense for a dense routing
        backend and a CSR sparse matrix for a sparse one; results are cached
        per flag combination, so treat them as read-only.
        """
        key = (bool(include_origin_totals), bool(include_destination_totals))
        cached = self._augmented_cache.get(key)
        if cached is not None:
            return cached
        sparse = self.routing.backend_kind == "sparse"
        rows: list[Any] = [
            self.routing.backend.raw if sparse else self.routing.matrix
        ]
        rhs = [self.snapshot]
        if include_origin_totals and self.origin_totals is not None:
            origins = self.origin_order()
            rows.append(self._incidence_block(origins, "origin"))
            rhs.append(np.array([self.origin_totals.get(origin, 0.0) for origin in origins]))
        if include_destination_totals and self.destination_totals is not None:
            destinations = self.destination_order()
            rows.append(self._incidence_block(destinations, "destination"))
            rhs.append(
                np.array([self.destination_totals.get(dest, 0.0) for dest in destinations])
            )
        if sparse:
            matrix: Union[np.ndarray, scipy.sparse.spmatrix] = scipy.sparse.vstack(
                [scipy.sparse.csr_matrix(block) for block in rows], format="csr"
            )
        else:
            matrix = np.vstack(rows)
        result = (matrix, np.concatenate(rhs))
        self._augmented_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # derived problems
    # ------------------------------------------------------------------
    def with_snapshot(self, link_loads: np.ndarray) -> "EstimationProblem":
        """Return a copy of the problem with a different load snapshot."""
        return EstimationProblem(
            routing=self.routing,
            link_loads=np.asarray(link_loads, dtype=float),
            link_load_series=self.link_load_series,
            origin_totals=self.origin_totals,
            destination_totals=self.destination_totals,
            origin_totals_series=self.origin_totals_series,
            origin_names=self.origin_names,
            destination_totals_series=self.destination_totals_series,
            destination_names=self.destination_names,
        )

    def at_snapshot(self, index: int) -> "EstimationProblem":
        """Single-snapshot sub-problem for series index ``index``.

        The link loads are the series row ``index``; per-snapshot edge
        totals are taken from the totals series when available (falling back
        to the problem-level totals otherwise).  This is what the generic
        :meth:`Estimator.estimate_series` loop feeds to ``estimate``, and
        what the vectorised overrides must match.
        """
        series = self.series
        num = series.shape[0]
        if not 0 <= index < num:
            raise EstimationError(f"snapshot index {index} out of range for {num} snapshots")
        origin_totals = self.origin_totals
        if self.origin_totals_series is not None:
            # __post_init__ guarantees the names accompany the series.
            assert self.origin_names is not None
            origin_totals = dict(
                zip(self.origin_names, self.origin_totals_series[index].tolist())
            )
        destination_totals = self.destination_totals
        if self.destination_totals_series is not None:
            assert self.destination_names is not None
            destination_totals = dict(
                zip(self.destination_names, self.destination_totals_series[index].tolist())
            )
        return EstimationProblem(
            routing=self.routing,
            link_loads=series[index],
            origin_totals=origin_totals,
            destination_totals=destination_totals,
        )


@dataclass(frozen=True)
class EstimationResult:
    """Outcome of running one estimation method.

    Attributes
    ----------
    estimate:
        The estimated traffic matrix.
    method:
        Human-readable method name (e.g. ``"bayesian"``).
    diagnostics:
        Free-form numeric diagnostics: residual norms, iteration counts,
        chosen regularisation parameters, per-pair bounds, ...
    """

    estimate: TrafficMatrix
    method: str
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def vector(self) -> np.ndarray:
        """The estimated demand vector."""
        return self.estimate.vector

    def residual_norm(self, problem: EstimationProblem) -> float:
        """``||R s_hat - t||_2`` of the estimate against the problem snapshot."""
        return float(np.linalg.norm(problem.routing.link_loads(self.vector) - problem.snapshot))


@dataclass(frozen=True)
class SeriesEstimationResult:
    """Per-snapshot estimates for a whole link-load series.

    Attributes
    ----------
    estimates:
        Array of shape ``(K, num_pairs)``: one demand vector per snapshot.
    pairs:
        The pair ordering of the columns.
    method:
        Name of the estimation method that produced the batch.
    diagnostics:
        Free-form diagnostics of the batched run (e.g. how many snapshots
        took the fast path of a factor-once solver).
    """

    estimates: np.ndarray
    pairs: tuple[NodePair, ...]
    method: str
    diagnostics: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return self.estimates.shape[0]

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots estimated."""
        return self.estimates.shape[0]

    def matrix(self, index: int) -> TrafficMatrix:
        """The estimate of snapshot ``index`` as a :class:`TrafficMatrix`."""
        num = self.estimates.shape[0]
        if not 0 <= index < num:
            raise EstimationError(f"snapshot index {index} out of range for {num} snapshots")
        return TrafficMatrix(self.pairs, self.estimates[index])

    def mean_matrix(self) -> TrafficMatrix:
        """Mean of the per-snapshot estimates (comparable to a window truth)."""
        return TrafficMatrix(self.pairs, self.estimates.mean(axis=0))

    def result(self, index: int) -> EstimationResult:
        """Wrap snapshot ``index`` as a plain :class:`EstimationResult`."""
        return EstimationResult(estimate=self.matrix(index), method=self.method)


#: Historic diagnostics spellings mapped to the canonical key names the
#: telemetry layer exposes as span attributes.  The in-tree estimators all
#: emit canonical keys; the aliases keep traces readable should an external
#: estimator still use the old names.
_DIAGNOSTIC_ALIASES = {
    "solver_iterations": "iterations",
    "solver_converged": "converged",
    "link_residual": "residual_norm",
}


def _span_diagnostics(diagnostics: Mapping[str, Any]) -> dict[str, Any]:
    """Scalar diagnostics under canonical names, for span attributes."""
    folded: dict[str, Any] = {}
    for key, value in diagnostics.items():
        if isinstance(value, (bool, np.bool_)):
            folded[_DIAGNOSTIC_ALIASES.get(key, key)] = bool(value)
        elif isinstance(value, (int, np.integer)):
            folded[_DIAGNOSTIC_ALIASES.get(key, key)] = int(value)
        elif isinstance(value, (float, np.floating)):
            folded[_DIAGNOSTIC_ALIASES.get(key, key)] = float(value)
        elif isinstance(value, str):
            folded[_DIAGNOSTIC_ALIASES.get(key, key)] = value
    return folded


def _traced_estimate(impl: Callable[..., Any], kind: str) -> Callable[..., Any]:
    """Wrap an ``estimate``/``estimate_series`` override in a stage span.

    The wrapper adds one flag check when telemetry is disabled.  When
    enabled it opens ``span(kind, method=..., n_pairs=...)`` around the
    call and folds the result's scalar diagnostics into the span
    attributes, so every method's convergence data lands on the trace
    without per-method instrumentation.
    """

    @functools.wraps(impl)
    def traced(self: "Estimator", problem: "EstimationProblem", *args: Any, **kwargs: Any) -> Any:
        if not telemetry.is_enabled():
            return impl(self, problem, *args, **kwargs)
        with telemetry.span(
            kind, method=self.name, n_pairs=problem.num_pairs
        ) as active:
            result = impl(self, problem, *args, **kwargs)
            diagnostics = getattr(result, "diagnostics", None)
            if diagnostics:
                active.set_attributes(**_span_diagnostics(diagnostics))
            return result

    traced._repro_span_wrapped = True  # type: ignore[attr-defined]
    return traced


class Estimator(abc.ABC):
    """Abstract base class of all traffic-matrix estimation methods."""

    #: Short identifier used in result objects, summary tables and the
    #: estimator registry (:mod:`repro.estimation.registry`).
    name: str = "estimator"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        """Auto-span every concrete ``estimate``/``estimate_series`` override.

        Each subclass-defined entry point is wrapped by
        :func:`_traced_estimate` exactly once (re-wrapping on further
        subclassing is prevented by the ``_repro_span_wrapped`` marker, and
        inherited implementations are already wrapped on the class that
        defined them).
        """
        super().__init_subclass__(**kwargs)
        for attr in ("estimate", "estimate_series"):
            impl = cls.__dict__.get(attr)
            if (
                impl is not None
                and callable(impl)
                and not getattr(impl, "__isabstractmethod__", False)
                and not getattr(impl, "_repro_span_wrapped", False)
            ):
                setattr(cls, attr, _traced_estimate(impl, attr))

    @abc.abstractmethod
    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Estimate the traffic matrix for ``problem``."""

    def estimate_series(self, problem: EstimationProblem) -> SeriesEstimationResult:
        """Estimate every snapshot of the problem's link-load series.

        The generic implementation estimates each snapshot independently via
        :meth:`EstimationProblem.at_snapshot`; subclasses override it where
        one factorisation or one vectorised expression serves all ``K``
        right-hand sides.  Overrides must agree with this loop on the same
        problem (they are the fast path, not a different method).

        Estimators exposing a ``set_warm_start(vector)`` method receive the
        previous snapshot's solution before each subsequent snapshot:
        consecutive snapshots are highly correlated, so iterative solvers
        (the Vardi QP, the entropy Newton refinement) converge in a
        fraction of their cold-start iterations without changing the
        minimiser they converge to.
        """
        series = problem.series
        num_snapshots = series.shape[0]
        estimates = np.empty((num_snapshots, problem.num_pairs))
        set_warm_start = getattr(self, "set_warm_start", None)
        for index in range(num_snapshots):
            estimates[index] = self.estimate(problem.at_snapshot(index)).vector
            # Seed the next snapshot only — no trailing call, so the
            # estimator carries no warm-start state out of this loop.
            if set_warm_start is not None and index + 1 < num_snapshots:
                set_warm_start(estimates[index])
        return self._series_result(problem, estimates, batched=False)

    def update(
        self, problem: EstimationProblem, previous: Optional[np.ndarray] = None
    ) -> EstimationResult:
        """Incrementally estimate one new snapshot, seeded by ``previous``.

        This is the first-class streaming form of the warm-start machinery
        the series loop uses internally: ``previous`` (typically the last
        poll's estimate) is handed to :meth:`set_warm_start` when the
        estimator exposes one, then :meth:`estimate` runs on the new
        snapshot.  For the strictly convex solvers (entropy, Bayesian,
        Vardi, tomogravity) the warm start changes only the iteration
        count, never the minimiser — so a stream of ``update`` calls
        converges to exactly what per-snapshot cold solves would produce,
        at a fraction of the cost.  Estimators without warm-start support
        degrade to a plain cold :meth:`estimate`.

        Calling ``update(problem, estimates[k - 1])`` for ``k = 0 .. K-1``
        reproduces the generic :meth:`estimate_series` loop poll by poll;
        :class:`repro.streaming.StreamingEstimator` drives exactly this
        API from live poll rounds.
        """
        if previous is not None:
            setter = getattr(self, "set_warm_start", None)
            if setter is not None:
                setter(np.asarray(previous, dtype=float))
        return self.estimate(problem)

    def __call__(self, problem: EstimationProblem) -> EstimationResult:
        return self.estimate(problem)

    def _result(
        self,
        problem: EstimationProblem,
        values: np.ndarray,
        **diagnostics: Any,
    ) -> EstimationResult:
        """Package a demand vector into an :class:`EstimationResult`."""
        values = np.asarray(values, dtype=float)
        if values.shape != (problem.num_pairs,):
            raise EstimationError(
                f"{self.name} produced {values.shape} values for {problem.num_pairs} pairs"
            )
        matrix = TrafficMatrix(problem.pairs, np.maximum(values, 0.0))
        return EstimationResult(estimate=matrix, method=self.name, diagnostics=dict(diagnostics))

    def _series_result(
        self,
        problem: EstimationProblem,
        estimates: np.ndarray,
        **diagnostics: Any,
    ) -> SeriesEstimationResult:
        """Package a ``(K, num_pairs)`` batch into a :class:`SeriesEstimationResult`."""
        estimates = np.asarray(estimates, dtype=float)
        if estimates.ndim != 2 or estimates.shape[1] != problem.num_pairs:
            raise EstimationError(
                f"{self.name} produced a {estimates.shape} batch for "
                f"{problem.num_pairs} pairs"
            )
        return SeriesEstimationResult(
            estimates=np.maximum(estimates, 0.0),
            pairs=problem.pairs,
            method=self.name,
            diagnostics=dict(diagnostics),
        )
