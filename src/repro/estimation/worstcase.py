"""Worst-case bounds on demands (paper Section 4.3.1) and the WCB prior.

With no statistical assumptions at all, a single link-load snapshot confines
the demand vector to the polytope ``{s >= 0 : R s = t}``.  The tightest
possible deterministic statement about an individual demand ``s_p`` is then
the pair of linear programs

    ``maximise / minimise s_p  subject to  R s = t, s >= 0``.

The paper computes these bounds for every demand, observes that they are
usually loose but non-trivial, and — importantly — finds that the *midpoint*
of each bound pair is a surprisingly good estimate, good enough to serve as
the prior of the regularised methods (its "WCB prior", Figures 9 and 15).

:class:`WorstCaseBoundsEstimator` computes the bounds and uses the midpoints
as its point estimate; the bounds themselves are returned in the result
diagnostics under ``"lower_bounds"`` and ``"upper_bounds"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import EstimationError, SolverError
from repro.estimation.base import EstimationProblem, EstimationResult, Estimator
from repro.estimation.registry import register
from repro.optimize.linear_program import solve_linear_program
from repro.topology.elements import NodePair

__all__ = ["DemandBounds", "WorstCaseBoundsEstimator", "worst_case_bounds"]


@dataclass(frozen=True)
class DemandBounds:
    """Lower and upper worst-case bounds for one demand."""

    pair: NodePair
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower < -1e-9:
            raise EstimationError(f"negative lower bound for {self.pair}")
        if self.upper < self.lower - 1e-6:
            raise EstimationError(f"upper bound below lower bound for {self.pair}")

    @property
    def midpoint(self) -> float:
        """The centre of the bound interval (the WCB prior value)."""
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        """Width of the interval; zero means the demand is exactly identified."""
        return self.upper - self.lower

    def is_exact(self, tolerance: float = 1e-6) -> bool:
        """Whether the bounds pin the demand down to within ``tolerance``."""
        return self.width <= tolerance

    def contains(self, value: float, tolerance: float = 1e-6) -> bool:
        """Whether ``value`` lies inside the interval (with tolerance)."""
        return self.lower - tolerance <= value <= self.upper + tolerance


def worst_case_bounds(
    problem: EstimationProblem,
    pairs: Optional[Sequence[NodePair]] = None,
    use_edge_totals: bool = True,
) -> list[DemandBounds]:
    """Compute the per-demand LP bounds for ``pairs`` (default: all pairs).

    Two linear programs are solved per demand, which is the computational
    cost the paper warns about; restricting ``pairs`` to the large demands is
    the standard mitigation.

    With ``use_edge_totals`` (the default) the constraint set is the
    augmented system including the per-node ingress/egress totals, matching
    the paper's network view where access and peering links are measured
    like any other link; without them the bounds come from interior links
    only and are considerably looser.
    """
    routing = problem.routing
    if use_edge_totals:
        constraint_matrix, constraint_rhs = problem.augmented_system()
    else:
        if routing.backend_kind == "sparse":
            constraint_matrix = routing.backend.raw
        else:
            constraint_matrix = routing.matrix
        constraint_rhs = problem.snapshot
    target_pairs = list(pairs) if pairs is not None else list(problem.pairs)
    bounds: list[DemandBounds] = []
    for pair in target_pairs:
        index = routing.pair_index(pair)
        cost = np.zeros(routing.num_pairs)
        cost[index] = 1.0
        try:
            lower = solve_linear_program(
                cost, constraint_matrix, constraint_rhs, maximise=False
            ).objective
            upper = solve_linear_program(
                cost, constraint_matrix, constraint_rhs, maximise=True
            ).objective
        except SolverError as exc:
            raise EstimationError(
                f"worst-case bound LP failed for pair {pair}: {exc}"
            ) from exc
        lower = max(0.0, lower)
        upper = max(lower, upper)
        bounds.append(DemandBounds(pair=pair, lower=lower, upper=upper))
    return bounds


@register()
class WorstCaseBoundsEstimator(Estimator):
    """Point estimation by the midpoints of the worst-case bounds.

    Parameters
    ----------
    pairs:
        Optional subset of pairs to bound exactly; the remaining pairs fall
        back to an even split of the residual traffic (cheap and only used
        for small demands).  By default every pair is bounded.
    use_edge_totals:
        Include the per-node ingress/egress totals in the constraint set
        (default ``True``; see :func:`worst_case_bounds`).
    """

    name = "worst-case-bounds"

    def __init__(
        self,
        pairs: Optional[Sequence[NodePair]] = None,
        use_edge_totals: bool = True,
    ) -> None:
        self.pairs = tuple(pairs) if pairs is not None else None
        self.use_edge_totals = bool(use_edge_totals)

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Bound every requested demand and return the interval midpoints."""
        target_pairs = list(self.pairs) if self.pairs is not None else list(problem.pairs)
        bounds = worst_case_bounds(problem, target_pairs, use_edge_totals=self.use_edge_totals)
        by_pair = {b.pair: b for b in bounds}
        values = np.zeros(problem.num_pairs)
        lower_bounds = np.zeros(problem.num_pairs)
        upper_bounds = np.full(problem.num_pairs, np.nan)
        for idx, pair in enumerate(problem.pairs):
            if pair in by_pair:
                values[idx] = by_pair[pair].midpoint
                lower_bounds[idx] = by_pair[pair].lower
                upper_bounds[idx] = by_pair[pair].upper
        exact = sum(1 for b in bounds if b.is_exact())
        return self._result(
            problem,
            values,
            lower_bounds=lower_bounds,
            upper_bounds=upper_bounds,
            num_bounded=len(bounds),
            num_exact=exact,
            mean_width=float(np.mean([b.width for b in bounds])) if bounds else 0.0,
        )
