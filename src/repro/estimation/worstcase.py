"""Worst-case bounds on demands (paper Section 4.3.1) and the WCB prior.

With no statistical assumptions at all, a single link-load snapshot confines
the demand vector to the polytope ``{s >= 0 : R s = t}``.  The tightest
possible deterministic statement about an individual demand ``s_p`` is then
the pair of linear programs

    ``maximise / minimise s_p  subject to  R s = t, s >= 0``.

The paper computes these bounds for every demand, observes that they are
usually loose but non-trivial, and — importantly — finds that the *midpoint*
of each bound pair is a surprisingly good estimate, good enough to serve as
the prior of the regularised methods (its "WCB prior", Figures 9 and 15).

Two LPs per pair is the computational cost the paper warns about.  The
heavy lifting now happens in
:func:`repro.optimize.linear_program.bound_variables_batch`: the constraint
model is built once, rank-pinned and combinatorially tight pairs are
resolved without any LP, and the surviving LPs run on an incremental HiGHS
model (optionally fanned out over a process pool via ``n_jobs``).  The
paper's own mitigation — bounding only the large demands — is available
through :func:`select_large_pairs` and the estimator's ``max_pairs`` /
``top_fraction`` parameters; pairs left unbounded fall back to an even
split of the residual traffic.

:class:`WorstCaseBoundsEstimator` computes the bounds and uses the midpoints
as its point estimate; the bounds themselves are returned in the result
diagnostics under ``"lower_bounds"`` and ``"upper_bounds"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import EstimationError, SolverError
from repro.estimation.base import EstimationProblem, EstimationResult, Estimator
from repro.estimation.registry import register
from repro.optimize.linear_program import bound_variables_batch, presolve_variable_bounds
from repro.topology.elements import NodePair

__all__ = [
    "DemandBounds",
    "WorstCaseBoundsEstimator",
    "worst_case_bounds",
    "select_large_pairs",
]


@dataclass(frozen=True)
class DemandBounds:
    """Lower and upper worst-case bounds for one demand."""

    pair: NodePair
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower < -1e-9:
            raise EstimationError(f"negative lower bound for {self.pair}")
        if self.upper < self.lower - 1e-6:
            raise EstimationError(f"upper bound below lower bound for {self.pair}")

    @property
    def midpoint(self) -> float:
        """The centre of the bound interval (the WCB prior value)."""
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        """Width of the interval; zero means the demand is exactly identified."""
        return self.upper - self.lower

    def is_exact(self, tolerance: float = 1e-6) -> bool:
        """Whether the bounds pin the demand down to within ``tolerance``."""
        return self.width <= tolerance

    def contains(self, value: float, tolerance: float = 1e-6) -> bool:
        """Whether ``value`` lies inside the interval (with tolerance)."""
        return self.lower - tolerance <= value <= self.upper + tolerance


def _constraint_system(problem: EstimationProblem, use_edge_totals: bool):
    """The (matrix, rhs) pair the bounds are computed over."""
    routing = problem.routing
    if use_edge_totals:
        return problem.augmented_system()
    if routing.backend_kind == "sparse":
        return routing.backend.raw, problem.snapshot
    return routing.matrix, problem.snapshot


def worst_case_bounds(
    problem: EstimationProblem,
    pairs: Optional[Sequence[NodePair]] = None,
    use_edge_totals: bool = True,
    n_jobs: Optional[int] = 1,
) -> list[DemandBounds]:
    """Compute the per-demand LP bounds for ``pairs`` (default: all pairs).

    The bounds come from the batched engine
    (:func:`repro.optimize.linear_program.bound_variables_batch`): one
    constraint model, structural presolve, and incremental LP re-solves for
    whatever survives — restricting ``pairs`` to the large demands (see
    :func:`select_large_pairs`) remains the paper's standard mitigation on
    top of that.

    With ``use_edge_totals`` (the default) the constraint set is the
    augmented system including the per-node ingress/egress totals, matching
    the paper's network view where access and peering links are measured
    like any other link; without them the bounds come from interior links
    only and are considerably looser.

    Parameters
    ----------
    problem, pairs, use_edge_totals:
        As before.
    n_jobs:
        Worker processes for the surviving LPs (``1`` in-process,
        ``None`` = all cores); forwarded to the batch engine.
    """
    routing = problem.routing
    constraint_matrix, constraint_rhs = _constraint_system(problem, use_edge_totals)
    target_pairs = list(pairs) if pairs is not None else list(problem.pairs)
    indices = [routing.pair_index(pair) for pair in target_pairs]
    try:
        batch = bound_variables_batch(
            indices, constraint_matrix, constraint_rhs, n_jobs=n_jobs
        )
    except SolverError as exc:
        raise EstimationError(f"worst-case bound LPs failed: {exc}") from exc
    bounds: list[DemandBounds] = []
    for pair, lower, upper in zip(target_pairs, batch.lower, batch.upper):
        lower = max(0.0, float(lower))
        upper = max(lower, float(upper))
        bounds.append(DemandBounds(pair=pair, lower=lower, upper=upper))
    return bounds


def select_large_pairs(
    problem: EstimationProblem,
    max_pairs: Optional[int] = None,
    top_fraction: Optional[float] = None,
    use_edge_totals: bool = True,
) -> list[NodePair]:
    """The pairs most likely to carry large demands (the paper's subset).

    Section 4.3.1's mitigation for the LP cost is to bound only the large
    demands.  The selection proxy here is the *combinatorial upper bound*
    of each pair — the minimum load over the rows it traverses — which
    needs no LP and no prior: a pair whose every link carries little
    traffic cannot be large.  The ``max_pairs`` and/or ``top_fraction``
    pairs with the largest proxies are selected; the result is returned in
    the problem's canonical pair order (not by proxy size), matching how
    every other pair list in the library is ordered.
    """
    if max_pairs is None and top_fraction is None:
        return list(problem.pairs)
    if max_pairs is not None and max_pairs < 1:
        raise EstimationError("max_pairs must be at least 1")
    if top_fraction is not None and not 0 < top_fraction <= 1:
        raise EstimationError("top_fraction must lie in (0, 1]")
    matrix, rhs = _constraint_system(problem, use_edge_totals)
    _, upper, _ = presolve_variable_bounds(matrix, rhs)
    routing = problem.routing
    proxy = np.array([upper[routing.pair_index(pair)] for pair in problem.pairs])
    proxy = np.where(np.isfinite(proxy), proxy, np.inf)
    keep = len(proxy)
    if top_fraction is not None:
        keep = min(keep, max(1, int(round(top_fraction * len(proxy)))))
    if max_pairs is not None:
        keep = min(keep, max_pairs)
    order = np.argsort(-proxy, kind="stable")[:keep]
    return [problem.pairs[idx] for idx in sorted(order.tolist())]


@register()
class WorstCaseBoundsEstimator(Estimator):
    """Point estimation by the midpoints of the worst-case bounds.

    Parameters
    ----------
    pairs:
        Optional explicit subset of pairs to bound exactly.
    max_pairs, top_fraction:
        Bound only the ``max_pairs`` (or ``top_fraction`` of all) pairs
        with the largest combinatorial upper bounds — the paper's
        large-demands-only mitigation (see :func:`select_large_pairs`).
        Ignored when ``pairs`` is given.  By default every pair is bounded.
    use_edge_totals:
        Include the per-node ingress/egress totals in the constraint set
        (default ``True``; see :func:`worst_case_bounds`).
    n_jobs:
        Worker processes for the LP batch (``1`` in-process, ``None`` =
        all cores).

    Pairs left outside the bounded subset fall back to an even split of
    the residual traffic (total traffic minus the bounded midpoints) —
    cheap, and only used for the small demands the subset excludes.  Their
    entries in the ``lower_bounds`` / ``upper_bounds`` diagnostics stay
    ``0`` / ``NaN`` since no bound was computed for them.
    """

    name = "worst-case-bounds"

    def __init__(
        self,
        pairs: Optional[Sequence[NodePair]] = None,
        use_edge_totals: bool = True,
        max_pairs: Optional[int] = None,
        top_fraction: Optional[float] = None,
        n_jobs: Optional[int] = 1,
    ) -> None:
        self.pairs = tuple(pairs) if pairs is not None else None
        self.use_edge_totals = bool(use_edge_totals)
        if max_pairs is not None and max_pairs < 1:
            raise EstimationError("max_pairs must be at least 1")
        if top_fraction is not None and not 0 < top_fraction <= 1:
            raise EstimationError("top_fraction must lie in (0, 1]")
        self.max_pairs = max_pairs
        self.top_fraction = top_fraction
        self.n_jobs = n_jobs

    def _target_pairs(self, problem: EstimationProblem) -> list[NodePair]:
        if self.pairs is not None:
            return list(self.pairs)
        if self.max_pairs is None and self.top_fraction is None:
            return list(problem.pairs)
        return select_large_pairs(
            problem,
            max_pairs=self.max_pairs,
            top_fraction=self.top_fraction,
            use_edge_totals=self.use_edge_totals,
        )

    def estimate(self, problem: EstimationProblem) -> EstimationResult:
        """Bound every selected demand and return the interval midpoints.

        Unselected pairs receive an even share of the residual traffic:
        the problem's total traffic minus the sum of the bounded midpoints,
        clipped at zero.
        """
        target_pairs = self._target_pairs(problem)
        bounds = worst_case_bounds(
            problem,
            target_pairs,
            use_edge_totals=self.use_edge_totals,
            n_jobs=self.n_jobs,
        )
        by_pair = {b.pair: b for b in bounds}
        values = np.zeros(problem.num_pairs)
        lower_bounds = np.zeros(problem.num_pairs)
        upper_bounds = np.full(problem.num_pairs, np.nan)
        unbounded: list[int] = []
        for idx, pair in enumerate(problem.pairs):
            if pair in by_pair:
                values[idx] = by_pair[pair].midpoint
                lower_bounds[idx] = by_pair[pair].lower
                upper_bounds[idx] = by_pair[pair].upper
            else:
                unbounded.append(idx)
        fallback_share = 0.0
        if unbounded:
            residual = max(0.0, problem.total_traffic() - float(values.sum()))
            fallback_share = residual / len(unbounded)
            values[unbounded] = fallback_share
        exact = sum(1 for b in bounds if b.is_exact())
        return self._result(
            problem,
            values,
            lower_bounds=lower_bounds,
            upper_bounds=upper_bounds,
            num_bounded=len(bounds),
            num_exact=exact,
            num_fallback=len(unbounded),
            fallback_share=fallback_share,
            mean_width=float(np.mean([b.width for b in bounds])) if bounds else 0.0,
        )
