"""Prior construction for the regularised estimators.

The Bayesian and entropy methods both need a prior traffic matrix
``s^(p)``; the paper compares three choices:

* the **uniform** prior — total traffic spread evenly over all pairs, the
  least informative option;
* the **gravity** prior — the simple gravity model of
  :mod:`repro.estimation.gravity`;
* the **worst-case-bound (WCB)** prior — the midpoints of the per-demand LP
  bounds of :mod:`repro.estimation.worstcase`, which the paper found to be a
  significantly better prior than gravity on its data.

:func:`make_prior` builds any of them from an
:class:`~repro.estimation.base.EstimationProblem`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import EstimationProblem
from repro.estimation.gravity import gravity_vector
from repro.estimation.worstcase import WorstCaseBoundsEstimator
from repro.topology.elements import NodePair

__all__ = ["uniform_prior", "gravity_prior", "worst_case_bound_prior", "make_prior"]


def uniform_prior(problem: EstimationProblem) -> np.ndarray:
    """Spread the total traffic evenly over every origin-destination pair."""
    if problem.num_pairs == 0:
        raise EstimationError("cannot build a prior for a problem with no pairs")
    total = problem.total_traffic()
    return np.full(problem.num_pairs, total / problem.num_pairs)


def gravity_prior(problem: EstimationProblem) -> np.ndarray:
    """The simple gravity model as a prior vector."""
    return gravity_vector(problem)


def worst_case_bound_prior(
    problem: EstimationProblem,
    pairs: Optional[Sequence[NodePair]] = None,
) -> np.ndarray:
    """Midpoints of the worst-case bounds as a prior vector.

    Parameters
    ----------
    problem:
        The estimation problem.
    pairs:
        Optional subset of pairs to bound (the rest get zero prior); by
        default all pairs are bounded, which costs two LPs per pair.
    """
    estimator = WorstCaseBoundsEstimator(pairs=pairs)
    return estimator.estimate(problem).vector


def make_prior(problem: EstimationProblem, kind: str = "gravity") -> np.ndarray:
    """Build a prior vector by name.

    ``kind`` is one of ``"uniform"``, ``"gravity"`` or ``"wcb"`` /
    ``"worst-case"``.

    Priors are cached (read-only) in the problem's shared workspace, so
    the K regularised methods of a sweep sharing one prior kind pay its
    construction — two LPs per pair for ``"wcb"`` — once per problem, not
    once per method.
    """
    normalized = kind.lower()
    if normalized == "uniform":
        builder = uniform_prior
    elif normalized == "gravity":
        builder = gravity_prior
    elif normalized in ("wcb", "worst-case", "worst_case_bounds"):
        builder = worst_case_bound_prior
        normalized = "wcb"  # one cache key for every alias spelling
    else:
        raise EstimationError(f"unknown prior kind {kind!r}")

    def cached() -> np.ndarray:
        prior = np.array(builder(problem))
        prior.setflags(write=False)
        return prior

    return problem.shared(("prior", normalized), cached)
