"""Figure 12 — Vardi MRE vs. window size on synthetic Poisson traffic.

Even when the Poisson assumption holds exactly, the covariance estimate
converges slowly: hundreds of samples are needed for a usable error level.
"""

from __future__ import annotations

from conftest import run_once, save_result
from repro.evaluation.figures import vardi_synthetic_mre_vs_window

WINDOWS = (25, 50, 100, 200, 400, 700, 1000)


def test_fig12_vardi_synthetic(benchmark, europe, america):
    def run():
        return {
            "europe": vardi_synthetic_mre_vs_window(europe, window_sizes=WINDOWS, seed=7),
            "america": vardi_synthetic_mre_vs_window(america, window_sizes=WINDOWS, seed=7),
        }

    data = run_once(benchmark, run)
    save_result("fig12_vardi_synthetic", data)
    for region in ("europe", "america"):
        series = data[region]
        printable = {int(w): round(float(m), 3) for w, m in zip(series["window_sizes"], series["mre"])}
        print(f"\n[Fig 12] {region} Vardi MRE vs window (true Poisson data): {printable}")
        assert series["mre"][-1] < series["mre"][0]
        # Small windows are far from converged even under the correct model.
        assert series["mre"][0] > 1.5 * series["mre"][-1]
