"""Figure 2 — cumulative demand distribution.

The paper finds the top 20 % of demands carry roughly 80 % of the traffic in
both subnetworks.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import cumulative_demand_distribution


def bench_fig02(scenario):
    data = cumulative_demand_distribution(scenario)
    share_at_20 = float(np.interp(0.2, data["rank_fraction"], data["traffic_fraction"]))
    return {
        "rank_fraction": data["rank_fraction"],
        "traffic_fraction": data["traffic_fraction"],
        "top20_share": share_at_20,
    }


def test_fig02_cumulative_demand_distribution(benchmark, europe, america):
    def run():
        return {"europe": bench_fig02(europe), "america": bench_fig02(america)}

    data = run_once(benchmark, run)
    save_result("fig02_cumulative", data)
    print(
        f"\n[Fig 2] top-20% demand share: Europe {data['europe']['top20_share']:.2f}, "
        f"America {data['america']['top20_share']:.2f} (paper: ~0.80 for both)"
    )
    for region in ("europe", "america"):
        assert 0.7 < data[region]["top20_share"] < 0.92
