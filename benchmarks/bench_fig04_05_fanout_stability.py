"""Figures 4-5 — stability of demands vs. fanouts for the largest source PoPs.

Fanouts of the large sources fluctuate much less over the day than the
demands themselves, which motivates the fanout estimation method.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import fanout_stability


def test_fig04_05_fanout_stability(benchmark, europe, america):
    def run():
        return {
            "europe": fanout_stability(europe, num_sources=4),
            "america": fanout_stability(america, num_sources=4),
        }

    data = run_once(benchmark, run)
    save_result(
        "fig04_05_fanout_stability",
        {
            region: {
                "labels": values["labels"],
                "demand_cov": values["demand_cov"],
                "fanout_cov": values["fanout_cov"],
            }
            for region, values in data.items()
        },
    )
    for region in ("europe", "america"):
        demand_cov = float(np.mean(data[region]["demand_cov"]))
        fanout_cov = float(np.mean(data[region]["fanout_cov"]))
        print(
            f"\n[Fig 4/5] {region}: mean coefficient of variation "
            f"demands {demand_cov:.3f} vs fanouts {fanout_cov:.3f}"
        )
        assert fanout_cov < demand_cov
