"""Figure 3 — spatial distribution of traffic (source/destination heat map).

A limited subset of PoPs accounts for the majority of the traffic.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import spatial_distribution


def bench_fig03(scenario):
    data = spatial_distribution(scenario)
    dense = data["demand_matrix"]
    row_share = np.sort(dense.sum(axis=1))[::-1]
    row_share = row_share / row_share.sum()
    return {
        "node_names": data["node_names"],
        "demand_matrix": dense,
        "top3_source_share": float(row_share[:3].sum()),
    }


def test_fig03_spatial_distribution(benchmark, europe, america):
    def run():
        return {"europe": bench_fig03(europe), "america": bench_fig03(america)}

    data = run_once(benchmark, run)
    save_result("fig03_spatial", data)
    print(
        f"\n[Fig 3] traffic share of 3 largest source PoPs: "
        f"Europe {data['europe']['top3_source_share']:.2f}, "
        f"America {data['america']['top3_source_share']:.2f}"
    )
    assert data["europe"]["top3_source_share"] > 0.35
    assert data["america"]["top3_source_share"] > 0.3
