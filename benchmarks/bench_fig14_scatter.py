"""Figure 14 — true vs. estimated demands (Bayesian and entropy, America, reg = 1000)."""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import regularized_scatter


def test_fig14_regularized_scatter(benchmark, america):
    def run():
        return regularized_scatter(america, regularization=1000.0)

    data = run_once(benchmark, run)
    save_result(
        "fig14_scatter",
        {"bayesian_mre": data["bayesian_mre"], "entropy_mre": data["entropy_mre"]},
    )
    correlation_bayes = float(np.corrcoef(data["actual"], data["bayesian"])[0, 1])
    correlation_entropy = float(np.corrcoef(data["actual"], data["entropy"])[0, 1])
    print(
        f"\n[Fig 14] America, reg=1000: Bayesian MRE {float(data['bayesian_mre']):.2f} "
        f"(corr {correlation_bayes:.2f}), Entropy MRE {float(data['entropy_mre']):.2f} "
        f"(corr {correlation_entropy:.2f})"
    )
    # The estimates track the whole spectrum of demands.
    assert correlation_bayes > 0.85
    assert correlation_entropy > 0.85
