"""Acceptance benchmark: the robustness-grid experiment engine.

A robustness grid evaluates every registered estimation method on measured
(noisy) data for each ``(jitter, loss)`` combination.  Before this engine,
each grid cell re-ran the entropy and tomogravity methods through the
generic cold-start per-snapshot loop — the dominant cost of a cell — and
the grid itself ran strictly serially.

The new engine (``robustness_sweep(n_jobs=...)`` +
``EntropyEstimator.estimate_series``) warm-starts each snapshot's solve
from the previous solution with damped Newton refinement, shares each
cell's scenario problems, and fans independent grid cells out over a
process pool.  This benchmark times the legacy engine (re-implemented
below: same cells, same scoring, entropy/tomogravity through the generic
loop exactly as ``Estimator.estimate_series`` ran them) against the new
one, verifies that serial and parallel runs of the new engine return
identical records, and appends the measurement to ``BENCH_PR3.json``.

Run directly (CI uses a relaxed threshold for slower shared runners)::

    PYTHONPATH=src python benchmarks/bench_experiment_engine.py
    PYTHONPATH=src BENCH_PR3_MIN_GRID_SPEEDUP=2.0 python benchmarks/bench_experiment_engine.py
"""

from __future__ import annotations

import math
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchrecord import REPO_ROOT, merge_record

RECORD_PATH = REPO_ROOT / "BENCH_PR3.json"

JITTER_VALUES = (0.0, 2.0, 10.0)
LOSS_VALUES = (0.0, 0.02)
METHODS = (
    "gravity",
    "kruithof",
    "bayesian",
    "entropy",
    "tomogravity",
    "vardi",
    "fanout",
    "cao",
    "worst-case-bounds",
)
SEED = 0

#: Methods that had no batched ``estimate_series`` before this engine and
#: therefore ran through the generic cold-start per-snapshot loop.
LEGACY_GENERIC = {"entropy", "tomogravity"}


def legacy_generic_series(estimator, problem):
    """The pre-engine series path: independent cold-start snapshot solves."""
    series = problem.series
    estimates = np.empty((series.shape[0], problem.num_pairs))
    for index in range(series.shape[0]):
        estimates[index] = estimator.estimate(problem.at_snapshot(index)).vector
    return estimates


def legacy_robustness_grid(scenario):
    """The pre-engine serial grid: same cells, same scoring, no batching."""
    from repro.errors import EstimationError, SolverError
    from repro.estimation.registry import get_estimator
    from repro.evaluation.metrics import mean_relative_error
    from repro.traffic.matrix import TrafficMatrix

    records = []
    for jitter in JITTER_VALUES:
        for loss in LOSS_VALUES:
            measured = scenario.measured(
                jitter_std_seconds=float(jitter),
                loss_probability=float(loss),
                seed=SEED,
            )
            problem = measured.series_problem()
            truth_series = measured.busy_series()
            truth_mean = truth_series.mean_matrix()
            for name in METHODS:
                estimator = get_estimator(name)
                try:
                    if name in LEGACY_GENERIC:
                        estimates = legacy_generic_series(estimator, problem)
                    else:
                        estimates = estimator.estimate_series(problem).estimates
                    mean_estimate = TrafficMatrix(
                        problem.pairs, np.maximum(estimates.mean(axis=0), 0.0)
                    )
                    mre = mean_relative_error(mean_estimate, truth_mean)
                    records.append((scenario.name, name, jitter, loss, mre, ""))
                except (EstimationError, SolverError) as exc:
                    records.append(
                        (scenario.name, name, jitter, loss, float("nan"), str(exc))
                    )
    return records


def records_agree(legacy, new_records, tolerance=1e-3):
    """Legacy and new grids must report the same skips and close MREs."""
    assert len(legacy) == len(new_records)
    worst = 0.0
    for old, new in zip(legacy, new_records):
        assert old[0] == new.scenario and old[1] == new.method
        assert old[2] == new.jitter_std_seconds and old[3] == new.loss_probability
        assert bool(old[5]) == bool(new.error), (old, new)
        if not old[5]:
            if math.isnan(old[4]):
                assert math.isnan(new.mre)
            else:
                worst = max(worst, abs(old[4] - new.mre) / max(abs(old[4]), 1e-9))
    assert worst < tolerance, f"legacy/new MRE drift {worst:.2e} above {tolerance:.0e}"
    return worst


def main() -> dict:
    from repro.datasets import europe_scenario
    from repro.evaluation.experiments import robustness_sweep

    minimum_speedup = float(os.environ.get("BENCH_PR3_MIN_GRID_SPEEDUP", "3.0"))
    num_cells = len(JITTER_VALUES) * len(LOSS_VALUES)

    print("[experiment engine] building the Europe scenario ...")
    scenario = europe_scenario()
    kwargs = dict(
        jitter_values=JITTER_VALUES,
        loss_values=LOSS_VALUES,
        methods=METHODS,
        seed=SEED,
    )

    print(f"[experiment engine] new engine, serial ({num_cells} cells) ...")
    start = time.perf_counter()
    serial_records = robustness_sweep(scenario, n_jobs=1, **kwargs)
    serial_seconds = time.perf_counter() - start

    print("[experiment engine] new engine, n_jobs=2 ...")
    start = time.perf_counter()
    parallel_records = robustness_sweep(scenario, n_jobs=2, **kwargs)
    parallel_seconds = time.perf_counter() - start

    # Acceptance: parallel records identical to the serial run.
    assert len(parallel_records) == len(serial_records)
    for a, b in zip(serial_records, parallel_records):
        assert a.scenario == b.scenario and a.method == b.method
        assert a.jitter_std_seconds == b.jitter_std_seconds
        assert a.loss_probability == b.loss_probability
        assert a.error == b.error
        assert (math.isnan(a.mre) and math.isnan(b.mre)) or a.mre == b.mre

    print("[experiment engine] legacy serial grid (cold-start loops) ...")
    start = time.perf_counter()
    legacy = legacy_robustness_grid(scenario)
    legacy_seconds = time.perf_counter() - start
    mre_drift = records_agree(legacy, serial_records)

    best_seconds = min(serial_seconds, parallel_seconds)
    speedup = legacy_seconds / best_seconds
    payload = {
        "scenario": "europe",
        "grid_cells": num_cells,
        "methods": list(METHODS),
        "legacy_seconds": legacy_seconds,
        "engine_serial_seconds": serial_seconds,
        "engine_parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "minimum_speedup": minimum_speedup,
        "parallel_identical_to_serial": True,
        "max_relative_mre_drift_vs_legacy": mre_drift,
        "cpu_count": os.cpu_count(),
    }
    merge_record(RECORD_PATH, "experiment_engine", payload)

    print(
        f"[experiment engine] legacy {legacy_seconds:6.2f}s  "
        f"engine serial {serial_seconds:6.2f}s  n_jobs=2 {parallel_seconds:6.2f}s  "
        f"speedup {speedup:5.2f}x  (MRE drift {mre_drift:.2e})"
    )

    assert speedup >= minimum_speedup, (
        f"experiment engine speedup {speedup:.2f}x below the "
        f"required {minimum_speedup:.1f}x"
    )
    print(f"[experiment engine] OK (>= {minimum_speedup:.1f}x), recorded in {RECORD_PATH.name}")
    return payload


if __name__ == "__main__":
    main()
