"""Figure 1 — normalised total network traffic over 24 hours.

Reproduces the diurnal cycles of the European and American subnetworks; the
busy periods differ per region but partially overlap around 18:00 GMT.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import total_traffic_over_time


def bench_fig01(europe, america):
    eu = total_traffic_over_time(europe)
    us = total_traffic_over_time(america)
    eu_peak_hour = float(eu["time_seconds"][np.argmax(eu["normalized_total_traffic"])] / 3600.0)
    us_peak_hour = float(us["time_seconds"][np.argmax(us["normalized_total_traffic"])] / 3600.0)
    evening = int(18 * 12)  # index of 18:00 in five-minute samples
    data = {
        "europe_peak_hour": eu_peak_hour,
        "america_peak_hour": us_peak_hour,
        "europe_level_at_18gmt": float(eu["normalized_total_traffic"][evening]),
        "america_level_at_18gmt": float(us["normalized_total_traffic"][evening]),
        "europe_series": eu["normalized_total_traffic"],
        "america_series": us["normalized_total_traffic"],
        "time_seconds": eu["time_seconds"],
    }
    return data


def test_fig01_total_traffic_over_time(benchmark, europe, america):
    data = run_once(benchmark, lambda: bench_fig01(europe, america))
    save_result("fig01_diurnal", data)
    print(
        f"\n[Fig 1] peak hours: Europe {data['europe_peak_hour']:.1f}h, "
        f"America {data['america_peak_hour']:.1f}h; "
        f"levels at 18:00 GMT: EU {data['europe_level_at_18gmt']:.2f}, "
        f"US {data['america_level_at_18gmt']:.2f}"
    )
    assert data["europe_peak_hour"] != data["america_peak_hour"]
    assert data["europe_level_at_18gmt"] > 0.6
    assert data["america_level_at_18gmt"] > 0.6
