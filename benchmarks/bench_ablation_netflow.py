"""Ablation — direct LSP measurement vs. NetFlow-style flow aggregation.

The paper motivates its data set by arguing that NetFlow aggregation loses
within-flow variability; this ablation quantifies the variance reduction and
its effect on the fitted mean-variance scaling law.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.measurement import netflow_smoothed_series
from repro.traffic import scaling_law_from_series


def test_ablation_netflow_variance_loss(benchmark, europe):
    def run():
        busy = europe.busy_series()
        smoothed = netflow_smoothed_series(busy, mean_flow_duration_seconds=3600.0, seed=13)
        direct_law = scaling_law_from_series(busy)
        smoothed_law = scaling_law_from_series(smoothed)
        return {
            "variance_ratio": float(
                smoothed.demand_variances().sum() / busy.demand_variances().sum()
            ),
            "direct_c": direct_law.c,
            "netflow_c": smoothed_law.c,
        }

    data = run_once(benchmark, run)
    save_result("ablation_netflow", data)
    print(
        f"\n[Ablation] NetFlow aggregation keeps only {data['variance_ratio']:.0%} of the "
        f"five-minute demand variance (scaling-law exponent {data['direct_c']:.2f} -> "
        f"{data['netflow_c']:.2f})"
    )
    assert data["variance_ratio"] < 0.9
