"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates the data behind one figure or table of the
paper on the synthetic Europe-like and America-like scenarios.  The
scenarios are expensive to build (routing + a full day of five-minute
snapshots), so they are session-scoped; the numeric series produced by each
benchmark are written to ``benchmarks/results/<name>.json`` so that
EXPERIMENTS.md can be regenerated from a benchmark run.

Benchmarks use ``benchmark.pedantic(..., rounds=1, iterations=1)``: the
quantities of interest are the reproduced numbers (and a single wall-clock
measurement), not statistically tight timings of multi-second experiments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np
import pytest

from repro.datasets import america_scenario, europe_scenario

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def europe():
    """The Europe-like scenario (12 PoPs, 132 demands, 72 links)."""
    return europe_scenario()


@pytest.fixture(scope="session")
def america():
    """The America-like scenario (25 PoPs, 600 demands, 284 links)."""
    return america_scenario()


def _to_jsonable(value: Any) -> Any:
    """Convert numpy containers to plain Python for JSON serialisation."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


def save_result(name: str, data: Any) -> None:
    """Persist one benchmark's data series under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with path.open("w") as handle:
        json.dump(_to_jsonable(data), handle, indent=2)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
