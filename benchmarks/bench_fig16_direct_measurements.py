"""Figure 16 — entropy-method MRE vs. number of directly measured demands.

Measuring a handful of well-chosen demands collapses the MRE; the greedy
(exhaustive) selection is restricted to the large demands to keep the
benchmark tractable, and the practical largest-demand strategy is reported
alongside it.
"""

from __future__ import annotations

from conftest import run_once, save_result
from repro.evaluation.figures import direct_measurement_curve


def test_fig16_direct_measurements(benchmark, europe, america):
    def run():
        return {
            "europe_greedy": direct_measurement_curve(europe, max_measurements=6, strategy="greedy"),
            "europe_largest": direct_measurement_curve(europe, max_measurements=12, strategy="largest"),
            "america_largest": direct_measurement_curve(america, max_measurements=17, strategy="largest"),
        }

    data = run_once(benchmark, run)
    save_result(
        "fig16_direct_measurements",
        {key: {"num_measured": v["num_measured"], "mre": v["mre"]} for key, v in data.items()},
    )
    for key, series in data.items():
        print(
            f"\n[Fig 16] {key}: MRE {series['mre'][0]:.3f} -> {series['mre'][-1]:.3f} "
            f"after measuring {int(series['num_measured'][-1])} demands"
        )
    # Greedy selection reduces the error monotonically by construction; the
    # headline finding is the large drop after a handful of measurements.
    europe_greedy = data["europe_greedy"]["mre"]
    assert europe_greedy[-1] < 0.5 * europe_greedy[0]
    assert data["america_largest"]["mre"][-1] < data["america_largest"]["mre"][0]
