"""Figure 10 — fanout-estimation scatter for window lengths 1, 3 and 10 (America)."""

from __future__ import annotations

from conftest import run_once, save_result
from repro.evaluation.figures import fanout_estimation_scatter


def test_fig10_fanout_scatter(benchmark, america):
    def run():
        return fanout_estimation_scatter(america, window_lengths=(1, 3, 10))

    data = run_once(benchmark, run)
    save_result(
        "fig10_fanout_scatter",
        {str(window): {"mre": values["mre"]} for window, values in data.items()},
    )
    mres = {window: float(values["mre"]) for window, values in data.items()}
    print(f"\n[Fig 10] America fanout-estimation MRE by window: {mres}")
    # The scatter exists for every requested window and the estimates are finite.
    for values in data.values():
        assert values["estimated"].shape == values["actual_average"].shape
