"""Acceptance benchmark: incremental failure sweep vs naive full rebuilds.

A single-link failure sweep asks, for every directed link of the backbone,
how every demand re-routes and what the surviving links' utilisations
become — for the true traffic matrix and for each estimation method's
estimate.  The naive approach rebuilds the world per case: derive the
surviving topology, re-signal the *entire* mesh from scratch, assemble a
fresh routing matrix, then project.  The planning subsystem
(:class:`repro.planning.whatif.WhatIfEngine` inside
:func:`repro.planning.sweep.failure_sweep`) routes the base mesh once and,
per case, re-signals only the demands whose path traversed the failed link,
patching just those columns of the routing matrix — and fans independent
cases over a process pool.

This benchmark times the naive serial full-rebuild sweep against
``failure_sweep(..., n_jobs=4)`` on the full America-like scenario (284
directed links, 600 demands), verifies that

* the incremental post-failure routing matrices are *identical* to the
  from-scratch rebuilds on every single-link case,
* serial and parallel sweep records are identical, and
* the naive and engine sweeps report the same utilisation numbers,

and appends the measurement to ``BENCH_PR4.json`` at the repository root.

Run directly (CI uses a relaxed threshold for slower shared runners)::

    PYTHONPATH=src python benchmarks/bench_failure_sweep.py
    PYTHONPATH=src BENCH_PR4_MIN_SWEEP_SPEEDUP=2.0 python benchmarks/bench_failure_sweep.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchrecord import REPO_ROOT, merge_record

RECORD_PATH = REPO_ROOT / "BENCH_PR4.json"
N_JOBS = 4


def naive_full_rebuild_sweep(scenario, estimates, cases):
    """The pre-subsystem sweep: per case, rebuild everything from scratch.

    Re-signals the full mesh on a freshly derived surviving topology for
    every case and projects truth and estimates through the new matrix.
    Returns ``(case, method, true_max_util, predicted_max_util)`` tuples in
    the same case-major order as ``failure_sweep``.
    """
    from repro.planning import full_rebuild_routing, project_load

    rows = []
    for case in cases:
        routing, infeasible = full_rebuild_routing(scenario.network, case)
        for result in estimates:
            truth_projection = project_load(
                routing, result.truth, case=case, infeasible_pairs=infeasible
            )
            estimate_projection = project_load(
                routing, result.estimate, case=case, infeasible_pairs=infeasible
            )
            rows.append(
                (
                    case.name,
                    result.label,
                    truth_projection.max_utilisation,
                    estimate_projection.max_utilisation,
                )
            )
    return rows


def main() -> dict:
    from repro.datasets import america_scenario
    from repro.evaluation import MethodSpec, estimate_method_specs
    from repro.planning import enumerate_failures, failure_sweep, full_rebuild_routing
    from repro.routing import IncrementalRerouter

    minimum_speedup = float(os.environ.get("BENCH_PR4_MIN_SWEEP_SPEEDUP", "3.0"))

    print("[failure sweep] building the America scenario ...")
    scenario = america_scenario()
    cases = enumerate_failures(scenario.network, kinds=("link",))
    specs = (
        MethodSpec(label="Simple gravity prior", estimator="gravity"),
        MethodSpec(
            label="Entropy w. gravity prior",
            estimator="entropy",
            params={"regularization": 1000.0, "prior": "gravity"},
        ),
    )
    # The estimation phase is shared by both sweep engines; it is computed
    # once up front so the timings isolate the sweep machinery itself.
    estimates = estimate_method_specs(scenario, specs)

    print(f"[failure sweep] naive serial full-rebuild sweep ({len(cases)} cases) ...")
    start = time.perf_counter()
    naive_rows = naive_full_rebuild_sweep(scenario, estimates, cases)
    naive_seconds = time.perf_counter() - start

    print(f"[failure sweep] incremental engine, n_jobs={N_JOBS} ...")
    start = time.perf_counter()
    parallel_records = failure_sweep(
        scenario, cases=cases, estimates=estimates, n_jobs=N_JOBS, include_baseline=False
    )
    parallel_seconds = time.perf_counter() - start

    print("[failure sweep] incremental engine, serial ...")
    start = time.perf_counter()
    serial_records = failure_sweep(
        scenario, cases=cases, estimates=estimates, n_jobs=1, include_baseline=False
    )
    serial_seconds = time.perf_counter() - start

    # Acceptance: parallel records identical to the serial run.
    assert serial_records == parallel_records, "serial and parallel sweep records differ"

    # Acceptance: naive and engine sweeps report the same utilisations.
    assert len(naive_rows) == len(serial_records)
    worst_drift = 0.0
    for row, record in zip(naive_rows, serial_records):
        assert row[0] == record.case and row[1] == record.method
        worst_drift = max(
            worst_drift,
            abs(row[2] - record.true_max_utilisation),
            abs(row[3] - record.predicted_max_utilisation),
        )
    assert worst_drift < 1e-12, f"naive/engine utilisation drift {worst_drift:.2e}"

    # Acceptance: incremental matrices identical to full rebuilds (untimed).
    print("[failure sweep] verifying incremental == full-rebuild matrices ...")
    rerouter = IncrementalRerouter(scenario.network)
    for case in cases:
        incremental, result = rerouter.reroute_matrix(case.failed_links)
        full, infeasible = full_rebuild_routing(scenario.network, case)
        assert np.array_equal(incremental.matrix, full.matrix), case.name
        assert tuple(result.infeasible) == infeasible, case.name

    speedup = naive_seconds / parallel_seconds
    payload = {
        "scenario": "america",
        "num_cases": len(cases),
        "methods": [spec.label for spec in specs],
        "naive_serial_seconds": naive_seconds,
        "engine_serial_seconds": serial_seconds,
        "engine_parallel_seconds": parallel_seconds,
        "n_jobs": N_JOBS,
        "speedup": speedup,
        "minimum_speedup": minimum_speedup,
        "parallel_identical_to_serial": True,
        "incremental_identical_to_full_rebuild": True,
        "max_utilisation_drift_vs_naive": worst_drift,
        "cpu_count": os.cpu_count(),
    }
    merge_record(RECORD_PATH, "failure_sweep", payload)

    print(
        f"[failure sweep] naive {naive_seconds:6.2f}s  "
        f"engine serial {serial_seconds:6.2f}s  n_jobs={N_JOBS} {parallel_seconds:6.2f}s  "
        f"speedup {speedup:5.2f}x"
    )
    assert speedup >= minimum_speedup, (
        f"failure sweep speedup {speedup:.2f}x below the required {minimum_speedup:.1f}x"
    )
    print(f"[failure sweep] OK (>= {minimum_speedup:.1f}x), recorded in {RECORD_PATH.name}")
    return payload


if __name__ == "__main__":
    main()
