"""Figure 13 — Bayesian and entropy MRE vs. the regularisation parameter.

Small parameter values fall back to the gravity prior; large values trust
the link measurements and give the best results on both networks.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import regularization_sweep

REGULARIZATIONS = tuple(np.logspace(-5, 5, 11))


def test_fig13_regularization_sweep(benchmark, europe, america):
    def run():
        return {
            "europe": regularization_sweep(europe, regularizations=REGULARIZATIONS),
            "america": regularization_sweep(america, regularizations=REGULARIZATIONS),
        }

    data = run_once(benchmark, run)
    save_result("fig13_regularization_sweep", data)
    for region in ("europe", "america"):
        series = data[region]
        print(
            f"\n[Fig 13] {region}: entropy MRE {series['entropy_mre'][0]:.2f} -> "
            f"{series['entropy_mre'][-1]:.2f}, bayesian MRE {series['bayesian_mre'][0]:.2f} -> "
            f"{series['bayesian_mre'][-1]:.2f} as the regularisation grows from 1e-5 to 1e5"
        )
        # Shape: trusting the measurements (large parameter) beats the prior-only end.
        assert series["entropy_mre"][-1] < series["entropy_mre"][0]
        assert series["bayesian_mre"][-1] < series["bayesian_mre"][0]
