"""Shared helper for the acceptance-benchmark record files.

The acceptance benchmarks (``bench_worstcase_bounds.py``,
``bench_experiment_engine.py``, ``bench_failure_sweep.py``) each append a
payload under their own key to a ``BENCH_PR<n>.json`` record at the
repository root; CI uploads the records as artifacts.  This module keeps
the merge logic in one place so record handling cannot drift between
benchmarks: existing keys written by other benchmarks are preserved, and a
corrupt record file is replaced rather than crashing the run.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = ["REPO_ROOT", "merge_record"]


def merge_record(record_path: Path, key: str, payload: dict) -> None:
    """Insert ``payload`` under ``key`` in ``record_path``, keeping other keys."""
    record = {}
    if record_path.exists():
        try:
            record = json.loads(record_path.read_text())
        except json.JSONDecodeError:
            record = {}
    record[key] = payload
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
