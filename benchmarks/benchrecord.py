"""Shared helper for the acceptance-benchmark record files.

The acceptance benchmarks (``bench_worstcase_bounds.py``,
``bench_experiment_engine.py``, ``bench_failure_sweep.py``) each append a
payload under their own key to a ``BENCH_PR<n>.json`` record at the
repository root; CI uploads the records as artifacts.  This module keeps
the merge logic in one place so record handling cannot drift between
benchmarks: existing keys written by other benchmarks are preserved, and a
corrupt record file is replaced rather than crashing the run.

Every merge also (re)stamps a shared ``meta`` block — git SHA, python and
numpy versions, CPU count, UTC timestamp — so the records are comparable
across machines and checkouts without guessing where they came from.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

__all__ = ["REPO_ROOT", "merge_record", "record_meta"]


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record_meta() -> dict:
    """The environment block stamped into every record file."""
    return {
        "git_sha": _git_sha(),
        "python_version": sys.version.split()[0],
        "numpy_version": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "recorded_at_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def merge_record(record_path: Path, key: str, payload: dict) -> None:
    """Insert ``payload`` under ``key`` in ``record_path``, keeping other keys.

    The shared ``meta`` block is refreshed on every merge (last benchmark
    to write wins — the whole record comes from one machine and one
    checkout per CI run, so one block describes every key).
    """
    record = {}
    if record_path.exists():
        try:
            record = json.loads(record_path.read_text())
        except json.JSONDecodeError:
            record = {}
    record[key] = payload
    record["meta"] = record_meta()
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
