"""Acceptance benchmark: the large-topology fast path.

The estimation problem is quadratic in node count (``P = N (N - 1)``
pairs), yet until this engine the hot paths assumed the paper's <= 25-node
scale: ``route_all`` ran one truncated Dijkstra **per pair**, and the
regularised estimators pulled the dense ``(links, pairs)`` routing view
even on CSR backends.  This benchmark measures the fast path on random
backbones of growing size:

* **routing build** — batched single-source ``route_all`` + vectorized COO
  assembly against the legacy per-pair loop (``route_all_pairwise``) with
  the per-path assembly, with path-for-path equality asserted;
* **estimators** — per-method ``estimate`` wall time on a
  ``large_scenario`` snapshot problem at every ``N``;
* **memory** — a tracemalloc guard proving the sparse paths never
  materialise a dense routing-sized array (peak allocation stays under the
  dense ``(L, P)`` footprint);
* **drift** — batched routing and sparse estimator paths pinned to the
  legacy results on the named scenarios (routing paths must be identical;
  estimator drift is the max relative L2 difference between dense- and
  sparse-backend estimates on Europe).

Run directly (CI uses a single small N and a relaxed speedup floor for
shared runners)::

    PYTHONPATH=src python benchmarks/bench_large_scale.py
    PYTHONPATH=src BENCH_PR5_NS=50 BENCH_PR5_MIN_ROUTING_SPEEDUP=3.0 \
        python benchmarks/bench_large_scale.py
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchrecord import REPO_ROOT, merge_record

RECORD_PATH = REPO_ROOT / "BENCH_PR5.json"

SEED = 2004
ESTIMATORS = ("gravity", "kruithof", "tomogravity", "entropy", "bayesian")
#: Methods compared dense-vs-sparse for the drift pin (Europe scale).
DRIFT_METHODS = ("gravity", "kruithof", "bayesian", "entropy", "tomogravity")


def parse_ns() -> tuple[int, ...]:
    raw = os.environ.get("BENCH_PR5_NS", "50,100,200")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def assert_paths_equal(batched, legacy) -> None:
    assert set(batched) == set(legacy)
    for pair, path in batched.items():
        other = legacy[pair]
        assert path.nodes == other.nodes, f"node drift for {pair}"
        assert path.link_names() == other.link_names(), f"link drift for {pair}"
        assert abs(path.cost - other.cost) <= 1e-9, f"cost drift for {pair}"


def routing_benchmark(n_nodes: int) -> dict:
    from repro.routing.routing_matrix import build_routing_matrix
    from repro.routing.shortest_path import ShortestPathRouter
    from repro.topology.generators import random_backbone

    network = random_backbone(n_nodes, avg_degree=3.0, seed=SEED, name=f"bench-{n_nodes}")
    router = ShortestPathRouter(network)

    start = time.perf_counter()
    legacy_paths = router.route_all_pairwise()
    build_routing_matrix(network, paths=legacy_paths)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_paths = router.route_all()
    matrix = build_routing_matrix(network, paths=batched_paths)
    batched_seconds = time.perf_counter() - start

    assert_paths_equal(batched_paths, legacy_paths)
    return {
        "num_nodes": n_nodes,
        "num_links": network.num_links,
        "num_pairs": network.num_pairs,
        "backend": matrix.backend_kind,
        "density": matrix.density,
        "legacy_seconds": legacy_seconds,
        "batched_seconds": batched_seconds,
        "speedup": legacy_seconds / batched_seconds,
        "paths_identical": True,
    }


def estimator_benchmark(n_nodes: int, guard_memory: bool) -> dict:
    from repro.datasets import large_scenario
    from repro.estimation.registry import get_estimator

    scenario = large_scenario(n_nodes, seed=SEED)
    problem = scenario.snapshot_problem()
    num_pairs = scenario.routing.num_pairs
    dense_bytes = float(scenario.routing.num_links * num_pairs * 8)
    # Below the Gram limit the exact solvers build dense (P, P) normal
    # equations by design; only above it must every intermediate stay
    # under the dense routing footprint (the sign of a densified R).
    from repro.estimation.bayesian import _GRAM_PAIR_LIMIT

    if num_pairs <= _GRAM_PAIR_LIMIT:
        memory_allowance = dense_bytes + 6.0 * num_pairs * num_pairs * 8
    else:
        memory_allowance = dense_bytes
    timings: dict[str, float] = {}
    peak_bytes = 0.0
    for name in ESTIMATORS:
        estimator = get_estimator(name)
        if guard_memory:
            tracemalloc.start()
        start = time.perf_counter()
        estimator.estimate(problem)
        timings[name] = time.perf_counter() - start
        if guard_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_bytes = max(peak_bytes, float(peak))
            assert peak < memory_allowance, (
                f"{name} allocated {peak / 1e6:.1f} MB at N={n_nodes}, above the "
                f"allowance {memory_allowance / 1e6:.1f} MB — a sparse path densified"
            )
    payload = {
        "num_pairs": scenario.routing.num_pairs,
        "backend": scenario.routing.backend_kind,
        "estimate_seconds": timings,
    }
    if guard_memory:
        payload["dense_routing_bytes"] = dense_bytes
        payload["memory_allowance_bytes"] = memory_allowance
        payload["peak_estimator_bytes"] = peak_bytes
        payload["no_densification"] = True
    return payload


def named_scenario_drift() -> dict:
    """Pin batched routing + sparse estimators to the legacy results."""
    from repro.datasets import abilene_scenario, america_scenario, europe_scenario
    from repro.estimation.base import EstimationProblem
    from repro.estimation.registry import get_estimator
    from repro.routing.shortest_path import ShortestPathRouter

    drift = 0.0
    routing_checked = []
    scenarios = {
        "europe": europe_scenario(),
        "america": america_scenario(),
        "abilene": abilene_scenario(),
    }
    for name, scenario in scenarios.items():
        router = ShortestPathRouter(scenario.network)
        assert_paths_equal(router.route_all(), router.route_all_pairwise())
        routing_checked.append(name)

    europe = scenarios["europe"]
    truth = europe.busy_mean_matrix()
    loads = europe.routing.with_backend("dense").link_loads(truth.vector)

    def problem(backend: str) -> EstimationProblem:
        return EstimationProblem(
            routing=europe.routing.with_backend(backend),
            link_loads=loads,
            origin_totals=truth.origin_totals(),
            destination_totals=truth.destination_totals(),
        )

    dense_problem, sparse_problem = problem("dense"), problem("sparse")
    for method in DRIFT_METHODS:
        dense_vec = get_estimator(method).estimate(dense_problem).vector
        sparse_vec = get_estimator(method).estimate(sparse_problem).vector
        scale = max(float(np.linalg.norm(dense_vec)), 1e-12)
        drift = max(drift, float(np.linalg.norm(dense_vec - sparse_vec)) / scale)
    return {
        "routing_paths_identical_on": routing_checked,
        "estimator_methods": list(DRIFT_METHODS),
        "max_relative_drift": drift,
    }


def main() -> dict:
    ns = parse_ns()
    minimum_speedup = float(os.environ.get("BENCH_PR5_MIN_ROUTING_SPEEDUP", "10.0"))
    max_n = max(ns)

    routing_records = []
    estimator_records = {}
    for n_nodes in ns:
        print(f"[large scale] N={n_nodes}: routing build (legacy per-pair vs batched) ...")
        record = routing_benchmark(n_nodes)
        routing_records.append(record)
        print(
            f"[large scale] N={n_nodes}: legacy {record['legacy_seconds']:6.2f}s  "
            f"batched {record['batched_seconds']:6.2f}s  "
            f"speedup {record['speedup']:6.1f}x"
        )
        print(f"[large scale] N={n_nodes}: estimators on the {record['backend']} backend ...")
        estimator_records[str(n_nodes)] = estimator_benchmark(
            n_nodes, guard_memory=n_nodes == max_n
        )
        for method, seconds in estimator_records[str(n_nodes)]["estimate_seconds"].items():
            print(f"[large scale]     {method:12s} {seconds:6.2f}s")

    print("[large scale] drift pins on the named scenarios ...")
    drift = named_scenario_drift()
    print(f"[large scale] max relative estimator drift {drift['max_relative_drift']:.2e}")

    headline = routing_records[-1]
    payload = {
        "seed": SEED,
        "ns": list(ns),
        "routing_build": routing_records,
        "estimators": estimator_records,
        "drift": drift,
        "minimum_routing_speedup": minimum_speedup,
        "headline_routing_speedup": headline["speedup"],
        "cpu_count": os.cpu_count(),
    }
    merge_record(RECORD_PATH, "large_scale", payload)

    assert headline["speedup"] >= minimum_speedup, (
        f"routing build speedup {headline['speedup']:.1f}x at N={headline['num_nodes']} "
        f"below the required {minimum_speedup:.1f}x"
    )
    assert drift["max_relative_drift"] < 1e-3, (
        f"estimator drift {drift['max_relative_drift']:.2e} above 1e-3"
    )
    print(
        f"[large scale] OK (>= {minimum_speedup:.1f}x at N={headline['num_nodes']}), "
        f"recorded in {RECORD_PATH.name}"
    )
    return payload


if __name__ == "__main__":
    main()
