"""Acceptance benchmark: the large-topology fast path.

The estimation problem is quadratic in node count (``P = N (N - 1)``
pairs), yet until this engine the hot paths assumed the paper's <= 25-node
scale: ``route_all`` ran one truncated Dijkstra **per pair**, and the
regularised estimators pulled the dense ``(links, pairs)`` routing view
even on CSR backends.  This benchmark measures the fast path on random
backbones of growing size:

* **routing build** — batched single-source ``route_all`` + vectorized COO
  assembly against the legacy per-pair loop (``route_all_pairwise``) with
  the per-path assembly, with path-for-path equality asserted;
* **estimators** — per-method ``estimate`` wall time on a
  ``large_scenario`` snapshot problem at every ``N``;
* **memory** — a tracemalloc guard proving the sparse paths never
  materialise a dense routing-sized array (peak allocation stays under the
  dense ``(L, P)`` footprint);
* **drift** — batched routing and sparse estimator paths pinned to the
  legacy results on the named scenarios (routing paths must be identical;
  estimator drift is the max relative L2 difference between dense- and
  sparse-backend estimates on Europe).

The PR 6 tier benchmarks **hierarchical region-sharded estimation** at
continental scale (default N=500, opt-in N=1000 via ``BENCH_PR6_NS``):
sharded tomogravity against the flat sparse path — wall time, tracemalloc
peaks proving neither path materialises a dense ``(links, pairs)`` or
``(pairs, pairs)`` array, sharded-vs-flat accuracy (MRE against the
synthetic truth), and the csgraph-vs-python batched routing build.  The
results land in ``BENCH_PR6.json``.

Run directly (CI uses a single small N and a relaxed speedup floor for
shared runners)::

    PYTHONPATH=src python benchmarks/bench_large_scale.py
    PYTHONPATH=src BENCH_PR5_NS=50 BENCH_PR5_MIN_ROUTING_SPEEDUP=3.0 \
        python benchmarks/bench_large_scale.py
    PYTHONPATH=src BENCH_PR6_ONLY=1 BENCH_PR6_MIN_SPEEDUP=2.0 \
        python benchmarks/bench_large_scale.py
"""

from __future__ import annotations

import gc
import hashlib
import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchrecord import REPO_ROOT, merge_record

RECORD_PATH = REPO_ROOT / "BENCH_PR5.json"
PR6_RECORD_PATH = REPO_ROOT / "BENCH_PR6.json"

SEED = 2004
ESTIMATORS = ("gravity", "kruithof", "tomogravity", "entropy", "bayesian")
#: Methods compared dense-vs-sparse for the drift pin (Europe scale).
DRIFT_METHODS = ("gravity", "kruithof", "bayesian", "entropy", "tomogravity")


def parse_ns() -> tuple[int, ...]:
    raw = os.environ.get("BENCH_PR5_NS", "50,100,200")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def assert_paths_equal(batched, legacy) -> None:
    assert set(batched) == set(legacy)
    for pair, path in batched.items():
        other = legacy[pair]
        assert path.nodes == other.nodes, f"node drift for {pair}"
        assert path.link_names() == other.link_names(), f"link drift for {pair}"
        assert abs(path.cost - other.cost) <= 1e-9, f"cost drift for {pair}"


def routing_benchmark(n_nodes: int) -> dict:
    from repro.routing.routing_matrix import build_routing_matrix
    from repro.routing.shortest_path import ShortestPathRouter
    from repro.topology.generators import random_backbone

    network = random_backbone(n_nodes, avg_degree=3.0, seed=SEED, name=f"bench-{n_nodes}")
    router = ShortestPathRouter(network)

    start = time.perf_counter()
    legacy_paths = router.route_all_pairwise()
    build_routing_matrix(network, paths=legacy_paths)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_paths = router.route_all()
    matrix = build_routing_matrix(network, paths=batched_paths)
    batched_seconds = time.perf_counter() - start

    assert_paths_equal(batched_paths, legacy_paths)
    return {
        "num_nodes": n_nodes,
        "num_links": network.num_links,
        "num_pairs": network.num_pairs,
        "backend": matrix.backend_kind,
        "density": matrix.density,
        "legacy_seconds": legacy_seconds,
        "batched_seconds": batched_seconds,
        "speedup": legacy_seconds / batched_seconds,
        "paths_identical": True,
    }


def estimator_benchmark(n_nodes: int, guard_memory: bool) -> dict:
    from repro.datasets import large_scenario
    from repro.estimation.registry import get_estimator

    scenario = large_scenario(n_nodes, seed=SEED)
    problem = scenario.snapshot_problem()
    num_pairs = scenario.routing.num_pairs
    dense_bytes = float(scenario.routing.num_links * num_pairs * 8)
    # Below the Gram limit the exact solvers build dense (P, P) normal
    # equations by design; only above it must every intermediate stay
    # under the dense routing footprint (the sign of a densified R).
    from repro.estimation.bayesian import _GRAM_PAIR_LIMIT

    if num_pairs <= _GRAM_PAIR_LIMIT:
        memory_allowance = dense_bytes + 6.0 * num_pairs * num_pairs * 8
    else:
        memory_allowance = dense_bytes
    timings: dict[str, float] = {}
    peak_bytes = 0.0
    for name in ESTIMATORS:
        estimator = get_estimator(name)
        if guard_memory:
            tracemalloc.start()
        start = time.perf_counter()
        estimator.estimate(problem)
        timings[name] = time.perf_counter() - start
        if guard_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_bytes = max(peak_bytes, float(peak))
            assert peak < memory_allowance, (
                f"{name} allocated {peak / 1e6:.1f} MB at N={n_nodes}, above the "
                f"allowance {memory_allowance / 1e6:.1f} MB — a sparse path densified"
            )
    payload = {
        "num_pairs": scenario.routing.num_pairs,
        "backend": scenario.routing.backend_kind,
        "estimate_seconds": timings,
    }
    if guard_memory:
        payload["dense_routing_bytes"] = dense_bytes
        payload["memory_allowance_bytes"] = memory_allowance
        payload["peak_estimator_bytes"] = peak_bytes
        payload["no_densification"] = True
    return payload


def named_scenario_drift() -> dict:
    """Pin batched routing + sparse estimators to the legacy results."""
    from repro.datasets import abilene_scenario, america_scenario, europe_scenario
    from repro.estimation.base import EstimationProblem
    from repro.estimation.registry import get_estimator
    from repro.routing.shortest_path import ShortestPathRouter

    drift = 0.0
    routing_checked = []
    scenarios = {
        "europe": europe_scenario(),
        "america": america_scenario(),
        "abilene": abilene_scenario(),
    }
    for name, scenario in scenarios.items():
        router = ShortestPathRouter(scenario.network)
        assert_paths_equal(router.route_all(), router.route_all_pairwise())
        routing_checked.append(name)

    europe = scenarios["europe"]
    truth = europe.busy_mean_matrix()
    loads = europe.routing.with_backend("dense").link_loads(truth.vector)

    def problem(backend: str) -> EstimationProblem:
        return EstimationProblem(
            routing=europe.routing.with_backend(backend),
            link_loads=loads,
            origin_totals=truth.origin_totals(),
            destination_totals=truth.destination_totals(),
        )

    dense_problem, sparse_problem = problem("dense"), problem("sparse")
    for method in DRIFT_METHODS:
        dense_vec = get_estimator(method).estimate(dense_problem).vector
        sparse_vec = get_estimator(method).estimate(sparse_problem).vector
        scale = max(float(np.linalg.norm(dense_vec)), 1e-12)
        drift = max(drift, float(np.linalg.norm(dense_vec - sparse_vec)) / scale)
    return {
        "routing_paths_identical_on": routing_checked,
        "estimator_methods": list(DRIFT_METHODS),
        "max_relative_drift": drift,
    }


# ----------------------------------------------------------------------
# PR 6: hierarchical region-sharded estimation at continental scale
# ----------------------------------------------------------------------


def parse_pr6_ns() -> tuple[int, ...]:
    raw = os.environ.get("BENCH_PR6_NS", "500")
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _route_digest(paths) -> str:
    """Exact digest of a route table (nodes, links and float costs)."""
    digest = hashlib.sha256()
    for pair in sorted(paths, key=lambda p: (p.origin, p.destination)):
        path = paths[pair]
        digest.update(
            repr(
                (pair.origin, pair.destination, path.nodes, path.link_names(), path.cost)
            ).encode()
        )
    return digest.hexdigest()


def _timed_estimate(estimator, problem) -> tuple[float, float, np.ndarray]:
    """``(seconds, tracemalloc peak bytes, estimate vector)`` for one run."""
    tracemalloc.start()
    start = time.perf_counter()
    vector = estimator.estimate(problem).vector
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, float(peak), vector


def _mre(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Mean relative error over the top-quartile demands (the paper's focus)."""
    mask = truth > np.percentile(truth, 75)
    return float(np.mean(np.abs(estimate[mask] - truth[mask]) / truth[mask]))


def sharded_benchmark(n_nodes: int, run_flat: bool) -> dict:
    from repro.datasets import large_scenario
    from repro.estimation.registry import get_estimator
    from repro.routing.shortest_path import ShortestPathRouter

    print(f"[sharded] N={n_nodes}: building scenario ...")
    start = time.perf_counter()
    scenario = large_scenario(n_nodes, seed=SEED)
    build_seconds = time.perf_counter() - start
    problem = scenario.snapshot_problem()
    truth = scenario.busy_snapshot(0).vector
    num_pairs = problem.num_pairs
    num_links = problem.routing.num_links

    # csgraph-vs-python batched routing on the same topology.  Each engine
    # is timed on a clean heap — keeping the first run's quarter-million
    # Path objects alive inflates GC pauses during the second run — so the
    # parity check compares exact route digests rather than live tables.
    router_python = ShortestPathRouter(scenario.network, engine="python")
    router_csgraph = ShortestPathRouter(scenario.network, engine="csgraph")
    gc.collect()
    start = time.perf_counter()
    python_paths = router_python.route_all()
    routing_python_seconds = time.perf_counter() - start
    python_digest = _route_digest(python_paths)
    del python_paths
    gc.collect()
    start = time.perf_counter()
    csgraph_paths = router_csgraph.route_all()
    routing_csgraph_seconds = time.perf_counter() - start
    csgraph_digest = _route_digest(csgraph_paths)
    del csgraph_paths
    gc.collect()
    assert csgraph_digest == python_digest, "csgraph routes diverged from python sweep"

    # Memory allowances: neither path may materialise a dense routing-sized
    # (links, pairs) array nor any (pairs, pairs) array.
    dense_routing_bytes = float(num_links * num_pairs * 8)
    pairs_sq_bytes = float(num_pairs) * float(num_pairs) * 8.0
    allowance = min(dense_routing_bytes, pairs_sq_bytes)

    record = {
        "num_nodes": n_nodes,
        "num_links": num_links,
        "num_pairs": num_pairs,
        "backend": problem.routing.backend_kind,
        "scenario_build_seconds": build_seconds,
        "routing_python_seconds": routing_python_seconds,
        "routing_csgraph_seconds": routing_csgraph_seconds,
        "routing_csgraph_paths_identical": True,
        "dense_routing_bytes": dense_routing_bytes,
        "pairs_sq_bytes": pairs_sq_bytes,
        "memory_allowance_bytes": allowance,
    }

    print(f"[sharded] N={n_nodes}: sharded tomogravity ...")
    sharded = get_estimator("sharded", base="tomogravity")
    sharded_seconds, sharded_peak, sharded_vector = _timed_estimate(sharded, problem)
    assert sharded_peak < allowance, (
        f"sharded path allocated {sharded_peak / 1e6:.1f} MB at N={n_nodes}, above "
        f"the dense-array allowance {allowance / 1e6:.1f} MB"
    )
    record.update(
        sharded_seconds=sharded_seconds,
        sharded_peak_bytes=sharded_peak,
        sharded_mre=_mre(sharded_vector, truth),
    )
    print(
        f"[sharded] N={n_nodes}: sharded {sharded_seconds:6.2f}s "
        f"(peak {sharded_peak / 1e6:.0f} MB, MRE {record['sharded_mre']:.3f})"
    )

    if run_flat:
        print(f"[sharded] N={n_nodes}: flat tomogravity baseline ...")
        flat = get_estimator("tomogravity")
        flat_seconds, flat_peak, flat_vector = _timed_estimate(flat, problem)
        assert flat_peak < allowance, (
            f"flat path allocated {flat_peak / 1e6:.1f} MB at N={n_nodes}, above "
            f"the dense-array allowance {allowance / 1e6:.1f} MB"
        )
        scale = max(float(np.linalg.norm(flat_vector)), 1e-12)
        record.update(
            flat_seconds=flat_seconds,
            flat_peak_bytes=flat_peak,
            flat_mre=_mre(flat_vector, truth),
            speedup=flat_seconds / sharded_seconds,
            sharded_vs_flat_relative_l2=float(
                np.linalg.norm(sharded_vector - flat_vector) / scale
            ),
        )
        print(
            f"[sharded] N={n_nodes}: flat {flat_seconds:6.2f}s "
            f"(peak {flat_peak / 1e6:.0f} MB, MRE {record['flat_mre']:.3f})  "
            f"speedup {record['speedup']:5.1f}x"
        )
    return record


def main_pr6() -> dict:
    ns = parse_pr6_ns()
    minimum_speedup = float(os.environ.get("BENCH_PR6_MIN_SPEEDUP", "5.0"))
    run_flat = not os.environ.get("BENCH_PR6_SKIP_FLAT")
    records = [sharded_benchmark(n_nodes, run_flat) for n_nodes in ns]
    headline = records[0]
    payload = {
        "seed": SEED,
        "ns": list(ns),
        "records": records,
        "minimum_speedup": minimum_speedup,
        "cpu_count": os.cpu_count(),
        "no_dense_materialisation": True,
    }
    if run_flat:
        payload["headline_speedup"] = headline["speedup"]
    merge_record(PR6_RECORD_PATH, "hierarchical_sharding", payload)

    if run_flat:
        assert headline["speedup"] >= minimum_speedup, (
            f"sharded speedup {headline['speedup']:.1f}x at N={headline['num_nodes']} "
            f"below the required {minimum_speedup:.1f}x"
        )
        assert headline["sharded_peak_bytes"] <= 1.1 * headline["flat_peak_bytes"], (
            f"sharded peak {headline['sharded_peak_bytes'] / 1e6:.1f} MB above the "
            f"flat baseline's {headline['flat_peak_bytes'] / 1e6:.1f} MB"
        )
        print(
            f"[sharded] OK (>= {minimum_speedup:.1f}x at N={headline['num_nodes']} at "
            f"equal-or-better memory), recorded in {PR6_RECORD_PATH.name}"
        )
    else:
        print(f"[sharded] OK (flat baseline skipped), recorded in {PR6_RECORD_PATH.name}")
    return payload


def main() -> dict:
    ns = parse_ns()
    minimum_speedup = float(os.environ.get("BENCH_PR5_MIN_ROUTING_SPEEDUP", "10.0"))
    max_n = max(ns)

    routing_records = []
    estimator_records = {}
    for n_nodes in ns:
        print(f"[large scale] N={n_nodes}: routing build (legacy per-pair vs batched) ...")
        record = routing_benchmark(n_nodes)
        routing_records.append(record)
        print(
            f"[large scale] N={n_nodes}: legacy {record['legacy_seconds']:6.2f}s  "
            f"batched {record['batched_seconds']:6.2f}s  "
            f"speedup {record['speedup']:6.1f}x"
        )
        print(f"[large scale] N={n_nodes}: estimators on the {record['backend']} backend ...")
        estimator_records[str(n_nodes)] = estimator_benchmark(
            n_nodes, guard_memory=n_nodes == max_n
        )
        for method, seconds in estimator_records[str(n_nodes)]["estimate_seconds"].items():
            print(f"[large scale]     {method:12s} {seconds:6.2f}s")

    print("[large scale] drift pins on the named scenarios ...")
    drift = named_scenario_drift()
    print(f"[large scale] max relative estimator drift {drift['max_relative_drift']:.2e}")

    headline = routing_records[-1]
    payload = {
        "seed": SEED,
        "ns": list(ns),
        "routing_build": routing_records,
        "estimators": estimator_records,
        "drift": drift,
        "minimum_routing_speedup": minimum_speedup,
        "headline_routing_speedup": headline["speedup"],
        "cpu_count": os.cpu_count(),
    }
    merge_record(RECORD_PATH, "large_scale", payload)

    assert headline["speedup"] >= minimum_speedup, (
        f"routing build speedup {headline['speedup']:.1f}x at N={headline['num_nodes']} "
        f"below the required {minimum_speedup:.1f}x"
    )
    assert drift["max_relative_drift"] < 1e-3, (
        f"estimator drift {drift['max_relative_drift']:.2e} above 1e-3"
    )
    print(
        f"[large scale] OK (>= {minimum_speedup:.1f}x at N={headline['num_nodes']}), "
        f"recorded in {RECORD_PATH.name}"
    )
    return payload


# ----------------------------------------------------------------------
# PR 9 tier: telemetry overhead and trace export
# ----------------------------------------------------------------------

PR9_RECORD_PATH = REPO_ROOT / "BENCH_PR9.json"


def _min_seconds_paired(call_a, call_b, repeats: int) -> tuple[float, float]:
    """Min wall time of two calls measured interleaved.

    Alternating the measurements keeps slow drift on a shared runner
    (thermal, cache, noisy neighbours) from biasing the A-vs-B ratio the
    way two separate timing blocks would.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        call_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        call_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def telemetry_overhead_benchmark(n_nodes: int, repeats: int) -> dict:
    """Disabled-telemetry overhead on the N-node estimator tier.

    Compares the instrumented ``estimate`` entry points (auto-span
    wrapper + per-iteration flag checks, telemetry **disabled**) against
    the unwrapped implementations (``__wrapped__``), which is the closest
    in-process stand-in for the pre-telemetry code path.  Also
    microbenchmarks the disabled primitives themselves.
    """
    from repro import telemetry
    from repro.datasets import large_scenario
    from repro.estimation.registry import get_estimator

    assert not telemetry.is_enabled()
    scenario = large_scenario(n_nodes, seed=SEED)
    problem = scenario.snapshot_problem()

    methods = {}
    for name in ("tomogravity", "entropy"):
        estimator = get_estimator(name)
        wrapped = type(estimator).estimate
        unwrapped = wrapped.__wrapped__
        estimator.estimate(problem)  # warm the shared workspace for both paths
        baseline, disabled = _min_seconds_paired(
            lambda: unwrapped(estimator, problem),
            lambda: estimator.estimate(problem),
            repeats,
        )
        methods[name] = {
            "baseline_seconds": baseline,
            "disabled_seconds": disabled,
            "overhead_ratio": (disabled - baseline) / baseline,
        }

    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        with telemetry.span("noop"):
            pass
    span_ns = (time.perf_counter() - start) / calls * 1e9
    start = time.perf_counter()
    for _ in range(calls):
        telemetry.counter_inc("noop")
    counter_ns = (time.perf_counter() - start) / calls * 1e9

    return {
        "num_nodes": n_nodes,
        "repeats": repeats,
        "methods": methods,
        "max_overhead_ratio": max(m["overhead_ratio"] for m in methods.values()),
        "disabled_span_ns_per_call": span_ns,
        "disabled_counter_ns_per_call": counter_ns,
    }


def telemetry_trace_benchmark(n_nodes: int, trace_path: Path) -> dict:
    """Export a Chrome trace of a sharded N-node run (telemetry enabled)."""
    from repro import telemetry
    from repro.datasets import large_scenario
    from repro.evaluation.experiments import MethodSpec, method_comparison

    scenario = large_scenario(n_nodes, seed=SEED)
    # effective_jobs() clamps the shard fan-out to the CPU count; pin it
    # so the exported trace crosses the pool even on single-CPU runners.
    real_cpu_count = os.cpu_count
    os.cpu_count = lambda: max(2, real_cpu_count() or 1)
    telemetry.enable()
    try:
        specs = [
            MethodSpec(
                label="Sharded tomogravity",
                estimator="sharded",
                params={"base": "tomogravity", "num_regions": 4, "n_jobs": 2},
            )
        ]
        start = time.perf_counter()
        records = method_comparison(scenario, specs=specs, n_jobs=1)
        enabled_seconds = time.perf_counter() - start
        spans = telemetry.drain_spans()
        metrics = telemetry.metrics_snapshot()
    finally:
        telemetry.disable()
        telemetry.reset_telemetry()
        os.cpu_count = real_cpu_count

    telemetry.export_chrome_trace(str(trace_path), spans)
    worker_tasks = [s for s in spans if s.name == "pool.task"]
    return {
        "num_nodes": n_nodes,
        "mre": records[0].mre,
        "enabled_seconds": enabled_seconds,
        "num_spans": len(spans),
        "num_pool_tasks": len(worker_tasks),
        "worker_pids": sorted({s.process for s in worker_tasks}),
        "solver_iterations": metrics["counters"].get("solver.iterations", 0.0),
        "trace_file": trace_path.name,
    }


def main_pr9() -> dict:
    n_nodes = int(os.environ.get("BENCH_PR9_N", "100"))
    repeats = int(os.environ.get("BENCH_PR9_REPEATS", "5"))
    max_overhead = float(os.environ.get("BENCH_PR9_MAX_OVERHEAD", "0.02"))
    trace_path = REPO_ROOT / f"TRACE_PR9_N{n_nodes}.json"

    print(f"[telemetry] N={n_nodes}: disabled-telemetry overhead ({repeats} repeats) ...")
    overhead = telemetry_overhead_benchmark(n_nodes, repeats)
    for method, timing in overhead["methods"].items():
        print(
            f"[telemetry]     {method:12s} baseline {timing['baseline_seconds']:6.3f}s  "
            f"instrumented {timing['disabled_seconds']:6.3f}s  "
            f"overhead {timing['overhead_ratio'] * 100:+5.2f}%"
        )
    print(
        f"[telemetry]     disabled span() {overhead['disabled_span_ns_per_call']:.0f} ns/call, "
        f"counter_inc() {overhead['disabled_counter_ns_per_call']:.0f} ns/call"
    )

    print(f"[telemetry] N={n_nodes}: sharded trace export (telemetry enabled) ...")
    trace = telemetry_trace_benchmark(n_nodes, trace_path)
    print(
        f"[telemetry]     {trace['num_spans']} spans "
        f"({trace['num_pool_tasks']} pool tasks across workers {trace['worker_pids']}), "
        f"{trace['solver_iterations']:.0f} solver iterations -> {trace_path.name}"
    )

    payload = {
        "seed": SEED,
        "max_overhead": max_overhead,
        "overhead": overhead,
        "trace": trace,
        "cpu_count": os.cpu_count(),
    }
    merge_record(PR9_RECORD_PATH, "telemetry", payload)

    assert overhead["max_overhead_ratio"] <= max_overhead, (
        f"disabled-telemetry overhead {overhead['max_overhead_ratio'] * 100:.2f}% "
        f"above the required {max_overhead * 100:.1f}%"
    )
    assert trace["num_pool_tasks"] >= 1, "trace contains no cross-pool task spans"
    print(
        f"[telemetry] OK (disabled overhead <= {max_overhead * 100:.1f}%), "
        f"recorded in {PR9_RECORD_PATH.name}"
    )
    return payload


if __name__ == "__main__":
    if os.environ.get("BENCH_PR9_ONLY"):
        main_pr9()
    elif os.environ.get("BENCH_PR6_ONLY"):
        main_pr6()
    else:
        main()
        if not os.environ.get("BENCH_PR6_SKIP"):
            main_pr6()
        if not os.environ.get("BENCH_PR9_SKIP"):
            main_pr9()
