"""Acceptance benchmark: per-poll streaming update latency at scale.

The batch pipeline gets a whole day of polls at once and can afford
seconds per solve; the streaming daemon sits inside a five-minute poll
loop and must finish each incremental update long before the next round
arrives.  This benchmark drives :class:`~repro.streaming.StreamingEstimator`
over a ``large_scenario`` backbone (default N=200, i.e. 39 800 demands)
and times every ``process_round`` call:

* **warm path (gated)** — the incremental-IPF path (``kruithof`` with the
  previous estimate as the warm start) must complete its median per-poll
  update under the floor (100 ms on dedicated hardware; shared CI runners
  relax it via ``BENCH_PR10_MAX_POLL_MS``);
* **tomogravity (recorded)** — the default daemon method, timed for
  reference but ungated: its per-poll cost is dominated by the regularised
  solve, not the streaming machinery;
* **checkpoint round-trip (recorded)** — one ``checkpoint``/``restore``
  cycle at full scale, since the crash-safety story is only practical if
  saving state is much cheaper than a poll interval.

Results land under the ``streaming`` key of ``BENCH_PR10.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src BENCH_PR10_NS=100 BENCH_PR10_MAX_POLL_MS=250 \
        python benchmarks/bench_streaming.py
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchrecord import REPO_ROOT, merge_record

RECORD_PATH = REPO_ROOT / "BENCH_PR10.json"

SEED = 2010
#: Timed poll rounds per method (after the priming round).
ROUNDS = 8


def build_stream(num_nodes: int):
    from repro.datasets import large_scenario
    from repro.measurement.collector import DistributedCollector
    from repro.streaming import PollStream

    scenario = large_scenario(num_nodes, seed=SEED, num_samples=ROUNDS + 2)
    collector = DistributedCollector(
        scenario.routing,
        num_pollers=2,
        jitter_std_seconds=0.0,
        loss_probability=0.0,
        seed=SEED,
    )
    stream = PollStream.from_collector(collector, scenario.day_series)
    return scenario, collector, stream


def time_daemon(scenario, collector, stream, method: str, **kwargs) -> dict:
    from repro.streaming import StreamingEstimator

    daemon = StreamingEstimator.from_collector(
        collector,
        method=method,
        watchdog_every=10_000,  # keep cold re-solves out of the timed rounds
        **kwargs,
    )
    per_poll_ms = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for poll_round in stream.rounds():
            start = time.perf_counter()
            record = daemon.process_round(poll_round, stream)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            if record is not None:  # the priming round emits nothing
                per_poll_ms.append(elapsed_ms)
    return {
        "method": method,
        "rounds": len(per_poll_ms),
        "per_poll_ms_median": float(np.median(per_poll_ms)),
        "per_poll_ms_mean": float(np.mean(per_poll_ms)),
        "per_poll_ms_max": float(np.max(per_poll_ms)),
    }, daemon


def time_checkpoint(daemon, routing) -> dict:
    import tempfile

    from repro.streaming import StreamingEstimator

    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "bench.ckpt")
        start = time.perf_counter()
        daemon.checkpoint(path)
        save_ms = (time.perf_counter() - start) * 1e3
        size_bytes = os.path.getsize(path)
        start = time.perf_counter()
        StreamingEstimator.restore(path, routing)
        restore_ms = (time.perf_counter() - start) * 1e3
    return {
        "save_ms": float(save_ms),
        "restore_ms": float(restore_ms),
        "size_bytes": int(size_bytes),
    }


def main() -> int:
    num_nodes = int(os.environ.get("BENCH_PR10_NS", "200"))
    max_poll_ms = float(os.environ.get("BENCH_PR10_MAX_POLL_MS", "100"))

    print(f"building N={num_nodes} stream ({num_nodes * (num_nodes - 1)} demands)")
    scenario, collector, stream = build_stream(num_nodes)
    print(
        f"  {len(scenario.routing.link_names)} links, "
        f"{stream.num_rounds} poll rounds"
    )

    warm, warm_daemon = time_daemon(scenario, collector, stream, "kruithof")
    print(
        f"warm incremental-IPF path: median {warm['per_poll_ms_median']:.1f} ms/poll "
        f"(max {warm['per_poll_ms_max']:.1f} ms) over {warm['rounds']} rounds"
    )

    reference, _ = time_daemon(scenario, collector, stream, "tomogravity")
    print(
        f"tomogravity reference:     median {reference['per_poll_ms_median']:.1f} ms/poll "
        f"(max {reference['per_poll_ms_max']:.1f} ms)"
    )

    checkpoint = time_checkpoint(warm_daemon, scenario.routing)
    print(
        f"checkpoint round-trip: save {checkpoint['save_ms']:.1f} ms, "
        f"restore {checkpoint['restore_ms']:.1f} ms "
        f"({checkpoint['size_bytes'] / 1e6:.2f} MB)"
    )

    payload = {
        "num_nodes": num_nodes,
        "num_pairs": num_nodes * (num_nodes - 1),
        "num_links": len(scenario.routing.link_names),
        "max_poll_ms_floor": max_poll_ms,
        "warm_path": warm,
        "tomogravity_reference": reference,
        "checkpoint": checkpoint,
    }
    merge_record(RECORD_PATH, "streaming", payload)
    print(f"record written to {RECORD_PATH}")

    if warm["per_poll_ms_median"] >= max_poll_ms:
        print(
            f"FAIL: warm per-poll median {warm['per_poll_ms_median']:.1f} ms "
            f">= {max_poll_ms:.0f} ms floor"
        )
        return 1
    print(
        f"OK: warm per-poll median {warm['per_poll_ms_median']:.1f} ms "
        f"< {max_poll_ms:.0f} ms floor"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
