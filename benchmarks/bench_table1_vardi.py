"""Table 1 — Vardi-method MRE for sigma^-2 in {0.01, 1} on the 50-sample busy period.

Full faith in the Poisson assumption (sigma^-2 = 1) is much worse than a
small second-moment weight, and both are worse than the regularised methods.
"""

from __future__ import annotations

from conftest import run_once, save_result
from repro.evaluation.experiments import vardi_table


def test_table1_vardi(benchmark, europe, america):
    def run():
        return {
            "europe": vardi_table(europe, poisson_weights=(0.01, 1.0), window_length=50),
            "america": vardi_table(america, poisson_weights=(0.01, 1.0), window_length=50),
        }

    data = run_once(benchmark, run)
    table = {
        region: {str(r.parameters["poisson_weight"]): r.mre for r in records}
        for region, records in data.items()
    }
    save_result("table1_vardi", table)
    print("\n[Table 1] Vardi MRE (paper: EU 0.47/302, US 0.98/1183 for sigma^-2=0.01/1):")
    for region, rows in table.items():
        print(f"  {region}: sigma^-2=0.01 -> {rows['0.01']:.2f}, sigma^-2=1 -> {rows['1.0']:.2f}")
    for region in ("europe", "america"):
        assert table[region]["1.0"] > table[region]["0.01"]
