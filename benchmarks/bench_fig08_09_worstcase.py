"""Figures 8-9 — worst-case bounds on demands and the bound-midpoint (WCB) prior.

Most bounds are non-trivial but loose; the midpoints nevertheless form a
prior that is clearly better than the simple gravity model.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import gravity_scatter, worst_case_bound_scatter


def test_fig08_09_worst_case_bounds(benchmark, europe, america):
    def run():
        return {
            "europe": {
                "bounds": worst_case_bound_scatter(europe),
                "gravity_mre": gravity_scatter(europe)["mre"],
            },
            "america": {
                "bounds": worst_case_bound_scatter(america),
                "gravity_mre": gravity_scatter(america)["mre"],
            },
        }

    data = run_once(benchmark, run)
    save_result(
        "fig08_09_worstcase",
        {
            region: {
                "wcb_prior_mre": values["bounds"]["mre"],
                "gravity_mre": values["gravity_mre"],
                "num_exact": values["bounds"]["num_exact"],
            }
            for region, values in data.items()
        },
    )
    for region in ("europe", "america"):
        bounds = data[region]["bounds"]
        actual = bounds["actual"]
        inside = np.mean(
            (bounds["lower_bounds"] <= actual + 1e-6) & (actual <= bounds["upper_bounds"] + 1e-6)
        )
        print(
            f"\n[Fig 8/9] {region}: WCB-prior MRE {bounds['mre']:.2f} vs gravity "
            f"{data[region]['gravity_mre']:.2f}; {int(bounds['num_exact'])} demands exactly "
            f"identified; truth inside bounds for {inside:.0%} of demands"
        )
        assert inside > 0.99
        assert bounds["mre"] < data[region]["gravity_mre"]
