"""Vectorized SNMP collection versus the per-sample Python loop.

Acceptance benchmark for the batched measurement pipeline: collecting a full
day of five-minute counters on the America scenario (600 LSPs + 284 links =
884 objects x 288 intervals, ~254k samples) with the array-valued
``SNMPPoller`` / ``rates_from_poll_matrix`` / ``record_block`` path must be
at least 10x faster than the per-(object, interval) loop it replaced, while
producing the same archive.  The reference loop below reimplements the old
algorithm: per-object ``CounterState`` dictionaries, one ``PollResult`` per
(object, round), a nested-loop rate conversion, and one ``record`` call per
sample.  Both paths run noise-free so their outputs are directly comparable.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once, save_result

from repro.measurement import CounterState, DistributedCollector, PollResult

_COUNTER64_WRAP = 2**64


class _LegacyArchive:
    """The pre-vectorization archive: per-sample tuple appends, no arrays."""

    def __init__(self):
        self._samples = {}

    def record(self, object_name, timestamp, rate_mbps):
        if rate_mbps < 0:
            raise ValueError(f"negative rate recorded for {object_name!r}")
        self._samples.setdefault(object_name, []).append((float(timestamp), float(rate_mbps)))

    def rates_matrix(self, object_names):
        columns = [[rate for _, rate in self._samples[name]] for name in object_names]
        return np.array(columns, dtype=float).T


def _loop_object_rates(routing, snapshot):
    rates = {}
    for pair, value in zip(routing.pairs, snapshot.vector):
        rates[f"lsp:{pair.origin}->{pair.destination}"] = float(value)
    link_loads = routing.link_loads(snapshot.vector)
    for name, load in zip(routing.link_names, link_loads):
        rates[name] = float(load)
    return rates


def _loop_rates_from_polls(poll_rounds, object_names):
    name_index = {name: idx for idx, name in enumerate(object_names)}
    num_intervals = len(poll_rounds) - 1
    rates = np.full((num_intervals, len(object_names)), np.nan)
    by_round = [{result.object_name: result for result in round_} for round_ in poll_rounds]
    for name, col in name_index.items():
        for k in range(num_intervals):
            first, second = by_round[k][name], by_round[k + 1][name]
            if first.lost or second.lost:
                continue
            elapsed = second.response_time - first.response_time
            if elapsed <= 0:
                continue
            delta = (second.counter_bytes - first.counter_bytes) % _COUNTER64_WRAP
            rates[k, col] = delta * 8.0 / 1e6 / elapsed
        column = rates[:, col]
        valid = ~np.isnan(column)
        if not valid.all():
            indices = np.arange(num_intervals)
            column[~valid] = np.interp(indices[~valid], indices[valid], column[valid])
    return rates


def _collect_loop(routing, series, num_pollers):
    """The pre-vectorization collection pipeline, per sample in Python."""
    lsp_names = [f"lsp:{pair.origin}->{pair.destination}" for pair in routing.pairs]
    all_objects = lsp_names + list(routing.link_names)
    assignments = [all_objects[start::num_pollers] for start in range(num_pollers)]
    archive = _LegacyArchive()
    rate_series = [_loop_object_rates(routing, snapshot) for snapshot in series]
    start_time = series.start_time_seconds
    interval = series.interval_seconds
    timestamps = start_time + interval * np.arange(1, len(rate_series) + 1)
    for objects in assignments:
        counters = {name: CounterState(name) for name in objects}
        rounds = []
        for k in range(len(rate_series) + 1):
            rounds.append(
                [
                    PollResult(name, start_time + k * interval, start_time + k * interval,
                               counters[name].value_bytes)
                    for name in objects
                ]
            )
            if k < len(rate_series):
                for name in objects:
                    counters[name].advance(rate_series[k].get(name, 0.0), interval)
        rates = _loop_rates_from_polls(rounds, objects)
        for col, name in enumerate(objects):
            for k in range(rates.shape[0]):
                archive.record(name, float(timestamps[k]), float(rates[k, col]))
    return archive, lsp_names


def _time_once(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_measured_collection_beats_per_sample_loop(benchmark, america):
    series = america.day_series
    routing = america.routing
    num_pollers = 3

    def run():
        def vectorized():
            collector = DistributedCollector(
                routing, num_pollers=num_pollers,
                jitter_std_seconds=0.0, loss_probability=0.0, seed=0,
            )
            collector.collect(series)
            return collector

        collector, vectorized_seconds = _time_once(vectorized)
        (loop_archive, lsp_names), loop_seconds = _time_once(
            lambda: _collect_loop(routing, series, num_pollers)
        )

        measured = collector.archive.rates_matrix(lsp_names)
        reference = loop_archive.rates_matrix(lsp_names)
        scale = max(float(reference.max()), 1.0)
        max_difference = float(np.abs(measured - reference).max())
        link_difference = float(
            np.abs(
                collector.measured_link_loads()
                - loop_archive.rates_matrix(list(routing.link_names))
            ).max()
        )
        return {
            "num_objects": routing.num_pairs + routing.num_links,
            "num_intervals": len(series),
            "vectorized_seconds": vectorized_seconds,
            "loop_seconds": loop_seconds,
            "speedup": loop_seconds / vectorized_seconds,
            "max_difference": max_difference,
            "relative_difference": max_difference / scale,
            "link_load_difference": link_difference,
        }

    report = run_once(benchmark, run)
    save_result("measured_collection", report)
    print(
        f"\n[Measured collection] {report['num_objects']} objects x "
        f"{report['num_intervals']} intervals: "
        f"vectorized {report['vectorized_seconds']*1e3:7.1f} ms   "
        f"loop {report['loop_seconds']*1e3:8.1f} ms   "
        f"speedup {report['speedup']:5.1f}x   "
        f"max diff {report['max_difference']:.2e}"
    )

    # Acceptance: >= 10x over the per-sample loop at America scale, with the
    # same archive contents (noise-free, so both paths see identical rates
    # up to one byte of counter rounding).
    assert report["speedup"] >= 10.0
    assert report["relative_difference"] < 1e-9
    assert report["link_load_difference"] < 1e-3
