"""Figure 15 — Bayesian MRE vs. regularisation for the gravity and WCB priors.

The worst-case-bound prior gives significantly better results at small
regularisation (where the prior dominates); at large regularisation the two
priors converge.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import prior_comparison_sweep

REGULARIZATIONS = tuple(np.logspace(-5, 5, 11))


def test_fig15_prior_comparison(benchmark, europe, america):
    def run():
        return {
            "europe": prior_comparison_sweep(europe, regularizations=REGULARIZATIONS),
            "america": prior_comparison_sweep(america, regularizations=REGULARIZATIONS),
        }

    data = run_once(benchmark, run)
    save_result("fig15_prior_comparison", data)
    for region in ("europe", "america"):
        series = data[region]
        print(
            f"\n[Fig 15] {region}: at reg=1e-5 gravity-prior MRE "
            f"{series['gravity_prior_mre'][0]:.2f} vs WCB-prior MRE "
            f"{series['wcb_prior_mre'][0]:.2f}; at reg=1e5 "
            f"{series['gravity_prior_mre'][-1]:.2f} vs {series['wcb_prior_mre'][-1]:.2f}"
        )
        # Shape: the WCB prior wins clearly when the prior dominates ...
        assert series["wcb_prior_mre"][0] < series["gravity_prior_mre"][0]
        # ... and the gap narrows once the measurements dominate (the paper's
        # "practically equal"; on the synthetic data a residual gap remains
        # because the null-space component stays prior-determined).
        small_reg_gap = series["gravity_prior_mre"][0] - series["wcb_prior_mre"][0]
        large_reg_gap = series["gravity_prior_mre"][-1] - series["wcb_prior_mre"][-1]
        assert large_reg_gap <= small_reg_gap + 1e-9
