"""Batched series estimation versus the per-snapshot loop.

Acceptance benchmark for the ``estimate_series`` path: on the 50-sample
busy period of the Europe scenario, the batched Bayesian estimator (one
normal-equations factorisation serving every snapshot) must beat estimating
the snapshots one at a time, while producing the same estimates.  The
vectorised gravity and Kruithof batches are timed alongside for the record.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once, save_result

from repro.estimation import get_estimator

WINDOW = 50
METHODS = (
    ("bayesian", {"regularization": 1000.0, "prior": "gravity"}),
    ("gravity", {}),
    ("kruithof", {}),
)


def _time_once(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_series_estimation_beats_per_snapshot_loop(benchmark, europe):
    window = min(WINDOW, europe.busy_length)
    problem = europe.series_problem(window_length=window)

    def run():
        report = {}
        for name, params in METHODS:
            estimator = get_estimator(name, **params)
            batched, batched_seconds = _time_once(lambda: estimator.estimate_series(problem))
            loop, loop_seconds = _time_once(
                lambda: np.stack(
                    [
                        estimator.estimate(problem.at_snapshot(k)).vector
                        for k in range(window)
                    ]
                )
            )
            scale = max(float(loop.max()), 1.0)
            max_difference = float(np.abs(batched.estimates - loop).max())
            report[name] = {
                "batched_seconds": batched_seconds,
                "loop_seconds": loop_seconds,
                "speedup": loop_seconds / batched_seconds,
                "max_difference": max_difference,
                "relative_difference": max_difference / scale,
                "window": window,
            }
        return report

    report = run_once(benchmark, run)
    save_result("series_estimation", report)
    print(f"\n[Series estimation] batched vs per-snapshot loop (K={window}):")
    for name, row in report.items():
        print(
            f"  {name:10s} batched {row['batched_seconds']*1e3:7.1f} ms   "
            f"loop {row['loop_seconds']*1e3:7.1f} ms   "
            f"speedup {row['speedup']:5.1f}x   "
            f"max diff {row['max_difference']:.2e}"
        )

    # The headline acceptance: factor-once Bayesian beats the loop while
    # agreeing with it numerically.
    bayesian = report["bayesian"]
    assert bayesian["speedup"] > 1.0
    assert bayesian["relative_difference"] < 1e-6
    # The vectorised closed-form batches must agree as well.
    for name in ("gravity", "kruithof"):
        assert report[name]["relative_difference"] < 1e-6
