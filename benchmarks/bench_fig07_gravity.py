"""Figure 7 — real demands vs. simple gravity model estimates.

The gravity model is a reasonable prior for the European network but badly
underestimates the large demands of the American network, whose PoPs have a
few dominating destinations.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import gravity_scatter


def test_fig07_gravity_scatter(benchmark, europe, america):
    def run():
        return {"europe": gravity_scatter(europe), "america": gravity_scatter(america)}

    data = run_once(benchmark, run)
    save_result(
        "fig07_gravity",
        {region: {"mre": values["mre"]} for region, values in data.items()},
    )

    def underestimation_of_large_demands(values):
        actual, estimated = values["actual"], values["estimated"]
        largest = np.argsort(actual)[-20:]
        return float(np.mean(estimated[largest] / actual[largest]))

    eu_ratio = underestimation_of_large_demands(data["europe"])
    us_ratio = underestimation_of_large_demands(data["america"])
    print(
        f"\n[Fig 7] gravity MRE: Europe {data['europe']['mre']:.2f} (paper 0.26), "
        f"America {data['america']['mre']:.2f} (paper 0.78); "
        f"mean estimated/actual on the 20 largest demands: EU {eu_ratio:.2f}, US {us_ratio:.2f}"
    )
    # Shape: gravity is much worse on the America-like network and
    # underestimates its large demands.
    assert data["america"]["mre"] > 1.5 * data["europe"]["mre"]
    assert us_ratio < eu_ratio
    assert us_ratio < 0.85
