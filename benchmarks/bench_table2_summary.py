"""Table 2 — best-MRE summary of every estimation method on both networks.

The qualitative ordering to reproduce: regularised methods (Bayesian /
entropy) best, the WCB prior better than the simple gravity prior, fanout
estimation in between, and the Vardi approach worst.
"""

from __future__ import annotations

from conftest import run_once, save_result
from repro.evaluation.experiments import method_comparison, summary_table


def test_table2_method_summary(benchmark, europe, america):
    def run():
        records = method_comparison(europe) + method_comparison(america)
        return summary_table(records)

    table = run_once(benchmark, run)
    save_result("table2_summary", table)
    print("\n[Table 2] MRE summary (rows: method, columns: europe / america):")
    for method, row in table.items():
        eu = row.get("europe", float("nan"))
        us = row.get("america", float("nan"))
        print(f"  {method:28s} {eu:6.2f} {us:6.2f}")

    for region in ("europe", "america"):
        gravity = table["Simple gravity prior"][region]
        assert table["Entropy w. gravity prior"][region] < gravity
        assert table["Worst-case bound prior"][region] < gravity
        assert table["Bayes w. WCB prior"][region] < gravity
        assert table["Vardi"][region] > table["Entropy w. gravity prior"][region]
