"""Figure 11 — fanout-estimation MRE as a function of the measurement window.

The error drops over the first few snapshots and then levels out.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.evaluation.figures import fanout_mre_vs_window

WINDOWS = (1, 2, 3, 5, 10, 20, 30, 40)


def test_fig11_fanout_mre_vs_window(benchmark, europe, america):
    def run():
        return {
            "europe": fanout_mre_vs_window(europe, window_lengths=WINDOWS),
            "america": fanout_mre_vs_window(america, window_lengths=WINDOWS),
        }

    data = run_once(benchmark, run)
    save_result("fig11_fanout_mre", data)
    for region in ("europe", "america"):
        series = data[region]
        printable = {int(w): round(float(m), 3) for w, m in zip(series["window_lengths"], series["mre"])}
        print(f"\n[Fig 11] {region} fanout MRE vs window: {printable}")
        # Shape: longer windows do not make things worse once past the first few
        # samples (error levels out rather than growing).
        late = series["mre"][-3:]
        assert np.max(late) <= np.max(series["mre"]) + 1e-9
