"""Acceptance benchmark: batched worst-case-bound engine vs the serial loop.

The paper (Section 4.3.1) warns that the worst-case-bound method costs two
LPs per origin-destination pair; at America scale that is 1,200 cold-start
LPs per snapshot.  The batched engine
(:func:`repro.optimize.linear_program.bound_variables_batch`) builds the
sparse constraint model once, resolves rank-pinned and combinatorially
tight pairs without any LP, re-solves the survivors incrementally from the
previous optimal basis, and skips minimisation LPs certified by zero
witnesses.

This benchmark times the legacy per-pair loop (re-implemented below
exactly as ``worst_case_bounds`` ran it before the batch engine: one
cold-start ``linprog`` call per LP over the shared augmented system)
against the batched engine on the full America snapshot, checks the bounds
agree within solver tolerance, and appends the measurement to
``BENCH_PR3.json`` at the repository root.

Run directly (CI uses a relaxed threshold for slower shared runners)::

    PYTHONPATH=src python benchmarks/bench_worstcase_bounds.py
    PYTHONPATH=src BENCH_PR3_MIN_WCB_SPEEDUP=2.0 python benchmarks/bench_worstcase_bounds.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from benchrecord import REPO_ROOT, merge_record

RECORD_PATH = REPO_ROOT / "BENCH_PR3.json"


def serial_reference_bounds(matrix, rhs, num_pairs):
    """The pre-batch-engine loop: two cold-start HiGHS LPs per pair."""
    from repro.optimize.linear_program import solve_linear_program

    lower = np.empty(num_pairs)
    upper = np.empty(num_pairs)
    for index in range(num_pairs):
        cost = np.zeros(num_pairs)
        cost[index] = 1.0
        lower[index] = solve_linear_program(cost, matrix, rhs, maximise=False).objective
        upper[index] = solve_linear_program(cost, matrix, rhs, maximise=True).objective
    return lower, upper


def main() -> dict:
    from repro.datasets import america_scenario
    from repro.optimize.linear_program import bound_variables_batch

    minimum_speedup = float(os.environ.get("BENCH_PR3_MIN_WCB_SPEEDUP", "5.0"))

    print("[worstcase bounds] building the America scenario ...")
    scenario = america_scenario()
    problem = scenario.snapshot_problem()
    matrix, rhs = problem.augmented_system()
    num_pairs = problem.num_pairs

    print(f"[worstcase bounds] batched engine over {num_pairs} pairs ...")
    start = time.perf_counter()
    batch = bound_variables_batch(range(num_pairs), matrix, rhs)
    batched_seconds = time.perf_counter() - start

    print(f"[worstcase bounds] serial per-pair loop ({2 * num_pairs} LPs) ...")
    start = time.perf_counter()
    serial_lower, serial_upper = serial_reference_bounds(matrix, rhs, num_pairs)
    serial_seconds = time.perf_counter() - start

    scale = max(1.0, float(np.asarray(rhs).max()))
    lower_difference = float(np.abs(batch.lower - serial_lower).max()) / scale
    upper_difference = float(np.abs(batch.upper - serial_upper).max()) / scale
    speedup = serial_seconds / batched_seconds

    payload = {
        "scenario": "america",
        "num_pairs": num_pairs,
        "num_constraints": int(np.asarray(rhs).shape[0]),
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
        "minimum_speedup": minimum_speedup,
        "engine": batch.engine,
        "num_pinned": batch.num_pinned,
        "num_tight": batch.num_tight,
        "num_lps_solved": batch.num_lps_solved,
        "num_lower_skipped": batch.num_lower_skipped,
        "max_relative_lower_difference": lower_difference,
        "max_relative_upper_difference": upper_difference,
        "cpu_count": os.cpu_count(),
    }
    merge_record(RECORD_PATH, "worstcase_bounds", payload)

    print(
        f"[worstcase bounds] serial {serial_seconds:6.2f}s  "
        f"batched {batched_seconds:6.2f}s  speedup {speedup:5.2f}x  "
        f"(pinned {batch.num_pinned}, LPs {batch.num_lps_solved}/{2 * num_pairs}, "
        f"min-LPs skipped {batch.num_lower_skipped}, engine {batch.engine})"
    )
    print(
        f"[worstcase bounds] max relative bound difference: "
        f"lower {lower_difference:.2e}, upper {upper_difference:.2e}"
    )

    assert lower_difference < 1e-6, "batched lower bounds diverge from the serial loop"
    assert upper_difference < 1e-6, "batched upper bounds diverge from the serial loop"
    assert speedup >= minimum_speedup, (
        f"batched engine speedup {speedup:.2f}x below the "
        f"required {minimum_speedup:.1f}x"
    )
    print(f"[worstcase bounds] OK (>= {minimum_speedup:.1f}x), recorded in {RECORD_PATH.name}")
    return payload


if __name__ == "__main__":
    main()
