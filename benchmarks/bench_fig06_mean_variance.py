"""Figure 6 — mean-variance relation of the busy-period demands.

The paper fits Var = phi * mean^c with (phi, c) = (0.82, 1.6) for Europe and
(2.44, 1.5) for America; the synthetic scenarios are calibrated to the same
law and the fit must recover an exponent in that range.
"""

from __future__ import annotations

from conftest import run_once, save_result
from repro.evaluation.figures import mean_variance_relation


def test_fig06_mean_variance_relation(benchmark, europe, america):
    def run():
        return {
            "europe": mean_variance_relation(europe),
            "america": mean_variance_relation(america),
        }

    data = run_once(benchmark, run)
    save_result(
        "fig06_mean_variance",
        {
            region: {"phi": values["phi"], "c": values["c"]}
            for region, values in data.items()
        },
    )
    print(
        f"\n[Fig 6] fitted scaling law: Europe phi={data['europe']['phi']:.2f} "
        f"c={data['europe']['c']:.2f} (paper 0.82/1.6); "
        f"America phi={data['america']['phi']:.2f} c={data['america']['c']:.2f} (paper 2.44/1.5)"
    )
    for region in ("europe", "america"):
        assert 1.2 < data[region]["c"] < 2.0
