"""Ablation — solver choices behind the estimators.

Compares the active-set and projected-gradient NNLS solvers inside the
Bayesian estimator (same estimate, different cost) and measures the cost of
the entropy estimator, justifying the library defaults.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once, save_result
from repro.estimation import BayesianEstimator, EntropyEstimator
from repro.evaluation import mean_relative_error


def test_ablation_solver_choice(benchmark, europe):
    truth = europe.busy_mean_matrix()
    problem = europe.snapshot_problem(truth)

    def run():
        active = BayesianEstimator(regularization=1000.0, solver="active-set").estimate(problem)
        projected = BayesianEstimator(
            regularization=1000.0, solver="projected-gradient"
        ).estimate(problem)
        entropy = EntropyEstimator(regularization=1000.0).estimate(problem)
        return {
            "active_set_mre": mean_relative_error(active.estimate, truth),
            "projected_gradient_mre": mean_relative_error(projected.estimate, truth),
            "entropy_mre": mean_relative_error(entropy.estimate, truth),
            "solution_difference": float(
                np.linalg.norm(active.vector - projected.vector)
                / max(np.linalg.norm(active.vector), 1e-9)
            ),
        }

    data = run_once(benchmark, run)
    save_result("ablation_solvers", data)
    print(
        f"\n[Ablation] Bayesian estimate: active-set MRE {data['active_set_mre']:.3f} vs "
        f"projected-gradient MRE {data['projected_gradient_mre']:.3f} "
        f"(relative solution difference {data['solution_difference']:.1%})"
    )
    assert abs(data["active_set_mre"] - data["projected_gradient_mre"]) < 0.05
