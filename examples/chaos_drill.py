"""Chaos drill: run the full estimation pipeline under a seeded fault plan.

An operational traffic-matrix pipeline has to survive the ways real SNMP
collection breaks: UDP loss bursts, routers rebooting mid-schedule (counter
resets), clock skew on a line card, a whole poller dropping out, and
solvers that refuse to converge on the damaged data.  This drill injects
all of them — deterministically, from one seed — and shows the pipeline
degrade *and report* instead of crashing:

1. build a synthetic scenario and a composable :class:`FaultPlan`;
2. collect measurements through the faulted pollers and derive rates
   (wraps recovered, resets interpolated, diagnostics counted);
3. sweep estimators over the damaged archive with the ``supervised``
   wrapper — a deliberately starved iteration budget forces the entropy
   solver to fail and fall back down the chain;
4. print each record's structured :class:`DegradationReport`.

Re-run with a different ``CHAOS_SEED`` environment value to draw a fresh
— but equally reproducible — fault stream.

Run with::

    python examples/chaos_drill.py
"""

from __future__ import annotations

import os
import warnings

from repro.datasets import small_scenario
from repro.resilience import (
    ClockSkew,
    CollectorOutage,
    CounterReset,
    PollLossBurst,
    fault_plan,
)


def main() -> None:
    seed = int(os.environ.get("CHAOS_SEED", "0"))
    print(f"1. Building a 6-PoP scenario and a seeded fault plan (CHAOS_SEED={seed})...")
    scenario = small_scenario(seed=7, num_nodes=6, busy_length=8, num_samples=16)
    plan = fault_plan(
        PollLossBurst(start_round=3, num_rounds=4, fraction=0.7),
        CounterReset(round_index=9),
        ClockSkew(offset_seconds=20.0, start_round=5),
        CollectorOutage(poller_index=0, start_round=6, num_rounds=2),
        seed=seed,
    )
    print(f"   {plan.describe()}")

    print("2. Collecting through 2 faulted pollers (2% baseline UDP loss)...")
    measured = scenario.measured(
        loss_probability=0.02, num_pollers=2, seed=seed, fault_plan=plan
    )
    diagnostics = measured.collector.collection_diagnostics()
    print(
        f"   {diagnostics.total_samples} samples: "
        f"{diagnostics.lost_samples} lost, "
        f"{diagnostics.interpolated_samples} interpolated, "
        f"{diagnostics.reset_samples} reset, "
        f"{diagnostics.wrap_samples} wrapped"
    )

    print("3. Sweeping estimators over the damaged archive (budget-starved entropy)...")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", RuntimeWarning)
        records = measured.sweep(
            methods=[
                "gravity",
                "tomogravity",
                (
                    "supervised",
                    {
                        "primary": "entropy",
                        "primary_params": {"prior": "gravity"},
                        "fallbacks": ("tomogravity", "gravity"),
                        "max_iterations": 2,
                        "retries": 0,
                    },
                ),
            ],
            window_length=4,
        )
    for warning in caught:
        print(f"   warning: {warning.message}")

    print("4. Every record completed; degradations are structured, not fatal:")
    for record in records:
        line = f"   {record.method:<12} MRE {record.mre:.3f}"
        report = record.degradation
        if report is None or not report.get("degraded"):
            print(line + "  (clean)")
            continue
        print(
            line
            + f"  DEGRADED: requested {report['requested']!r}, "
            + f"used {report['used']!r} after {report['attempts']} attempts"
        )
        for event in report["events"]:
            print(f"                [{event['stage']}] {event['kind']}: {event['detail']}")

    print(
        "\nThe drill is fully deterministic: the same CHAOS_SEED reproduces the "
        "same losses, the same diagnostics, and the same degradation reports."
    )


if __name__ == "__main__":
    main()
