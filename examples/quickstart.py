"""Quickstart: estimate a traffic matrix from link loads and score it.

This example walks through the complete workflow of the library on the
Europe-like reference scenario:

1. build the scenario (topology + routing + a day of synthetic demand);
2. form the estimation problem from the *observable* quantities (routing
   matrix, link loads, edge totals);
3. run the simple gravity model and the tomogravity (entropy-regularised)
   estimator;
4. compare both against the ground truth with the paper's mean relative
   error (MRE) metric.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets import europe_scenario
from repro.estimation import EntropyEstimator, SimpleGravityEstimator
from repro.evaluation import demand_ranking_correlation, mean_relative_error


def main() -> None:
    print("Building the Europe-like scenario (12 PoPs, 132 demands, 72 links)...")
    scenario = europe_scenario()
    description = scenario.describe()
    print(
        f"  PoPs: {description['num_pops']:.0f}, links: {description['num_links']:.0f}, "
        f"demands: {description['num_pairs']:.0f}, "
        f"routing-matrix rank: {description['routing_rank']:.0f}"
    )

    # The ground truth is the busy-period mean traffic matrix; the estimators
    # only ever see link loads and edge totals derived from it.
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)
    print(f"  busy-period total traffic: {truth.total:.0f} Mbit/s")

    print("\nRunning the simple gravity model (prior only, ignores interior links)...")
    gravity = SimpleGravityEstimator().estimate(problem)
    gravity_mre = mean_relative_error(gravity.estimate, truth)
    print(f"  gravity MRE over the large demands: {gravity_mre:.3f}")

    print("Running tomogravity (entropy-regularised fit with a gravity prior)...")
    tomogravity = EntropyEstimator(regularization=1000.0, prior="gravity").estimate(problem)
    tomogravity_mre = mean_relative_error(tomogravity.estimate, truth)
    print(f"  tomogravity MRE over the large demands: {tomogravity_mre:.3f}")
    print(f"  link-load residual: {tomogravity.diagnostics['residual_norm']:.2e}")

    ranking = demand_ranking_correlation(tomogravity.estimate, truth)
    print(f"  rank correlation with the true demand sizes: {ranking:.3f}")

    print("\nLargest five demands, true vs. estimated (Mbit/s):")
    for pair in truth.top_demands(5):
        print(
            f"  {str(pair):12s} true {truth.demand(pair):8.1f}   "
            f"estimated {tomogravity.estimate.demand(pair):8.1f}"
        )

    improvement = (1.0 - tomogravity_mre / gravity_mre) * 100.0
    print(
        f"\nTomogravity improves on the raw gravity prior by {improvement:.0f}% "
        "on this scenario, matching the paper's qualitative finding that the "
        "regularised methods give the best results."
    )


if __name__ == "__main__":
    main()
