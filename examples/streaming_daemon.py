"""Streaming estimation daemon with a kill -9 crash drill.

The batch pipeline estimates yesterday's traffic matrix; this example runs
the :class:`~repro.streaming.StreamingEstimator` the way an operator
would: polls arrive one round at a time through a seeded fault plan
(loss bursts, a collector outage, a counter reset, clock skew), every
per-interval estimate is appended to a JSONL record log, and the daemon
checkpoints its full state after each record.

Three modes:

* default — consume the whole stream, print a summary;
* ``--kill-after N`` — after emitting record ``N``, the process SIGKILLs
  *itself* (a real ``kill -9``, no cleanup handlers run).  Restart with
  ``--resume`` to continue from the last checkpoint;
* ``--drill`` — run all three phases (uninterrupted run, killed run,
  resumed run) and verify that the merged record log of the crashed
  lineage is **bit-identical** to the uninterrupted one.  Exits non-zero
  on any mismatch; this is what the CI soak job runs.

Re-run with a different ``CHAOS_SEED`` environment value for a fresh —
but equally reproducible — fault stream.

Run with::

    python examples/streaming_daemon.py --drill
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import warnings

from repro.datasets import small_scenario
from repro.measurement.collector import DistributedCollector
from repro.resilience import (
    ClockSkew,
    CollectorOutage,
    CounterReset,
    PollLossBurst,
    fault_plan,
)
from repro.streaming import PollStream, StreamingEstimator


def build_pieces(seed: int, num_samples: int):
    """Scenario, fault plan and a collector factory, all seeded."""
    scenario = small_scenario(seed=7, num_nodes=6, busy_length=8, num_samples=num_samples)
    plan = fault_plan(
        PollLossBurst(start_round=3, num_rounds=2, fraction=0.7),
        CounterReset(round_index=9),
        ClockSkew(offset_seconds=20.0, start_round=5),
        CollectorOutage(poller_index=0, start_round=6, num_rounds=2),
        seed=seed,
    )

    def make_collector() -> DistributedCollector:
        return DistributedCollector(
            scenario.routing,
            num_pollers=2,
            loss_probability=0.02,
            seed=seed,
            fault_plan=plan,
        )

    return scenario, plan, make_collector


def run_daemon(args) -> None:
    """Consume the stream, appending records and checkpointing as we go."""
    scenario, plan, make_collector = build_pieces(args.seed, args.samples)
    stream = PollStream.from_collector(make_collector(), scenario.day_series)

    if args.resume:
        daemon = StreamingEstimator.restore(args.checkpoint, scenario.routing)
        mode = f"resumed from round {daemon.rounds_seen}"
        log = open(args.records, "a")
    else:
        daemon = StreamingEstimator.from_collector(
            make_collector(),
            method="tomogravity",
            watchdog_every=4,
            min_valid_fraction=0.5,
        )
        mode = "fresh"
        log = open(args.records, "w")

    if not args.quiet:
        print(f"streaming daemon ({mode}); fault plan: {plan.describe()}")
    with log:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for record in daemon.run(stream):
                log.write(record.payload_line() + "\n")
                log.flush()
                daemon.checkpoint(args.checkpoint)
                if not args.quiet:
                    flags = []
                    if record.stale:
                        flags.append(f"STALE x{record.stale_intervals}")
                    if record.degraded:
                        flags.append("DEGRADED")
                    if record.watchdog_checked:
                        flags.append(f"watchdog drift={record.watchdog_drift:.2e}")
                    print(
                        f"  [{record.sequence:03d}] t={record.timestamp:7.0f}s "
                        f"epoch={record.epoch} method={record.method:<12} "
                        f"valid={record.valid_fraction:4.0%} "
                        + (" ".join(flags) if flags else "ok")
                    )
                if args.kill_after is not None and record.sequence == args.kill_after:
                    # A genuine kill -9: no atexit, no finally blocks.
                    os.kill(os.getpid(), signal.SIGKILL)
    if not args.quiet:
        print(
            f"done: {daemon.sequence} records, {daemon.stale_polls} stale, "
            f"{daemon.degraded_updates} degraded, "
            f"{daemon.watchdog_checks} watchdog checks "
            f"({daemon.watchdog_resolves} resolves)"
        )


def merged_sequences(path: str) -> list[str]:
    """Record lines deduplicated by sequence (first write wins), in order."""
    lines: dict[int, str] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            sequence = json.loads(line)["sequence"]
            lines.setdefault(sequence, line)
    return [lines[key] for key in sorted(lines)]


def run_drill(args) -> int:
    """Uninterrupted vs killed-and-resumed run; records must be identical."""
    base_cmd = [
        sys.executable,
        os.path.abspath(__file__),
        "--seed",
        str(args.seed),
        "--samples",
        str(args.samples),
        "--quiet",
    ]
    with tempfile.TemporaryDirectory() as workdir:
        full = os.path.join(workdir, "full.jsonl")
        crashed = os.path.join(workdir, "crashed.jsonl")
        ckpt_full = os.path.join(workdir, "full.ckpt")
        ckpt_crashed = os.path.join(workdir, "crashed.ckpt")

        print(f"phase 1: uninterrupted run (CHAOS_SEED={args.seed})")
        subprocess.run(
            base_cmd + ["--records", full, "--checkpoint", ckpt_full], check=True
        )

        kill_at = args.kill_after
        print(f"phase 2: run killed with SIGKILL after record {kill_at}")
        killed = subprocess.run(
            base_cmd
            + [
                "--records",
                crashed,
                "--checkpoint",
                ckpt_crashed,
                "--kill-after",
                str(kill_at),
            ]
        )
        if killed.returncode != -signal.SIGKILL:
            print(f"FAIL: expected SIGKILL exit, got {killed.returncode}")
            return 1

        print("phase 3: resume from the last checkpoint")
        subprocess.run(
            base_cmd
            + ["--records", crashed, "--checkpoint", ckpt_crashed, "--resume"],
            check=True,
        )

        full_lines = merged_sequences(full)
        crash_lines = merged_sequences(crashed)
        if full_lines == crash_lines:
            print(
                f"OK: {len(crash_lines)} records from the crashed lineage are "
                "bit-identical to the uninterrupted run"
            )
            return 0
        print("FAIL: record logs differ")
        for index, (a, b) in enumerate(zip(full_lines, crash_lines)):
            if a != b:
                print(f"  first difference at record {index}:")
                print(f"    full:    {a[:120]}")
                print(f"    crashed: {b[:120]}")
                break
        if len(full_lines) != len(crash_lines):
            print(f"  lengths differ: {len(full_lines)} vs {len(crash_lines)}")
        return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", default="streaming_records.jsonl")
    parser.add_argument("--checkpoint", default="streaming.ckpt")
    parser.add_argument("--seed", type=int, default=int(os.environ.get("CHAOS_SEED", "0")))
    parser.add_argument("--samples", type=int, default=16)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--kill-after", type=int, default=None)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--drill", action="store_true")
    args = parser.parse_args()
    if args.drill:
        if args.kill_after is None:
            args.kill_after = args.samples // 3
        return run_drill(args)
    run_daemon(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
