"""Tracing an estimation run with repro.telemetry.

This example turns telemetry on, runs the hierarchical sharded estimator
over a mid-size synthetic backbone (fanning the region shards over a
process pool when more than one CPU is available), and then shows the
three ways out of the collected trace:

1. the per-stage summary rollup (``format_summary``) — count, total,
   mean, max and *self* time per stage, straight to the terminal;
2. a Chrome trace-event file (``trace_estimation.json``) — open it at
   ``chrome://tracing`` or https://ui.perfetto.dev to see the parent
   process and every pool worker on one wall-clock timeline, with the
   worker spans re-parented under the submitting ``pool.run`` span;
3. a JSONL span dump (``trace_estimation_spans.jsonl``) — one JSON
   object per span, for ad-hoc analysis.

It also prints the metrics registry: solver iterations (counted at the
``budget_tick`` call sites inside the entropy/FISTA/IPF loops), IPF
sweeps, workspace cache hits and the pool queue-wait/execute histograms.

Run with::

    python examples/trace_estimation.py
"""

from __future__ import annotations

import os

from repro import telemetry
from repro.datasets import large_scenario
from repro.estimation import get_estimator


def main() -> None:
    n_jobs = min(4, os.cpu_count() or 1)
    print("Building a 60-PoP synthetic backbone (3540 demands)...")
    scenario = large_scenario(num_nodes=60, seed=1, busy_length=8, num_samples=16)
    problem = scenario.snapshot_problem()

    print(f"Tracing a sharded tomogravity estimate (n_jobs={n_jobs})...")
    telemetry.enable()
    estimator = get_estimator(
        "sharded", base="tomogravity", num_regions=4, n_jobs=n_jobs
    )
    result = estimator.estimate(problem)
    telemetry.disable()

    print(
        f"  estimate done: {result.diagnostics['num_shards']} shards over "
        f"{result.diagnostics['num_regions']} regions"
    )

    print("\nWhere did the seconds go?\n")
    print(telemetry.format_summary())

    snapshot = telemetry.metrics_snapshot()
    print("\nCounters:")
    for name, value in sorted(snapshot["counters"].items()):
        print(f"  {name:<28} {value:>10.0f}")
    if snapshot["histograms"]:
        print("Histograms (mean / p95 / max):")
        for name, stats in sorted(snapshot["histograms"].items()):
            print(
                f"  {name:<28} {stats['mean']:.4f} / {stats['p95']:.4f} / "
                f"{stats['max']:.4f}  (n={stats['count']:.0f})"
            )

    spans = telemetry.export_chrome_trace("trace_estimation.json")
    telemetry.export_spans_jsonl("trace_estimation_spans.jsonl")
    print(
        f"\nWrote {spans} spans to trace_estimation.json "
        "(open in chrome://tracing or https://ui.perfetto.dev) "
        "and trace_estimation_spans.jsonl"
    )


if __name__ == "__main__":
    main()
