"""Compare every estimation method on both reference networks (paper Table 2).

The script reproduces the paper's summary comparison: for the Europe-like
and America-like scenarios it runs

* the simple gravity model (prior only),
* the worst-case-bound midpoint prior,
* the entropy and Bayesian regularised estimators with a gravity prior,
* the Bayesian estimator with the WCB prior,
* fanout estimation over a 10-snapshot window, and
* the Vardi moment-matching approach over the 50-sample busy period,

and prints one MRE per (method, network) cell.  Expect the regularised
methods to win, the WCB prior to beat the gravity prior, and Vardi to trail
the field — the ordering reported in the paper.

Run with::

    python examples/method_comparison.py [--skip-america]
"""

from __future__ import annotations

import argparse

from repro.datasets import america_scenario, europe_scenario
from repro.evaluation import method_comparison, summary_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-america",
        action="store_true",
        help="only run the (faster) European scenario",
    )
    arguments = parser.parse_args()

    records = []
    print("Running the method comparison on the Europe-like network...")
    records += method_comparison(europe_scenario())
    if not arguments.skip_america:
        print("Running the method comparison on the America-like network "
              "(the worst-case bounds solve 1200 linear programs, be patient)...")
        records += method_comparison(america_scenario())

    table = summary_table(records)
    scenarios = sorted({record.scenario for record in records})
    header = "method".ljust(28) + "".join(name.rjust(12) for name in scenarios)
    print("\nMean relative error over the demands carrying ~90% of traffic:")
    print(header)
    print("-" * len(header))
    for method, row in table.items():
        cells = "".join(
            f"{row[name]:12.3f}" if name in row else " " * 12 for name in scenarios
        )
        print(method.ljust(28) + cells)

    print(
        "\nPaper reference (Table 2) — Europe / America: WCB prior 0.10/0.39, "
        "gravity 0.26/0.78, entropy 0.11/0.22, Bayes 0.08/0.25, "
        "Bayes+WCB 0.07/0.23, fanout 0.22/0.40, Vardi 0.47/0.98."
    )
    print(
        "Absolute values differ because the underlying traffic is synthetic, "
        "but the ordering of the methods should match."
    )


if __name__ == "__main__":
    main()
