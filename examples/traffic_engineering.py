"""Traffic-engineering case study: how estimation errors affect link loads.

The paper motivates traffic-matrix estimation with traffic-engineering tasks
such as load balancing and failure analysis, and its MRE metric focuses on
the large demands because those drive link utilisations.  This example makes
that connection concrete using the :mod:`repro.planning` subsystem:

1. estimate the Europe-like traffic matrix from link loads (tomogravity,
   gravity prior);
2. find the binding failure — the single-link case with the highest
   re-routed utilisation — with the what-if engine;
3. compare the post-failure link utilisations predicted from the estimates
   against the ones the true matrix produces, and report how far off the
   estimate-driven planning decision would be;
4. repeat with the worst-case-bound prior to show how a better prior
   tightens the utilisation forecast.

Run with::

    python examples/traffic_engineering.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import europe_scenario
from repro.estimation import BayesianEstimator, EntropyEstimator, worst_case_bound_prior
from repro.evaluation import mean_relative_error
from repro.planning import FailureCase


def main() -> None:
    print("Building the Europe-like scenario and estimating its traffic matrix...")
    scenario = europe_scenario()
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)

    tomogravity = EntropyEstimator(regularization=1000.0, prior="gravity").estimate(problem)
    print(f"  tomogravity MRE: {mean_relative_error(tomogravity.estimate, truth):.3f}")

    wcb_prior = worst_case_bound_prior(problem)
    bayes_wcb = BayesianEstimator(regularization=1000.0, prior=wcb_prior).estimate(problem)
    print(f"  Bayes + WCB-prior MRE: {mean_relative_error(bayes_wcb.estimate, truth):.3f}")

    # ------------------------------------------------------------------
    # Failure analysis: take down the most utilised link pair and re-route.
    # ------------------------------------------------------------------
    engine = scenario.planning()
    base = engine.project(truth)
    busiest_link, base_util = base.top_links(1)[0]
    reverse = "->".join(reversed(busiest_link.split("->")))
    case = FailureCase(
        name=f"link-pair:{busiest_link}",
        kind="link-pair",
        failed_links=(busiest_link, reverse),
    )
    print(
        f"\nSimulating failure of {sorted(case.failed_links)} "
        f"(pre-failure utilisation {base_util:.0%})..."
    )

    true_proj = engine.project(truth, case)
    estimated_proj = engine.project(tomogravity.estimate, case)
    wcb_proj = engine.project(bayes_wcb.estimate, case)

    print("\nTen most loaded links after the failure (true vs. predicted utilisation):")
    print(f"{'link':16s} {'true':>8s} {'tomogravity':>12s} {'bayes+WCB':>10s}")
    worst = [name for name, _ in true_proj.top_links(10)]
    for name in worst:
        print(
            f"{name:16s} {true_proj.utilisation_of(name):8.1%} "
            f"{estimated_proj.utilisation_of(name):12.1%} "
            f"{wcb_proj.utilisation_of(name):10.1%}"
        )

    def forecast_error(predicted) -> float:
        return float(
            np.mean(
                [
                    abs(predicted.utilisation_of(name) - true_proj.utilisation_of(name))
                    for name in worst
                ]
            )
        )

    print(
        f"\nMean absolute utilisation-forecast error on those links: "
        f"tomogravity {forecast_error(estimated_proj):.1%}, "
        f"Bayes+WCB {forecast_error(wcb_proj):.1%}"
    )
    hot = [name for name in worst if true_proj.utilisation_of(name) > 0.8]
    caught = [name for name in hot if estimated_proj.utilisation_of(name) > 0.8]
    if hot:
        print(
            f"Links that exceed 80% utilisation after the failure: {len(hot)}; "
            f"the estimate flags {len(caught)} of them — the large-demand accuracy "
            "the MRE metric targets is exactly what this decision needs."
        )
    else:
        print("No link exceeds 80% utilisation after this failure on the synthetic data.")

    # ------------------------------------------------------------------
    # Capacity planning: how much growth until the worst failure congests?
    # ------------------------------------------------------------------
    worst_case = engine.worst_case(truth, feasible_only=True)
    print(
        f"\nBinding single-link failure: {worst_case.case.name} at "
        f"{worst_case.max_utilisation:.1%} max utilisation "
        f"(headroom: traffic can grow {worst_case.headroom:.2f}x before saturation)."
    )


if __name__ == "__main__":
    main()
