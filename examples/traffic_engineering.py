"""Traffic-engineering case study: how estimation errors affect link loads.

The paper motivates traffic-matrix estimation with traffic-engineering tasks
such as load balancing and failure analysis, and its MRE metric focuses on
the large demands because those drive link utilisations.  This example makes
that connection concrete:

1. estimate the Europe-like traffic matrix from link loads (tomogravity,
   gravity prior);
2. simulate a link failure and re-route both the *true* and the *estimated*
   matrix over the surviving topology;
3. compare the post-failure link utilisations predicted from the estimate
   against the ones the true matrix produces, and report how far off the
   estimate-driven planning decision would be;
4. repeat with the worst-case-bound prior to show how a better prior
   tightens the utilisation forecast.

Run with::

    python examples/traffic_engineering.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import europe_scenario
from repro.estimation import BayesianEstimator, EntropyEstimator, worst_case_bound_prior
from repro.evaluation import mean_relative_error
from repro.routing import build_routing_matrix
from repro.traffic import TrafficMatrix


def utilisations(network, routing, matrix: TrafficMatrix) -> dict[str, float]:
    """Per-link utilisation (load / capacity) for a traffic matrix."""
    loads = routing.link_loads(matrix.vector)
    return {
        name: load / network.link(name).capacity_mbps
        for name, load in zip(routing.link_names, loads)
    }


def main() -> None:
    print("Building the Europe-like scenario and estimating its traffic matrix...")
    scenario = europe_scenario()
    network = scenario.network
    truth = scenario.busy_mean_matrix()
    problem = scenario.snapshot_problem(truth)

    tomogravity = EntropyEstimator(regularization=1000.0, prior="gravity").estimate(problem)
    print(f"  tomogravity MRE: {mean_relative_error(tomogravity.estimate, truth):.3f}")

    wcb_prior = worst_case_bound_prior(problem)
    bayes_wcb = BayesianEstimator(regularization=1000.0, prior=wcb_prior).estimate(problem)
    print(f"  Bayes + WCB-prior MRE: {mean_relative_error(bayes_wcb.estimate, truth):.3f}")

    # ------------------------------------------------------------------
    # Failure analysis: take down the most utilised link pair and re-route.
    # ------------------------------------------------------------------
    base_util = utilisations(network, scenario.routing, truth)
    busiest_link = max(base_util, key=base_util.get)
    failed = {busiest_link, f"{busiest_link.split('->')[1]}->{busiest_link.split('->')[0]}"}
    print(f"\nSimulating failure of {sorted(failed)} "
          f"(pre-failure utilisation {base_util[busiest_link]:.0%})...")

    degraded = type(network)("europe-degraded")
    for node in network.nodes:
        degraded.add_node(node)
    for link in network.links:
        if link.name not in failed:
            degraded.add_link(link)
    degraded.validate()
    degraded_routing = build_routing_matrix(degraded)

    def align(matrix: TrafficMatrix) -> TrafficMatrix:
        return TrafficMatrix(degraded_routing.pairs, [matrix.demand(p) for p in degraded_routing.pairs])

    true_util = utilisations(degraded, degraded_routing, align(truth))
    estimated_util = utilisations(degraded, degraded_routing, align(tomogravity.estimate))
    wcb_util = utilisations(degraded, degraded_routing, align(bayes_wcb.estimate))

    print("\nTen most loaded links after the failure (true vs. predicted utilisation):")
    print(f"{'link':16s} {'true':>8s} {'tomogravity':>12s} {'bayes+WCB':>10s}")
    worst = sorted(true_util, key=true_util.get, reverse=True)[:10]
    for name in worst:
        print(
            f"{name:16s} {true_util[name]:8.1%} {estimated_util[name]:12.1%} "
            f"{wcb_util[name]:10.1%}"
        )

    def forecast_error(predicted: dict[str, float]) -> float:
        return float(
            np.mean([abs(predicted[name] - true_util[name]) for name in worst])
        )

    print(
        f"\nMean absolute utilisation-forecast error on those links: "
        f"tomogravity {forecast_error(estimated_util):.1%}, "
        f"Bayes+WCB {forecast_error(wcb_util):.1%}"
    )
    hot = [name for name in worst if true_util[name] > 0.8]
    caught = [name for name in hot if estimated_util[name] > 0.8]
    if hot:
        print(
            f"Links that exceed 80% utilisation after the failure: {len(hot)}; "
            f"the estimate flags {len(caught)} of them — the large-demand accuracy "
            "the MRE metric targets is exactly what this decision needs."
        )
    else:
        print("No link exceeds 80% utilisation after this failure on the synthetic data.")


if __name__ == "__main__":
    main()
